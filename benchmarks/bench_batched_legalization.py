"""Cross-topology batched legalization — whole-chunk sweeps vs serial solves.

PR 8 makes the legalization engine solve an entire chunk at once: one
vectorized repair sweep over the stacked per-topology systems partitions the
chunk into fast-path successes and a residual tail, and the tail's SLSQP
restart rounds share stacked rounding + integer verification over a
residual-only block-diagonal system.  The contract is *bit-identity* with
the serial per-topology reference path — batching is a pure throughput
optimisation, never a numerics change.

The workload is the fast-path regime: dataset topologies filtered to a
fixed point where the seeded run legalises every solution via the repair
sweep.  That is the regime the batching accelerates — the scipy tail and
the per-index RNG draws are per-topology in *both* paths by the determinism
contract (see ``repro/legalization/batched.py``), so a tail-heavy workload
measures scipy, not the sweep.  Both paths run serially (``workers=1``,
one chunk) so the comparison is solver work, not pool scaling.

Gated claims (``check_regression.py`` against ``baselines.json``):

* batched output is element-wise identical to serial (``exact`` gate),
* the engine-level chunk legalization clears >= 2x the serial
  topologies/second, with the solver-level (no result assembly) ratio
  reported alongside,
* the run is 100% fast path and every fast-path pattern is DRC-clean.
"""

from __future__ import annotations

import time

from _bench_utils import FAST_MODE, write_metrics, write_result

from repro.drc import DesignRuleChecker
from repro.legalization import (
    LegalizationEngine,
    SolverOptions,
    clear_compilation_cache,
    compiled_for_topology,
    set_compilation_cache_capacity,
)
from repro.legalization.batched import solve_geometry_chunk
from repro.legalization.solver import solve_geometry
from repro.utils import child_rng

if FAST_MODE:
    BATCH_TOPOLOGIES = 192
    BATCH_SOLUTIONS = 2
else:
    BATCH_TOPOLOGIES = 384
    BATCH_SOLUTIONS = 4

#: Fixed-point iterations for the fast-path workload filter; the filter
#: always converges in a few rounds (each round only removes matrices).
MAX_FILTER_ROUNDS = 8


def _cycle(pool, count):
    return [pool[i % len(pool)] for i in range(count)]


def _fast_path_pool(matrices, rules, options):
    """Filter the dataset matrices to a 100% fast-path workload.

    Repeatedly runs the seeded chunk solve and drops every matrix that
    produced a non-repair solution, until the run is pure fast path (bit
    identity makes the probe equally valid for the serial path).  Matrices
    dropped here would measure the scipy tail, which is per-topology in
    both paths by contract.
    """
    pool = list(matrices)
    for _ in range(MAX_FILTER_ROUNDS):
        topologies = _cycle(pool, BATCH_TOPOLOGIES)
        compiled = [compiled_for_topology(t, rules) for t in topologies]
        rngs = [child_rng(0, i) for i in range(BATCH_TOPOLOGIES)]
        outcome = solve_geometry_chunk(
            compiled, rules, rngs, options=options, num_solutions=BATCH_SOLUTIONS
        )
        bad = {
            i % len(pool)
            for i, solutions in enumerate(outcome.solutions)
            for s in solutions
            if s.method != "repair"
        }
        if not bad:
            return pool
        pool = [m for j, m in enumerate(pool) if j not in bad]
        if not pool:
            break
    return pool


def _signatures(results):
    """Everything deterministic about a run (timing fields excluded)."""
    return [
        (
            tuple(
                (
                    s.success,
                    s.attempts,
                    s.iterations,
                    s.method,
                    s.message,
                    s.objective,
                    tuple(s.delta_x.tolist()),
                    tuple(s.delta_y.tolist()),
                )
                for s in result.solutions
            ),
            tuple(
                (tuple(p.delta_x.tolist()), tuple(p.delta_y.tolist()))
                for p in result.patterns
            ),
        )
        for result in results
    ]


def _best_of(fn, repeats=2):
    """Best wall-clock of ``repeats`` identical runs (determinism makes the
    repeated outputs interchangeable; the minimum discards scheduler noise)."""
    best, out = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, out


def bench_batched_legalization(benchmark, bench_dataset, bench_config):
    rules = bench_config.rules
    checker = DesignRuleChecker(rules)
    options = SolverOptions(solver_mode="auto")

    # Hold the whole working set in the compile cache and pre-warm it once,
    # so both paths measure solver throughput rather than constraint
    # compilation (identical either way, and bench_solver_kernel's job).
    set_compilation_cache_capacity(max(2 * BATCH_TOPOLOGIES, 32))
    clear_compilation_cache()
    try:
        pool = _fast_path_pool(
            list(bench_dataset.topology_matrices("train")), rules, options
        )
        assert pool, "no repair-eligible topology in the benchmark dataset"
        topologies = _cycle(pool, BATCH_TOPOLOGIES)
        compiled = [compiled_for_topology(t, rules) for t in topologies]

        # --- solver level: the exact code the PR batches, no assembly ----- #
        def solver_serial():
            rngs = [child_rng(0, i) for i in range(BATCH_TOPOLOGIES)]
            return [
                [
                    solve_geometry(compiled[i], rules, rng=rngs[i], options=options)
                    for _ in range(BATCH_SOLUTIONS)
                ]
                for i in range(BATCH_TOPOLOGIES)
            ]

        def solver_batched():
            rngs = [child_rng(0, i) for i in range(BATCH_TOPOLOGIES)]
            return solve_geometry_chunk(
                compiled, rules, rngs, options=options,
                num_solutions=BATCH_SOLUTIONS,
            )

        solver_serial_s, _ = _best_of(solver_serial)
        solver_batched_s, outcome = _best_of(solver_batched)
        solver_speedup = solver_serial_s / solver_batched_s

        # --- engine level: chunked legalization end to end ---------------- #
        def engine_run(batch_solve):
            engine = LegalizationEngine(
                rules,
                options=SolverOptions(solver_mode="auto", batch_solve=batch_solve),
                workers=1,
                chunk_size=BATCH_TOPOLOGIES,
            )
            return engine.legalize_batch_with_report(
                topologies, num_solutions=BATCH_SOLUTIONS, seed=0
            )

        engine_serial_s, (serial_results, serial_report) = _best_of(
            lambda: engine_run(False)
        )

        def batched_run():
            return engine_run(True)

        # One pedantic round registers the timing with pytest-benchmark and
        # warms the path; the gated ratio uses the best-of manual timings.
        benchmark.pedantic(batched_run, rounds=1, iterations=1)
        engine_batched_s, (batched_results, batched_report) = _best_of(batched_run)
        engine_speedup = engine_serial_s / engine_batched_s
    finally:
        clear_compilation_cache()
        set_compilation_cache_capacity(None)

    # The whole point: bit-identical output, element-wise, every field.
    parity = _signatures(batched_results) == _signatures(serial_results)

    stats = batched_report.stats
    fast_path_rate = stats.fast_path_fraction
    fast_patterns = [
        pattern
        for result in batched_results
        for pattern, solution in zip(result.patterns, result.solutions)
        if solution.method == "repair"
    ]
    fast_clean_rate = checker.legality_rate(fast_patterns) if fast_patterns else None

    def fmt(value, spec, suffix=""):
        return "n/a" if value is None else f"{value:{spec}}{suffix}"

    lines = [
        f"workload: {BATCH_TOPOLOGIES} topologies x {BATCH_SOLUTIONS} solutions "
        f"({len(pool)} distinct fast-path matrices), solver_mode=auto, "
        "workers=1, one chunk",
        "",
        "batch_solve=off (serial per-topology reference path):",
        serial_report.format(),
        "",
        "batch_solve=on (whole-chunk repair sweep + residual SLSQP tail):",
        batched_report.format(),
        "",
        f"bit-identity with serial path: {'PASS' if parity else 'FAIL'}",
        f"solver level: serial {solver_serial_s * 1e3:.1f} ms vs batched "
        f"{solver_batched_s * 1e3:.1f} ms -> {solver_speedup:.2f}x",
        f"engine level: serial {engine_serial_s * 1e3:.1f} ms vs batched "
        f"{engine_batched_s * 1e3:.1f} ms -> {engine_speedup:.2f}x",
        f"{stats.batched_sweeps} sweep(s) (mean {stats.batched_sweep_mean_size:.1f} "
        f"topologies), {stats.batched_tail_solves} tail solve(s), "
        f"fast path {fast_path_rate:.0%} of solutions, "
        f"fast-path DRC-clean rate {fmt(fast_clean_rate, '.2f')}",
    ]
    write_result("batched_legalization.txt", "\n".join(lines))

    write_metrics(
        "batched_legalization",
        {
            "fast_mode": FAST_MODE,
            "topologies": BATCH_TOPOLOGIES,
            "solutions_per_topology": BATCH_SOLUTIONS,
            "distinct_matrices": len(pool),
            "seconds_serial_engine": engine_serial_s,
            "seconds_batched_engine": engine_batched_s,
            "speedup_batched_over_serial": engine_speedup,
            "seconds_serial_solver": solver_serial_s,
            "seconds_batched_solver": solver_batched_s,
            "solver_speedup_batched_over_serial": solver_speedup,
            "batched_parity": parity,
            "success_rate_serial": serial_report.success_rate,
            "success_rate_batched": batched_report.success_rate,
            "batched_sweeps": stats.batched_sweeps,
            "batched_sweep_size_mean": stats.batched_sweep_mean_size,
            "batched_tail_solves": stats.batched_tail_solves,
            "fast_path_rate": fast_path_rate,
            "fast_path_drc_clean_rate": fast_clean_rate,
        },
    )

    assert parity
    assert batched_report.success_rate == serial_report.success_rate == 1.0
    assert outcome.tail_solves == 0 and stats.batched_tail_solves == 0
    assert fast_path_rate == 1.0
    assert fast_clean_rate == 1.0

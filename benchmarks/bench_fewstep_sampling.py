"""Few-step respaced sampling — U-Net evaluation savings vs the Table I band.

The ``fewstep-tables`` scenario walks 6 of the trained 32 denoising steps
over an evenly respaced chain (composed jump-posterior tables, see
``docs/sampling.md``).  This harness gates the speed claim against quality:

* **Parity** — ``steps`` equal to the chain length must be bit-identical to
  the unrespaced full chain (the respacing machinery is pure overhead-free
  bookkeeping at that setting).
* **Speed** — the 6-step schedule must run at least 5x fewer denoiser
  forward passes per sample than the full chain, and the measured sampling
  wall-clock must follow (gated loosely; timing varies with the host).
* **Quality** — the few-step samples go through the same
  prefilter/legalize/DRC graph as Table I; legality of everything emitted
  stays 100 % (white-box legaliser) and the pattern diversity H stays within
  a band of the full-chain run.

Unlike the other harnesses this file trains its own pipeline: the chain
length is pinned to 32 even under ``REPRO_BENCH_FAST`` (training cost is
iteration-bound, not chain-length-bound), because an 8-step chain makes a
">= 5x fewer evaluations" schedule degenerate.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import (
    BENCH_WORKERS,
    FAST_MODE,
    NUM_GENERATED,
    TRAIN_ITERATIONS,
    TRAIN_PATTERNS,
    write_metrics,
    write_result,
)

from repro.pipeline import DiffPatternPipeline, evaluate_diffpattern, format_table
from repro.scenarios import builtin_registry

#: Chain length of this harness, fixed across fast/full mode (see module
#: docstring).  32 is the ``paper-tables`` benchmark chain.
CHAIN_STEPS = 32

#: The registry scenario under test; its ``sampling.steps = 6`` against the
#: 32-step chain is the 5.33x operating point the gate certifies.
FEWSTEP_SCENARIO = "fewstep-tables"

#: Fast mode keeps the 32-step chain, so the shared 30-iteration budget
#: leaves the model too raw to emit any pattern — every quality metric would
#: gate-skip.  The smoke-scenario budget (still seconds of CPU) is enough
#: for the prefilter to pass samples, which keeps the band measurable.
FEWSTEP_TRAIN_ITERATIONS = 150 if FAST_MODE else TRAIN_ITERATIONS


def _fewstep_plan():
    """The ``fewstep-tables`` plan with the active benchmark scales layered on."""
    spec = builtin_registry().resolve(FEWSTEP_SCENARIO).with_overrides(
        {
            "diffusion": {"num_steps": CHAIN_STEPS},
            "training": {"iterations": FEWSTEP_TRAIN_ITERATIONS, "num_patterns": TRAIN_PATTERNS},
            "engine": {"workers": BENCH_WORKERS},
            "run": {"num_generated": NUM_GENERATED},
        }
    )
    return spec.lower()


@pytest.fixture(scope="module")
def fewstep_pipeline() -> DiffPatternPipeline:
    """A pipeline trained on the pinned 32-step chain (not the conftest one)."""
    plan = _fewstep_plan()
    pipeline = DiffPatternPipeline(plan.config)
    pipeline.prepare_data(plan.num_training_patterns, rng=0)
    pipeline.train(rng=0)
    return pipeline


def bench_fewstep_sampling(benchmark, fewstep_pipeline):
    """Speed and quality of the respaced 6-step sampler vs the full chain."""
    pipeline = fewstep_pipeline
    config = pipeline.config
    fewstep = _fewstep_plan().config.sampling_steps  # 6, from the registry

    # --- parity: steps == chain length is bit-identical to the full chain
    config.sampling_steps = None
    full_topologies = pipeline.generate_topologies(NUM_GENERATED, rng=0)
    full_report = pipeline.last_sampling_report
    config.sampling_steps = CHAIN_STEPS
    respaced_topologies = pipeline.generate_topologies(NUM_GENERATED, rng=0)
    parity = bool(np.array_equal(full_topologies, respaced_topologies))
    assert parity, "steps == chain length must reproduce the full chain bit-for-bit"

    # --- timed section: the few-step sampler
    config.sampling_steps = fewstep

    def fewstep_batch():
        return pipeline.generate_topologies(NUM_GENERATED, rng=0)

    benchmark.pedantic(fewstep_batch, rounds=1, iterations=1)
    few_report = pipeline.last_sampling_report

    eval_ratio = full_report.evals_per_sample / few_report.evals_per_sample
    speedup = (
        full_report.total_seconds / few_report.total_seconds
        if few_report.total_seconds
        else None
    )
    assert eval_ratio >= 5.0, (
        f"default strided setting must save >= 5x denoiser evaluations, "
        f"got {eval_ratio:.2f}x"
    )

    # --- quality band: both schedules through the full Table I scoring path
    config.sampling_steps = None
    full_row = evaluate_diffpattern(
        pipeline, NUM_GENERATED, num_solutions=1, rng=0,
        name=f"DiffPattern-S ({CHAIN_STEPS} steps)",
    )
    config.sampling_steps = fewstep
    few_row = evaluate_diffpattern(
        pipeline, NUM_GENERATED, num_solutions=1, rng=0,
        name=f"DiffPattern-S ({fewstep} steps)",
    )

    table = format_table([full_row, few_row])
    lines = [
        table,
        "",
        f"full chain sampling ({CHAIN_STEPS} steps):",
        full_report.format(),
        "",
        f"respaced sampling ({fewstep} of {CHAIN_STEPS} steps):",
        few_report.format(),
    ]
    write_result("fewstep_sampling.txt", "\n".join(lines))

    write_metrics(
        "fewstep_sampling",
        {
            "fast_mode": FAST_MODE,
            "chain_steps": CHAIN_STEPS,
            "fewstep_steps": fewstep,
            "parity_full_vs_respaced_full": parity,
            "unet_eval_ratio": eval_ratio,
            "speedup_fewstep_sampling": speedup,
            "full_patterns": full_row.generated_patterns,
            "fewstep_patterns": few_row.generated_patterns,
            # Everything DiffPattern emits is white-box legalised; an
            # under-trained fast-mode model may emit nothing, which measures
            # nothing — report null (gate-skipped) rather than a fake 0.0.
            "fewstep_legality": (
                few_row.legality if few_row.generated_patterns else None
            ),
            "diversity_ratio_fewstep_over_full": (
                few_row.generated_diversity / full_row.generated_diversity
                if few_row.generated_patterns
                and full_row.generated_patterns
                and full_row.generated_diversity
                else None
            ),
        },
    )

    if few_row.generated_patterns:
        assert few_row.legality == 1.0

"""Compiled solver kernels — single-solve latency and the repair fast path.

Table II makes the per-topology solve the cost center of the framework.
This harness measures the single-solve hot path both ways:

* ``solver_mode="slsqp"`` — the full SLSQP solve over the compiled
  constraint kernels; bit-identical to the historical per-constraint lambda
  formulation (asserted by ``tests/test_compiled_kernels.py``), so its
  throughput stands in for the seed solver.
* ``solver_mode="auto"`` — the repair-first projection with SLSQP fallback.

Gated claims (``check_regression.py`` against ``baselines.json``):
``auto`` must clear >= 2x the ``slsqp`` topologies/second on this workload,
every fast-path (repaired) pattern must be DRC-clean, and the fast path must
actually fire on a majority of solves (not silently degrade to fallback).
Everything here runs serially (``workers=1``) — pool scaling is
``bench_parallel_legalization.py``'s job — so the numbers are meaningful on
any host, including single-core CI runners.
"""

from __future__ import annotations

from _bench_utils import FAST_MODE, write_metrics, write_result

from repro.drc import DesignRuleChecker
from repro.legalization import LegalizationEngine, SolverOptions
from repro.legalization.compiled import clear_compilation_cache, compilation_cache_info

if FAST_MODE:
    KERNEL_TOPOLOGIES = 32
    KERNEL_SOLUTIONS = 4
else:
    KERNEL_TOPOLOGIES = 64
    KERNEL_SOLUTIONS = 8


def _run_mode(mode: str, topologies, rules, references):
    engine = LegalizationEngine(
        rules,
        reference_geometries=references,
        options=SolverOptions(solver_mode=mode),
        workers=1,
    )
    clear_compilation_cache()
    results, report = engine.legalize_batch_with_report(
        topologies, num_solutions=KERNEL_SOLUTIONS, seed=0
    )
    return results, report, compilation_cache_info()


def bench_solver_kernel(benchmark, bench_dataset, bench_config):
    matrices = list(bench_dataset.topology_matrices("train"))
    topologies = [matrices[i % len(matrices)] for i in range(KERNEL_TOPOLOGIES)]
    references = bench_dataset.reference_geometries("train")
    rules = bench_config.rules
    checker = DesignRuleChecker(rules)

    slsqp_results, slsqp_report, slsqp_cache = _run_mode(
        "slsqp", topologies, rules, references
    )

    def auto_run():
        return _run_mode("auto", topologies, rules, references)

    auto_results, auto_report, auto_cache = benchmark.pedantic(
        auto_run, rounds=1, iterations=1
    )

    speedup = (
        auto_report.topologies_per_second / slsqp_report.topologies_per_second
        if slsqp_report.topologies_per_second
        else None
    )

    # Every solution the repair projection produced must survive the DRC —
    # the fast path is only a win if it never trades legality for speed.
    fast_patterns = [
        pattern
        for result in auto_results
        for pattern, solution in zip(result.patterns, result.solutions)
        if solution.method == "repair"
    ]
    fast_clean_rate = (
        checker.legality_rate(fast_patterns) if fast_patterns else None
    )

    def latency(report):
        return (
            report.stats.total_solver_time / report.stats.solutions
            if report.stats.solutions
            else None
        )

    def fmt(value, spec, suffix=""):
        # A dead solver yields None metrics; the artefact must still be
        # written (and the regression gate must fail on the rate metrics)
        # rather than crashing on formatting.
        return "n/a" if value is None else f"{value:{spec}}{suffix}"

    slsqp_latency = latency(slsqp_report)
    auto_latency = latency(auto_report)
    slsqp_ms = slsqp_latency * 1e3 if slsqp_latency is not None else None
    auto_ms = auto_latency * 1e3 if auto_latency is not None else None

    lines = [
        f"workload: {KERNEL_TOPOLOGIES} topologies x {KERNEL_SOLUTIONS} solutions, "
        "serial (workers=1)",
        "",
        "solver_mode=slsqp (full solve, bit-identical to the seed formulation):",
        slsqp_report.format(),
        f"  compile cache    {slsqp_cache['hits']} hit(s) / {slsqp_cache['misses']} miss(es)",
        "",
        "solver_mode=auto (repair-first, SLSQP fallback):",
        auto_report.format(),
        f"  compile cache    {auto_cache['hits']} hit(s) / {auto_cache['misses']} miss(es)",
        "",
        "single-solve latency: "
        f"slsqp {fmt(slsqp_ms, '.3f', ' ms')}, auto {fmt(auto_ms, '.3f', ' ms')}",
        f"auto over slsqp: {fmt(speedup, '.2f', 'x')} topologies/s, "
        f"fast path {auto_report.stats.fast_path_fraction:.0%} of solutions, "
        f"fast-path DRC-clean rate {fmt(fast_clean_rate, '.2f')}",
    ]
    write_result("solver_kernel.txt", "\n".join(lines))

    write_metrics(
        "solver_kernel",
        {
            "fast_mode": FAST_MODE,
            "topologies": KERNEL_TOPOLOGIES,
            "solutions_per_topology": KERNEL_SOLUTIONS,
            "topologies_per_second_slsqp": slsqp_report.topologies_per_second,
            "topologies_per_second_auto": auto_report.topologies_per_second,
            "speedup_auto_over_slsqp": speedup,
            "seconds_per_solution_slsqp": slsqp_latency,
            "seconds_per_solution_auto": auto_latency,
            "success_rate_slsqp": slsqp_report.success_rate,
            "success_rate_auto": auto_report.success_rate,
            "fast_path_rate": auto_report.stats.fast_path_fraction,
            "fast_path_drc_clean_rate": fast_clean_rate,
        },
    )

    assert auto_report.success_rate >= slsqp_report.success_rate
    assert auto_report.stats.fast_path_solutions > 0
    if fast_patterns:
        assert fast_clean_rate == 1.0

"""Table I — pattern diversity and legality across generation methods.

Regenerates the paper's main comparison: Real Patterns, CAE, VCAE,
CAE+LegalGAN, VCAE+LegalGAN, LayouTransformer, DiffPattern-S and
DiffPattern-L, each scored for generated-pattern diversity (Eq. 4) and
DRC legality.  Absolute diversity values depend on the (synthetic) dataset;
the shape to check against the paper is the ordering:

* DiffPattern legality is 100 % of its emitted patterns (white-box legaliser),
* CAE legality is very low; VCAE is more diverse but still mostly illegal,
* +LegalGAN raises legality at some diversity cost,
* LayouTransformer is the strongest baseline,
* DiffPattern diversity is at least on par with the best baseline.
"""

from __future__ import annotations

from _bench_utils import FAST_MODE, NUM_GENERATED, write_metrics, write_result

from repro.baselines import (
    CAEConfig,
    CAEGenerator,
    LayouTransformerConfig,
    LayouTransformerGenerator,
    LegalGANConfig,
    LegalGANPostProcessor,
    LegalizedGenerator,
    VCAEConfig,
    VCAEGenerator,
)
from repro.pipeline import (
    evaluate_baseline,
    evaluate_diffpattern,
    evaluate_real_patterns,
    format_table,
)

_BASELINE_ITERATIONS = 150


def _baselines():
    """Fresh baseline generators at benchmark scale."""
    # threshold=None: binarise at the training fill ratio so the under-trained
    # decoders emit non-trivial (rather than empty) topologies -- see CAEConfig.
    cae_cfg = CAEConfig(iterations=_BASELINE_ITERATIONS, base_channels=8, latent_dim=16, threshold=None)
    vcae_cfg = VCAEConfig(iterations=_BASELINE_ITERATIONS, base_channels=8, latent_dim=16, threshold=None)
    legal_cfg = LegalGANConfig(iterations=_BASELINE_ITERATIONS, base_channels=8)
    transformer_cfg = LayouTransformerConfig(iterations=_BASELINE_ITERATIONS, dim=24, layers=1, max_runs=16)
    return [
        ("CAE", CAEGenerator(cae_cfg)),
        ("VCAE", VCAEGenerator(vcae_cfg)),
        ("CAE+LegalGAN", LegalizedGenerator(CAEGenerator(cae_cfg), LegalGANPostProcessor(legal_cfg))),
        ("VCAE+LegalGAN", LegalizedGenerator(VCAEGenerator(vcae_cfg), LegalGANPostProcessor(legal_cfg))),
        ("LayouTransformer", LayouTransformerGenerator(transformer_cfg)),
    ]


def bench_table1_diversity_and_legality(benchmark, trained_pipeline, bench_dataset):
    """Build every Table I row; the timed section is the DiffPattern-S row."""
    rules = trained_pipeline.config.rules
    rows = [evaluate_real_patterns(bench_dataset, rules)]
    for name, generator in _baselines():
        rows.append(
            evaluate_baseline(
                name, generator, bench_dataset, rules, num_generated=NUM_GENERATED, rng=0
            )
        )

    def diffpattern_s_row():
        return evaluate_diffpattern(trained_pipeline, NUM_GENERATED, num_solutions=1, rng=0)

    s_row = benchmark.pedantic(diffpattern_s_row, rounds=1, iterations=1)
    rows.append(s_row)
    s_report = trained_pipeline.last_legalization_report
    rows.append(
        evaluate_diffpattern(trained_pipeline, NUM_GENERATED, num_solutions=4, rng=0)
    )
    l_report = trained_pipeline.last_legalization_report

    table = format_table(rows)
    lines = [table]
    if l_report is not None:
        lines += ["", "DiffPattern-L legalization engine:", l_report.format()]
    write_result("table1_diversity_legality.txt", "\n".join(lines))

    real_row = rows[0]
    write_metrics(
        "table1",
        {
            "fast_mode": FAST_MODE,
            "real_patterns": real_row.generated_patterns,
            "real_legality": real_row.legality,
            "diffpattern_s_topologies": s_row.generated_topologies,
            "diffpattern_s_patterns": s_row.generated_patterns,
            "diffpattern_s_legality": s_row.legality,
            # An under-trained fast-mode model can lose every sample to the
            # pre-filter; an empty batch measures nothing, so report null
            # (gate-skipped) rather than a fake 0.0.
            "legalize_success_rate": (
                s_report.success_rate
                if s_report is not None and s_report.num_topologies
                else None
            ),
            "legalize_topologies_per_second": (
                s_report.topologies_per_second
                if s_report is not None and s_report.num_topologies
                else None
            ),
            "legalize_workers": s_report.workers if s_report is not None else None,
        },
    )

    diffpattern_rows = [r for r in rows if r.name.startswith("DiffPattern")]
    for row in diffpattern_rows:
        # Every pattern DiffPattern emits went through the white-box
        # legaliser, so its legality must be 100% whenever it emits anything.
        if row.generated_patterns:
            assert row.legality == 1.0
    baseline_legalities = [r.legality for r in rows[1:6]]
    if any(r.generated_patterns for r in diffpattern_rows):
        assert max(r.legality for r in diffpattern_rows) >= max(baseline_legalities)

"""Parallel legalization engine — throughput scaling and shard parity.

The Table I / DiffPattern-L workload legalises a batch of topologies, each
with many geometric solutions (up to 100 per topology in the paper).  The
legalization engine shards that batch across a process pool with per-index
seeding, so the parallel run must be element-wise identical to the serial
run while finishing faster on a multi-core host.

This harness measures topologies/second at ``workers=1`` versus a widened
pool (``REPRO_BENCH_WORKERS`` or the host CPU count, capped at 4), asserts
bitwise parity between the two runs, and emits the machine-readable metrics
that ``check_regression.py`` gates in CI.  On a single-core host the
parallel measurement is skipped (recorded as ``null``), because a process
pool cannot beat the serial path without a second core.
"""

from __future__ import annotations

import os

import numpy as np

from _bench_utils import BENCH_WORKERS, FAST_MODE, write_metrics, write_result

from repro.legalization import LegalizationEngine, SolverOptions

# Sized so the serial run takes seconds even in fast mode: a sub-second
# workload cannot clear a speedup gate through pool-startup noise.
if FAST_MODE:
    PAR_TOPOLOGIES = 32
    PAR_SOLUTIONS = 12
else:
    PAR_TOPOLOGIES = 48
    PAR_SOLUTIONS = 25


def _parallel_workers() -> int:
    """Pool width for the parallel measurement (>= 2 to be meaningful)."""
    if BENCH_WORKERS > 1:
        return BENCH_WORKERS
    return min(4, os.cpu_count() or 1)


def _assert_parity(serial_results, parallel_results) -> None:
    assert len(serial_results) == len(parallel_results)
    for a, b in zip(serial_results, parallel_results):
        assert len(a.patterns) == len(b.patterns)
        for pa, pb in zip(a.patterns, b.patterns):
            np.testing.assert_array_equal(pa.topology, pb.topology)
            np.testing.assert_array_equal(pa.delta_x, pb.delta_x)
            np.testing.assert_array_equal(pa.delta_y, pb.delta_y)
        assert [s.iterations for s in a.solutions] == [s.iterations for s in b.solutions]


def bench_parallel_legalization_scaling(benchmark, bench_dataset, bench_config):
    matrices = list(bench_dataset.topology_matrices("train"))
    topologies = [matrices[i % len(matrices)] for i in range(PAR_TOPOLOGIES)]
    references = bench_dataset.reference_geometries("train")
    workers = _parallel_workers()

    def build_engine(pool_width: int) -> LegalizationEngine:
        # Pinned to the full SLSQP solve: this harness gates how the process
        # pool scales the *expensive* per-topology solve, and its committed
        # baselines predate the repair-first fast path (which is measured by
        # bench_solver_kernel.py instead).
        return LegalizationEngine(
            bench_config.rules,
            reference_geometries=references,
            options=SolverOptions(solver_mode="slsqp"),
            workers=pool_width,
        )

    serial_engine = build_engine(1)
    serial_results, serial_report = serial_engine.legalize_batch_with_report(
        topologies, num_solutions=PAR_SOLUTIONS, seed=0
    )

    parallel_report = None
    if workers > 1:
        parallel_engine = build_engine(workers)

        def parallel_run():
            return parallel_engine.legalize_batch_with_report(
                topologies, num_solutions=PAR_SOLUTIONS, seed=0
            )

        parallel_results, parallel_report = benchmark.pedantic(
            parallel_run, rounds=1, iterations=1
        )
        _assert_parity(serial_results, parallel_results)
    else:
        # Single-core host: nothing to scale onto; time the serial engine so
        # pytest-benchmark still records a number.
        benchmark.pedantic(
            lambda: serial_engine.legalize_batch(topologies, num_solutions=PAR_SOLUTIONS, seed=0),
            rounds=1,
            iterations=1,
        )

    # The speedup is only a meaningful (and gateable) number when the host
    # actually has a core per worker; on a smaller host the parallel run
    # still checks parity above, but the ratio is recorded as null so the
    # regression gate skips it instead of failing on hardware it can't beat.
    cpus = os.cpu_count() or 1
    speedup = (
        parallel_report.topologies_per_second / serial_report.topologies_per_second
        if parallel_report is not None
        and serial_report.topologies_per_second
        and cpus >= workers
        else None
    )

    lines = [
        f"workload: {PAR_TOPOLOGIES} topologies x {PAR_SOLUTIONS} solutions "
        f"(DiffPattern-L scale), host CPUs: {os.cpu_count()}",
        "",
        "serial (workers=1):",
        serial_report.format(),
    ]
    if parallel_report is not None:
        ratio = parallel_report.topologies_per_second / serial_report.topologies_per_second
        lines += [
            "",
            f"parallel (workers={workers}):",
            parallel_report.format(),
            "",
            f"speedup: {ratio:.2f}x (parallel == serial element-wise: True)"
            + ("" if speedup is not None else f" [not gated: only {cpus} CPU(s)]"),
        ]
    else:
        lines += ["", f"parallel run skipped (only {os.cpu_count()} CPU available)"]
    write_result("parallel_legalization.txt", "\n".join(lines))

    write_metrics(
        "parallel_legalization",
        {
            "fast_mode": FAST_MODE,
            "topologies": PAR_TOPOLOGIES,
            "solutions_per_topology": PAR_SOLUTIONS,
            "patterns_serial": serial_report.stats.solutions,
            "success_rate_serial": serial_report.success_rate,
            "topologies_per_second_serial": serial_report.topologies_per_second,
            "workers_parallel": workers if parallel_report is not None else None,
            "topologies_per_second_parallel": (
                parallel_report.topologies_per_second if parallel_report is not None else None
            ),
            "speedup_parallel": speedup,
        },
    )

    assert serial_report.success_rate > 0.5
    assert serial_report.stats.solutions > 0

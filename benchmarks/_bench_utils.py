"""Shared helpers and scale constants for the benchmark harness."""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Fast mode (``REPRO_BENCH_FAST=1``) shrinks every scale constant so each
#: benchmark file finishes in seconds — it is what the CI smoke job runs.
#: The numbers it produces are *not* meaningful reproductions, only proof
#: that every harness still executes end to end.
FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "").strip().lower() in ("1", "true", "yes")

#: Scale of the benchmark run.  The default values give a clearly-learning
#: model in a few minutes of CPU time; the paper-scale configuration is
#: ``DiffPatternConfig.paper()`` and is documented in EXPERIMENTS.md.
if FAST_MODE:
    TRAIN_ITERATIONS = 30
    TRAIN_PATTERNS = 48
    DIFFUSION_STEPS = 8
    NUM_GENERATED = 8
else:
    TRAIN_ITERATIONS = 900
    TRAIN_PATTERNS = 256
    DIFFUSION_STEPS = 32
    NUM_GENERATED = 24


#: Worker count the benchmarks use for parallel legalisation.  The CI
#: bench-regression job sets ``REPRO_BENCH_WORKERS=4``; the default of 1
#: keeps local runs serial (and timing noise-free) unless asked otherwise.
BENCH_WORKERS = max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1") or 1))

#: The registry scenario every table/figure harness runs under.  The
#: benchmark conftest lowers it (with the fast-mode / worker scales above
#: layered as overrides) instead of hand-rolling a config literal.
BENCH_SCENARIO = "paper-tables"


def bench_plan():
    """The lowered run plan of the benchmark scenario at the active scale.

    ``BENCH_SCENARIO`` is resolved from the builtin registry and the module's
    scale constants (which shrink under ``REPRO_BENCH_FAST``) plus
    ``BENCH_WORKERS`` are layered over it exactly like an ``extends`` child —
    in a full-scale run the overrides coincide with the scenario's own values,
    so the benchmark regime *is* the registry regime.
    """
    from repro.scenarios import builtin_registry

    spec = builtin_registry().resolve(BENCH_SCENARIO).with_overrides(
        {
            "diffusion": {"num_steps": DIFFUSION_STEPS},
            "training": {"iterations": TRAIN_ITERATIONS, "num_patterns": TRAIN_PATTERNS},
            "engine": {"workers": BENCH_WORKERS},
            "run": {"num_generated": NUM_GENERATED},
        }
    )
    return spec.lower()


def write_result(name: str, text: str) -> Path:
    """Persist a benchmark artefact under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def write_metrics(name: str, metrics: dict) -> Path:
    """Persist machine-readable metrics for the CI bench-regression gate.

    Written as ``benchmarks/results/metrics_<name>.json``;
    ``benchmarks/check_regression.py`` compares them against the committed
    ``benchmarks/baselines.json``.  A metric value of ``None`` means "not
    measurable in this environment" and is skipped by the gate.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"metrics_{name}.json"
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    return path

"""Streaming generation graph — peak memory, wall-clock and parity vs batch.

The streaming stage graph pulls fixed-size chunks through
sample → prefilter → legalize → DRC and folds them into incremental
accumulators, so peak memory is bounded by the chunk size while the output
stays element-wise identical to the monolithic batch run.  This harness
measures both paths end to end on the shared trained pipeline:

* **parity** — patterns, diversity H and legality of the streamed run must
  equal the batch run exactly (the gate the whole refactor rests on),
* **peak allocations** — Python-heap peak (tracemalloc) of streaming with
  ``retain_topologies=False`` versus the batch path,
* **wall-clock** — streamed topologies/second, plus a multi-worker streamed
  run when ``REPRO_BENCH_WORKERS`` widens the legalization pool (CI only —
  the local container has a single core, so that metric is ``null`` there),
* **resume** — a second streamed run killed halfway and resumed from the
  pattern-library manifest must reproduce the uninterrupted library.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from _bench_utils import BENCH_WORKERS, FAST_MODE, NUM_GENERATED, write_metrics, write_result

from repro.library import PatternLibrary
from repro.pipeline import measure_streamed_generation

# More samples than the other harnesses: the memory comparison needs the run
# size to dominate the chunk size.
STREAM_GENERATED = NUM_GENERATED * (3 if FAST_MODE else 4)
CHUNK_SIZE = max(2, NUM_GENERATED // 2)


def _patterns_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        np.array_equal(pa.topology, pb.topology)
        and np.array_equal(pa.delta_x, pb.delta_x)
        and np.array_equal(pa.delta_y, pb.delta_y)
        for pa, pb in zip(a, b)
    )


def bench_streaming_pipeline(benchmark, trained_pipeline):
    batch = measure_streamed_generation(
        trained_pipeline, STREAM_GENERATED, rng=0, stream=False, workers=1
    )

    def streamed_run():
        return measure_streamed_generation(
            trained_pipeline,
            STREAM_GENERATED,
            chunk_size=CHUNK_SIZE,
            rng=0,
            stream=True,
            retain_topologies=False,
            workers=1,
        )

    streamed = benchmark.pedantic(streamed_run, rounds=1, iterations=1)

    parity = (
        _patterns_equal(batch.result.patterns, streamed.result.patterns)
        and batch.result.pattern_diversity == streamed.result.pattern_diversity
        and batch.result.legality == streamed.result.legality
        and batch.result.prefilter_reject_rate == streamed.result.prefilter_reject_rate
    )
    peak_ratio = (
        streamed.peak_bytes / batch.peak_bytes if batch.peak_bytes else None
    )

    # Kill a library-backed streamed run halfway (stop_after_chunks), then
    # resume it: the resumed run folds the stored chunks from the manifest
    # and generates the rest live — the mixed live+resumed path must
    # reproduce the uninterrupted patterns exactly.
    num_chunks = -(-STREAM_GENERATED // CHUNK_SIZE)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "library"

        def library_graph():
            return trained_pipeline.generation_graph(
                chunk_size=CHUNK_SIZE,
                workers=1,
                retain_topologies=False,
                library=PatternLibrary(root),
            )

        library_graph().run(STREAM_GENERATED, seed=0, stop_after_chunks=num_chunks // 2)
        resumed_graph = library_graph()
        resumed = resumed_graph.run(STREAM_GENERATED, seed=0, resume=True)
        resume_parity = (
            _patterns_equal(streamed.result.patterns, resumed.patterns)
            and resumed_graph.last_report.chunks_resumed == num_chunks // 2
            and resumed_graph.last_report.chunks_live == num_chunks - num_chunks // 2
        )
        library_summary = PatternLibrary(root).summary()

    # Multi-worker streamed throughput: only meaningful (and only gated) when
    # the benchmark was asked for a wider pool AND the host has the cores —
    # locally this stays null and the regression gate skips it.
    streamed_parallel_seconds = None
    if BENCH_WORKERS > 1 and (os.cpu_count() or 1) >= BENCH_WORKERS:
        parallel = measure_streamed_generation(
            trained_pipeline,
            STREAM_GENERATED,
            chunk_size=CHUNK_SIZE,
            rng=0,
            stream=True,
            retain_topologies=False,
            workers=BENCH_WORKERS,
        )
        parity = parity and _patterns_equal(
            batch.result.patterns, parallel.result.patterns
        )
        streamed_parallel_seconds = parallel.seconds

    lines = [
        f"workload: {STREAM_GENERATED} topologies, streaming chunks of {CHUNK_SIZE} "
        f"(batch = single {STREAM_GENERATED}-sample barrier)",
        "",
        f"batch     : {batch.seconds:.4f} s, peak allocations {batch.peak_megabytes:.2f} MiB",
        f"streamed  : {streamed.seconds:.4f} s, peak allocations {streamed.peak_megabytes:.2f} MiB",
        f"peak ratio (streamed/batch): {peak_ratio:.3f}" if peak_ratio else "",
        f"parity (patterns, H, legality): {parity}",
        f"resume parity (library manifest): {resume_parity}",
        f"library: {library_summary}",
    ]
    if streamed_parallel_seconds is not None:
        lines.append(
            f"streamed x{BENCH_WORKERS} workers: {streamed_parallel_seconds:.4f} s"
        )
    write_result("streaming_pipeline.txt", "\n".join(filter(None, lines)))

    write_metrics(
        "streaming_pipeline",
        {
            "fast_mode": FAST_MODE,
            "topologies": STREAM_GENERATED,
            "chunk_size": CHUNK_SIZE,
            "parity": parity,
            "resume_parity": resume_parity,
            "num_patterns": streamed.result.num_patterns,
            "legality": streamed.result.legality,
            "diversity": streamed.result.pattern_diversity,
            "peak_ratio_streamed_over_batch": peak_ratio,
            "batch_seconds": batch.seconds,
            "streamed_seconds": streamed.seconds,
            "streamed_parallel_seconds": streamed_parallel_seconds,
            "library_patterns": library_summary["patterns"],
        },
    )

    assert parity
    assert resume_parity

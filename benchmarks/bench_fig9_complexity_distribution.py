"""Fig. 9 — complexity distribution of real vs. generated pattern libraries.

The paper visualises the joint distribution of (cx, cy) for the real library
and the DiffPattern library and argues they are similar.  The reproduction
computes both 2-D histograms, reports their means, the histogram intersection
(overlap) and the diversity (Shannon entropy) of each library.
"""

from __future__ import annotations

from _bench_utils import NUM_GENERATED, write_result

from repro.metrics import pattern_diversity
from repro.pipeline import compare_complexity_distributions


def bench_fig9_complexity_distribution(benchmark, trained_pipeline, generated_topologies):
    real_patterns = trained_pipeline.dataset.real_patterns("all")
    result = trained_pipeline.legalize(generated_topologies, num_solutions=1, rng=0)
    generated_patterns = result.patterns
    if not generated_patterns:
        # Under-trained fallback: legalise held-out real topologies so the
        # figure harness still runs end to end (documented in EXPERIMENTS.md).
        held_out = trained_pipeline.dataset.topology_matrices("test")[:NUM_GENERATED]
        generated_patterns = trained_pipeline.legalize(held_out, rng=0).patterns

    comparison = benchmark.pedantic(
        lambda: compare_complexity_distributions(real_patterns, generated_patterns),
        rounds=3,
        iterations=1,
    )

    (real_cx, real_cy), (gen_cx, gen_cy) = comparison.mean_complexity()
    lines = [
        f"library sizes: real={len(real_patterns)}, generated={len(generated_patterns)}",
        f"prefilter reject rate of generated topologies: {result.prefilter_reject_rate:.2%}",
        f"mean complexity real:      cx={real_cx:.2f}  cy={real_cy:.2f}",
        f"mean complexity generated: cx={gen_cx:.2f}  cy={gen_cy:.2f}",
        f"histogram intersection (1.0 = identical): {comparison.overlap():.3f}",
        f"diversity H real:      {pattern_diversity(real_patterns):.4f}",
        f"diversity H generated: {pattern_diversity(generated_patterns):.4f}",
        "",
        "real distribution (rows=cx, cols=cy, probabilities):",
        _render(comparison.real_distribution),
        "",
        "generated distribution:",
        _render(comparison.generated_distribution),
    ]
    write_result("fig9_complexity_distribution.txt", "\n".join(lines))

    assert 0.0 <= comparison.overlap() <= 1.0
    assert comparison.real_distribution.sum() > 0.99
    assert comparison.generated_distribution.sum() > 0.99


def _render(distribution) -> str:
    rows = []
    for row in distribution:
        rows.append(" ".join(f"{value:.2f}" for value in row))
    return "\n".join(rows)

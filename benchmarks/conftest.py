"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables and figures at laptop scale: a
single diffusion model is trained once per benchmark session (a couple of
minutes on CPU) and reused by every experiment, mirroring how the paper uses
one trained model for its whole evaluation section.

Every benchmark writes its reproduction artefact (the table rows / figure
data) to ``benchmarks/results/`` so the numbers can be inspected after the
run, independent of pytest-benchmark's timing table.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import NUM_GENERATED, TRAIN_ITERATIONS, bench_plan

from repro.data import LayoutPatternDataset
from repro.pipeline import DiffPatternConfig, DiffPatternPipeline


@pytest.fixture(scope="session")
def bench_config() -> DiffPatternConfig:
    """The benchmark configuration, lowered from the ``paper-tables`` scenario.

    The registry scenario replaces the old hand-rolled literal and lowers to
    the bit-identical config (asserted by ``tests/test_scenarios.py``); the
    fast-mode scales and ``REPRO_BENCH_WORKERS`` ride in as spec overrides.
    Results are element-wise identical for any worker count.
    """
    return bench_plan().config


@pytest.fixture(scope="session")
def bench_dataset(bench_config) -> LayoutPatternDataset:
    """The synthetic pattern library shared by all methods."""
    return LayoutPatternDataset.synthesize(
        bench_plan().num_training_patterns, bench_config.dataset, rng=0
    )


@pytest.fixture(scope="session")
def trained_pipeline(bench_config, bench_dataset) -> DiffPatternPipeline:
    """A DiffPattern pipeline trained once and reused by every benchmark."""
    pipeline = DiffPatternPipeline(bench_config)
    pipeline.prepare_data(dataset=bench_dataset)
    pipeline.train(iterations=TRAIN_ITERATIONS, rng=0)
    return pipeline


@pytest.fixture(scope="session")
def generated_topologies(trained_pipeline) -> np.ndarray:
    """One shared batch of generated topologies."""
    return trained_pipeline.generate_topologies(NUM_GENERATED, rng=0)

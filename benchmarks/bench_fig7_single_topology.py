"""Fig. 7 — many different legal layout patterns from a single topology.

Given one generated topology and one rule set, the nonlinear system of
Eq. (14) has many solutions; each solution is a distinct legal pattern
sharing the same topology.  The reproduction generates six patterns from one
topology (as in the figure), verifies they are pairwise distinct and all
DRC-clean, and records their geometric vectors.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import write_result

from repro.drc import DesignRuleChecker
from repro.pipeline import geometry_signatures, patterns_from_single_topology


def _pick_topology(trained_pipeline, generated_topologies) -> np.ndarray:
    """Prefer a generated topology that passes the pre-filter, else a real one."""
    kept = trained_pipeline.prefilter.filter(list(generated_topologies)).kept
    if kept:
        return kept[0]
    return trained_pipeline.dataset.topology_matrices("test")[0]


def bench_fig7_patterns_from_single_topology(benchmark, trained_pipeline, generated_topologies):
    topology = _pick_topology(trained_pipeline, generated_topologies)
    rules = trained_pipeline.config.rules

    patterns = benchmark.pedantic(
        lambda: patterns_from_single_topology(topology, rules, num_patterns=6, rng=0),
        rounds=3,
        iterations=1,
    )

    checker = DesignRuleChecker(rules)
    signatures = geometry_signatures(patterns)
    lines = [f"topology shape: {topology.shape}, shapes: {int(topology.sum())} cells filled"]
    lines.append(f"patterns produced: {len(patterns)} (paper shows 6 per topology)")
    lines.append(f"distinct geometries: {len(set(signatures))}")
    lines.append(f"all DRC-clean: {all(checker.is_legal(p) for p in patterns)}")
    for index, pattern in enumerate(patterns):
        lines.append(f"  pattern {index}: delta_x={pattern.delta_x.tolist()}")
    write_result("fig7_single_topology.txt", "\n".join(lines))

    assert len(patterns) >= 2
    assert len(set(signatures)) >= 2
    assert all(checker.is_legal(p) for p in patterns)
    assert all(np.array_equal(p.topology, topology) for p in patterns)

"""Ablation — discrete diffusion vs. the "naive" continuous DDPM + threshold.

Section III-C argues that running a Gaussian diffusion model on the binary
topology and thresholding its output wastes model capacity compared to the
discrete formulation.  This ablation trains both models with an identical
budget (same U-Net size, same number of iterations, same data) and compares
how well their samples respect the most basic structural property of layout
topologies: no bow-ties and non-trivial sparsity.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import write_result

from repro.diffusion import (
    DiffusionConfig,
    DiscreteDiffusion,
    GaussianDiffusionConfig,
    GaussianTopologyDiffusion,
    gaussian_unet_config,
)
from repro.nn import UNet, UNetConfig
from repro.prefilter import TopologyPrefilter
from repro.squish import unfold

_ITERATIONS = 250
_NUM_SAMPLES = 12
_STEPS = 24


def _unet_config(num_classes: int, channels: int, spatial: int) -> UNetConfig:
    return UNetConfig(
        in_channels=channels,
        num_classes=num_classes,
        image_size=spatial,
        model_channels=8,
        channel_mult=(1, 2),
        num_res_blocks=1,
        attention_resolutions=(4,),
        dropout=0.0,
        seed=0,
    )


def _sample_quality(samples: np.ndarray) -> dict[str, float]:
    matrices = [unfold(t) for t in samples]
    prefilter = TopologyPrefilter()
    keep = prefilter.filter(matrices).keep_rate
    fill = float(np.mean([m.mean() for m in matrices]))
    return {"keep_rate": keep, "fill_ratio": fill}


def bench_ablation_discrete_vs_continuous(benchmark, bench_dataset):
    tensors = bench_dataset.topology_tensors("train")
    channels, spatial = tensors.shape[1], tensors.shape[2]
    train_fill = float(tensors.mean())

    discrete = DiscreteDiffusion(
        UNet(_unet_config(2, channels, spatial)),
        DiffusionConfig(num_steps=_STEPS, lambda_ce=0.05),
    )
    discrete.fit(tensors, iterations=_ITERATIONS, batch_size=8, rng=0)
    discrete_samples = benchmark.pedantic(
        lambda: discrete.sample(_NUM_SAMPLES, rng=0), rounds=1, iterations=1
    )
    discrete_quality = _sample_quality(discrete_samples)

    continuous = GaussianTopologyDiffusion(
        UNet(gaussian_unet_config(channels, spatial, model_channels=8, channel_mult=(1, 2),
                                  num_res_blocks=1, attention_resolutions=(4,), dropout=0.0, seed=0)),
        GaussianDiffusionConfig(num_steps=_STEPS),
    )
    continuous.fit(tensors, iterations=_ITERATIONS, batch_size=8, rng=0)
    continuous_quality = _sample_quality(continuous.sample(_NUM_SAMPLES, rng=0))

    lines = [
        f"training fill ratio of real topologies: {train_fill:.3f}",
        "",
        "model                      prefilter keep rate   sample fill ratio",
        f"{'discrete diffusion':<26}{discrete_quality['keep_rate']:>20.2%}{discrete_quality['fill_ratio']:>20.3f}",
        f"{'continuous + threshold':<26}{continuous_quality['keep_rate']:>20.2%}{continuous_quality['fill_ratio']:>20.3f}",
        "",
        "Expected shape (paper, Sec. III-C): with an equal training budget the",
        "discrete formulation produces structurally valid (bow-tie free)",
        "topologies at a higher rate than thresholded continuous diffusion.",
    ]
    write_result("ablation_discrete_vs_continuous.txt", "\n".join(lines))

    assert 0.0 <= discrete_quality["keep_rate"] <= 1.0
    assert 0.0 <= continuous_quality["keep_rate"] <= 1.0

"""Pattern-library v2 at scale — indexed probes, query latency, writer throughput.

The v2 store's claim is that dedup membership and metadata queries stay fast
as the library grows: the bloom filter answers absent probes without touching
a shard, and the sorted per-shard hash sidecars bound present probes by a
binary search.  This harness builds a library far larger than any unit-test
fixture (100k patterns at full scale) and measures:

* **indexed probe speedup** — ``has_pattern`` through the on-disk index
  versus the linear hash-list rescan a v1-style store would do (the gate the
  index earns its complexity with: >= 5x),
* **probe agreement** — the indexed answers must equal the linear oracle's
  bit-for-bit, on present and absent digests alike,
* **query latency** — an indexed ``query(complexity_band=...)`` over the full
  library, returning lazy handles without loading a single shard,
* **concurrent-writer throughput** — several OS processes appending through
  the advisory lock at once; the merged view must stay consistent (gap-free
  ``seq``, every writer's chunks complete) at a usable append rate.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from _bench_utils import FAST_MODE, write_metrics, write_result

from repro.library import ChunkRecord, PatternLibrary, pattern_hash
from repro.squish import SquishPattern

#: Library size for the probe/query phases.  Fast mode keeps the build under
#: a few seconds while staying large enough that a linear rescan visibly
#: loses to the index.
NUM_PATTERNS = 8_000 if FAST_MODE else 100_000
CHUNK_SIZE = 250 if FAST_MODE else 500
NUM_PROBES = 400  # half present, half absent

#: Concurrent-writer phase.
NUM_WRITERS = 4
CHUNKS_PER_WRITER = 4 if FAST_MODE else 16
WRITER_CHUNK_SIZE = 64

_SIZE = 8  # 8x8 topology: 64 bits, enough to encode any pattern id uniquely


def make_pattern(value: int) -> SquishPattern:
    """A unique, deterministic pattern per integer id (bit-encoded topology)."""
    bits = (value >> np.arange(_SIZE * _SIZE)) & 1
    topo = bits.reshape(_SIZE, _SIZE).astype(np.uint8)
    delta = np.full(_SIZE, 32, dtype=np.int64)
    return SquishPattern(topo, delta, delta)


def make_record(chunk: int, patterns: list) -> ChunkRecord:
    return ChunkRecord(
        chunk=chunk,
        start=chunk * CHUNK_SIZE,
        num_sampled=len(patterns),
        num_kept=len(patterns),
        num_rejected=0,
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]] if patterns else [],
    )


def build_library(root, num_patterns: int) -> list[str]:
    """Append ``num_patterns`` unique patterns; returns their hashes in order."""
    library = PatternLibrary(root, dedup=True, writer="bench")
    hashes: list[str] = []
    for chunk_start in range(0, num_patterns, CHUNK_SIZE):
        chunk = chunk_start // CHUNK_SIZE
        patterns = [
            make_pattern(value + 1)
            for value in range(chunk_start, min(chunk_start + CHUNK_SIZE, num_patterns))
        ]
        library.append_chunk(make_record(chunk, patterns), patterns)
        hashes.extend(pattern_hash(p) for p in patterns)
    return hashes


def linear_probe(all_hashes: list[str], digest: str) -> bool:
    """The v1-style membership check: rescan the full hash list."""
    for candidate in all_hashes:
        if candidate == digest:
            return True
    return False


def writer_worker(root, writer_index: int, barrier) -> None:
    library = PatternLibrary(root, dedup=True, writer=f"w{writer_index}")
    barrier.wait(timeout=120)
    base = writer_index * CHUNKS_PER_WRITER * WRITER_CHUNK_SIZE
    for chunk in range(CHUNKS_PER_WRITER):
        start = base + chunk * WRITER_CHUNK_SIZE
        patterns = [
            make_pattern(1_000_000 + start + offset)
            for offset in range(WRITER_CHUNK_SIZE)
        ]
        library.append_chunk(make_record(chunk, patterns), patterns)


def bench_library_scale(benchmark, tmp_path):
    hashes = build_library(tmp_path / "library", NUM_PATTERNS)
    assert len(hashes) == NUM_PATTERNS

    # Probe set: alternate present digests (spread across the whole library)
    # with absent ones (hashes of ids never appended).
    present = hashes[:: max(1, NUM_PATTERNS // (NUM_PROBES // 2))][: NUM_PROBES // 2]
    absent = [
        pattern_hash(make_pattern(NUM_PATTERNS + 7 + i)) for i in range(NUM_PROBES // 2)
    ]
    probes = [d for pair in zip(present, absent) for d in pair]

    reopened = PatternLibrary(tmp_path / "library")

    def indexed_probes():
        return [reopened.has_pattern(digest) for digest in probes]

    indexed_answers = indexed_probes()  # warm the index sidecars once
    start = time.perf_counter()
    indexed_answers = benchmark.pedantic(indexed_probes, rounds=1, iterations=1)
    indexed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    linear_answers = [linear_probe(hashes, digest) for digest in probes]
    linear_seconds = time.perf_counter() - start

    probe_agreement = indexed_answers == linear_answers
    probe_speedup = linear_seconds / indexed_seconds if indexed_seconds else None

    # Indexed metadata query over the whole library: lazy handles only.
    start = time.perf_counter()
    handles = reopened.query(complexity_band=(0, 10_000))
    query_seconds = time.perf_counter() - start
    query_handles_per_second = (
        len(handles) / query_seconds if query_seconds else None
    )
    assert len(handles) == NUM_PATTERNS

    # Concurrent writers through the advisory lock.
    concurrent_root = tmp_path / "concurrent"
    context = multiprocessing.get_context("spawn")
    barrier = context.Barrier(NUM_WRITERS + 1)
    processes = [
        context.Process(target=writer_worker, args=(concurrent_root, index, barrier))
        for index in range(NUM_WRITERS)
    ]
    for process in processes:
        process.start()
    barrier.wait(timeout=120)  # exclude interpreter spawn from the timing
    start = time.perf_counter()
    for process in processes:
        process.join(timeout=300)
    concurrent_seconds = time.perf_counter() - start
    assert all(process.exitcode == 0 for process in processes)

    merged = PatternLibrary(concurrent_root)
    records = merged.records_in_order()
    total_appended = NUM_WRITERS * CHUNKS_PER_WRITER * WRITER_CHUNK_SIZE
    merge_consistent = (
        [record.seq for record in records] == list(range(len(records)))
        and merged.writers == [f"w{i}" for i in range(NUM_WRITERS)]
        and all(
            [r.chunk for r in records if r.writer == f"w{i}"]
            == list(range(CHUNKS_PER_WRITER))
            for i in range(NUM_WRITERS)
        )
        and merged.num_patterns == total_appended
    )
    concurrent_patterns_per_second = (
        total_appended / concurrent_seconds if concurrent_seconds else None
    )

    lines = [
        f"library: {NUM_PATTERNS} unique patterns in chunks of {CHUNK_SIZE} "
        f"(writer 'bench'), probes: {len(probes)} (half present, half absent)",
        "",
        f"linear rescan : {linear_seconds:.4f} s for {len(probes)} probes",
        f"indexed probes: {indexed_seconds:.4f} s for {len(probes)} probes",
        f"probe speedup (linear/indexed): {probe_speedup:.1f}x",
        f"probe agreement with the linear oracle: {probe_agreement}",
        f"band query    : {len(handles)} lazy handles in {query_seconds:.4f} s "
        f"({query_handles_per_second:,.0f} handles/s)",
        f"concurrent    : {NUM_WRITERS} writers x {CHUNKS_PER_WRITER} chunks x "
        f"{WRITER_CHUNK_SIZE} patterns in {concurrent_seconds:.3f} s "
        f"({concurrent_patterns_per_second:,.0f} patterns/s), "
        f"merged view consistent: {merge_consistent}",
    ]
    write_result("library_scale.txt", "\n".join(lines))

    write_metrics(
        "library_scale",
        {
            "fast_mode": FAST_MODE,
            "num_patterns": NUM_PATTERNS,
            "num_probes": len(probes),
            "probe_agreement": probe_agreement,
            "probe_speedup_indexed_over_linear": probe_speedup,
            "indexed_probe_seconds": indexed_seconds,
            "linear_probe_seconds": linear_seconds,
            "query_handles": len(handles),
            "query_seconds": query_seconds,
            "query_handles_per_second": query_handles_per_second,
            "concurrent_writers": NUM_WRITERS,
            "concurrent_patterns": total_appended,
            "concurrent_seconds": concurrent_seconds,
            "concurrent_patterns_per_second": concurrent_patterns_per_second,
            "concurrent_merge_consistent": merge_consistent,
        },
    )

    assert probe_agreement
    assert merge_consistent

"""CI benchmark-regression gate.

Compares the machine-readable metrics the benchmark harnesses wrote to
``benchmarks/results/metrics_*.json`` against the committed baselines in
``benchmarks/baselines.json``, and exits non-zero on any regression.

Baseline format — one entry per benchmark, one spec per gated metric::

    {
      "table1": {
        "real_legality":  {"baseline": 1.0, "min": 1.0},
        "real_patterns":  {"baseline": 48,  "exact": true},
        "legalize_topologies_per_second": {"baseline": 140.0, "min_ratio": 0.25}
      }
    }

Spec keys (any combination; every present bound must hold):

* ``exact``      — measured value must equal ``baseline``,
* ``min`` / ``max``            — absolute bounds on the measured value,
* ``min_ratio`` / ``max_ratio`` — bounds relative to ``baseline`` (the
  tolerance band for throughput numbers, which vary with the host).

A measured value of ``null`` means the benchmark could not produce the
metric in this environment (e.g. a parallel speedup on a single-core host)
and skips the gate for that metric with a notice.  Metrics present in the
results but absent from the baselines are ignored; baselined metrics missing
from the results fail the gate.  Baselines were recorded in fast mode
(``REPRO_BENCH_FAST=1``); results from a different mode are rejected.

Usage::

    python benchmarks/check_regression.py [--results benchmarks/results]
        [--baselines benchmarks/baselines.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

HERE = Path(__file__).resolve().parent


def load_results(results_dir: Path) -> dict[str, dict]:
    """All ``metrics_<name>.json`` files keyed by ``<name>``."""
    metrics: dict[str, dict] = {}
    for path in sorted(results_dir.glob("metrics_*.json")):
        name = path.stem.removeprefix("metrics_")
        metrics[name] = json.loads(path.read_text())
    return metrics


def check_metric(name: str, measured: "float | int", spec: dict) -> "str | None":
    """One gate check; returns a failure message or ``None`` when it passes.

    ``None`` measurements never reach here — the caller skips them first.
    """
    baseline = spec.get("baseline")
    if spec.get("exact") and measured != baseline:
        return f"{name}: expected exactly {baseline!r}, measured {measured!r}"
    if "min" in spec and measured < spec["min"]:
        return f"{name}: measured {measured!r} < allowed minimum {spec['min']!r}"
    if "max" in spec and measured > spec["max"]:
        return f"{name}: measured {measured!r} > allowed maximum {spec['max']!r}"
    if "min_ratio" in spec:
        floor = spec["min_ratio"] * baseline
        if measured < floor:
            return (
                f"{name}: measured {measured!r} < {spec['min_ratio']:.2f} x "
                f"baseline {baseline!r} (= {floor:.4g})"
            )
    if "max_ratio" in spec:
        ceiling = spec["max_ratio"] * baseline
        if measured > ceiling:
            return (
                f"{name}: measured {measured!r} > {spec['max_ratio']:.2f} x "
                f"baseline {baseline!r} (= {ceiling:.4g})"
            )
    return None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=HERE / "results")
    parser.add_argument("--baselines", type=Path, default=HERE / "baselines.json")
    args = parser.parse_args(argv)

    baselines = json.loads(args.baselines.read_text())
    expected_fast = bool(baselines.pop("_fast_mode", True))
    results = load_results(args.results)

    failures: list[str] = []
    checked = 0
    skipped = 0
    for bench_name, specs in baselines.items():
        bench_metrics = results.get(bench_name)
        if bench_metrics is None:
            failures.append(f"{bench_name}: no metrics_{bench_name}.json in {args.results}")
            continue
        if bool(bench_metrics.get("fast_mode", True)) != expected_fast:
            failures.append(
                f"{bench_name}: metrics were produced in "
                f"{'fast' if bench_metrics.get('fast_mode') else 'full'} mode but the "
                f"baselines are {'fast' if expected_fast else 'full'}-mode numbers"
            )
            continue
        for metric_name, spec in specs.items():
            qualified = f"{bench_name}.{metric_name}"
            if metric_name not in bench_metrics:
                failures.append(f"{qualified}: metric missing from benchmark output")
                continue
            measured = bench_metrics[metric_name]
            if measured is None:
                print(f"SKIP  {qualified}: not measurable in this environment")
                skipped += 1
                continue
            message = check_metric(qualified, measured, spec)
            checked += 1
            if message is None:
                print(f"OK    {qualified}: {measured!r} (baseline {spec.get('baseline')!r})")
            else:
                failures.append(message)

    print()
    if failures:
        print(f"REGRESSION: {len(failures)} gate(s) failed ({checked} checked, {skipped} skipped)")
        for message in failures:
            print(f"  FAIL  {message}")
        return 1
    print(f"benchmark-regression gate passed: {checked} metric(s) checked, {skipped} skipped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

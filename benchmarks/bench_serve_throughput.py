"""Serve throughput — cross-request coalescing vs serial request handling.

``repro serve`` exists so that N concurrent clients asking for small sample
windows do not pay N separate sampling runs: the service coalesces every
waiting window into shared chunks over one :class:`~repro.pipeline.GenerationStream`.
This harness measures that claim end to end on the shared trained pipeline:

* **serial** — one :class:`~repro.serve.GenerationService`, requests
  submitted one at a time (each awaited before the next is admitted), so
  every window is generated in its own small batch;
* **coalesced** — a fresh service with the same stream identity, all
  requests submitted before the worker starts, so the whole workload is
  generated in ``max_batch``-sized shared chunks;
* **supervised coalesced** — the same coalesced workload through the
  fault-tolerant pool (``supervised=True``): generation runs in a child
  process under :class:`~repro.serve.SupervisedWorker`, so the measured
  speedup prices in the IPC round-trips and chunk pickling that crash
  isolation costs;
* **parity** — the patterns every variant delivers, spliced in
  source-sample order, must be bit-identical to each other *and* to a
  one-shot ``generate_and_legalize`` reference (the serving determinism
  contract);
* **latency** — p50/p95 request latency and mean batch occupancy of the
  coalesced run, straight from the service's ``/metrics`` counters.

The regression gate (``baselines.json``) holds both coalesced paths to at
least a 2x speedup over serial and to exact parity.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from _bench_utils import FAST_MODE, write_metrics, write_result

from repro.scenarios import ScenarioRegistry
from repro.serve import GenerateRequest, GenerationService, WorkerConfig
from repro.utils import as_rng

#: Concurrent clients and the window each one asks for.  Small windows are
#: the worst case for the serial path (tiny sampling batches) and exactly
#: the load profile coalescing is built for.
NUM_CLIENTS = 16
WINDOW = 1 if FAST_MODE else 4
TOTAL = NUM_CLIENTS * WINDOW

#: RNG seed the pipeline factory hands every stream open; keeping it fixed
#: makes serial, coalesced and the one-shot reference share one stream.
STREAM_SEED = 1234

SCENARIO = "bench-serve"


def _registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register_dict(
        SCENARIO,
        {
            "description": "serving throughput workload",
            "preset": "tiny",
            "engine": {"sample_batch_size": 64, "workers": 1},
            "run": {"num_generated": WINDOW, "seed": STREAM_SEED},
        },
    )
    return registry


def _patterns_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        np.array_equal(pa.topology, pb.topology)
        and np.array_equal(pa.delta_x, pb.delta_x)
        and np.array_equal(pa.delta_y, pb.delta_y)
        for pa, pb in zip(a, b)
    )


def _spliced(windows):
    """Patterns of the served windows, ordered by absolute source sample."""
    patterns, sources = [], []
    for window in windows:
        patterns.extend(window.patterns)
        sources.extend(window.sources)
    order = np.argsort(np.asarray(sources, dtype=np.int64), kind="stable")
    return [patterns[i] for i in order]


async def _run_serial(service) -> list:
    """Submit one request at a time; no two windows ever share a batch."""
    await service.start()
    windows = []
    try:
        for _ in range(NUM_CLIENTS):
            ticket = service.submit(GenerateRequest(scenario=SCENARIO, count=WINDOW))
            windows.append(await ticket.collect())
    finally:
        await service.stop()
    return windows


async def _run_coalesced(service) -> list:
    """Submit everything before the worker wakes; one shared chunk plan."""
    tickets = [
        service.submit(GenerateRequest(scenario=SCENARIO, count=WINDOW))
        for _ in range(NUM_CLIENTS)
    ]
    await service.start()
    try:
        return list(await asyncio.gather(*(t.collect() for t in tickets)))
    finally:
        await service.stop()


def bench_serve_throughput(benchmark, trained_pipeline):
    def factory(_plan):
        return trained_pipeline, as_rng(STREAM_SEED)

    def service(**kwargs) -> GenerationService:
        return GenerationService(
            registry=_registry(),
            pipeline_factory=factory,
            max_pending=NUM_CLIENTS,
            **kwargs,
        )

    plan = _registry().resolve(SCENARIO).lower()
    reference = trained_pipeline.generate_and_legalize(
        TOTAL,
        num_solutions=plan.num_solutions,
        rng=as_rng(STREAM_SEED),
        stream=plan.stream,
        retain_topologies=False,
    )

    start = time.perf_counter()
    serial_windows = asyncio.run(_run_serial(service()))
    serial_seconds = time.perf_counter() - start

    coalesced_service = service()

    def coalesced_run():
        return asyncio.run(_run_coalesced(coalesced_service))

    start = time.perf_counter()
    coalesced_windows = benchmark.pedantic(coalesced_run, rounds=1, iterations=1)
    coalesced_seconds = time.perf_counter() - start
    snapshot = coalesced_service.metrics.snapshot()

    # The supervised pool: same coalesced submission plan, but every engine
    # call crosses a process boundary to a heartbeat-watched child worker.
    supervised_service = service(
        supervised=True,
        worker_config=WorkerConfig(heartbeat_interval=0.2, restart_backoff=0.01),
    )
    start = time.perf_counter()
    supervised_windows = asyncio.run(_run_coalesced(supervised_service))
    supervised_seconds = time.perf_counter() - start
    supervised_snapshot = supervised_service.metrics.snapshot()

    serial_patterns = _spliced(serial_windows)
    coalesced_patterns = _spliced(coalesced_windows)
    supervised_patterns = _spliced(supervised_windows)
    parity = (
        all(w.ok for w in serial_windows + coalesced_windows)
        and _patterns_equal(serial_patterns, coalesced_patterns)
        and _patterns_equal(coalesced_patterns, reference.patterns)
    )
    supervised_parity = (
        all(w.ok for w in supervised_windows)
        and _patterns_equal(supervised_patterns, reference.patterns)
    )
    speedup = serial_seconds / coalesced_seconds if coalesced_seconds else None
    supervised_speedup = (
        serial_seconds / supervised_seconds if supervised_seconds else None
    )

    lines = [
        f"workload: {NUM_CLIENTS} clients x {WINDOW}-sample windows "
        f"({TOTAL} samples total)",
        "",
        f"serial     : {serial_seconds:.4f} s ({NUM_CLIENTS} single-window batches)",
        f"coalesced  : {coalesced_seconds:.4f} s "
        f"({snapshot['batches']} shared batches, "
        f"occupancy {snapshot['batch_occupancy_mean']:.2f} requests/batch)",
        f"supervised : {supervised_seconds:.4f} s "
        f"(coalesced through a child worker process, "
        f"{supervised_snapshot['worker_restarts']} restarts)",
        f"speedup (coalesced over serial)            : {speedup:.2f}x",
        f"speedup (supervised coalesced over serial) : {supervised_speedup:.2f}x",
        f"request latency: p50 {snapshot['request_latency_p50_seconds']:.4f} s, "
        f"p95 {snapshot['request_latency_p95_seconds']:.4f} s",
        f"parity (serial == coalesced == one-shot): {parity}",
        f"parity (supervised == one-shot)         : {supervised_parity}",
    ]
    write_result("serve_throughput.txt", "\n".join(lines))

    write_metrics(
        "serve_throughput",
        {
            "fast_mode": FAST_MODE,
            "num_clients": NUM_CLIENTS,
            "window": WINDOW,
            "total_samples": TOTAL,
            "serial_seconds": serial_seconds,
            "coalesced_seconds": coalesced_seconds,
            "supervised_seconds": supervised_seconds,
            "speedup_coalesced_over_serial": speedup,
            "speedup_supervised_coalesced_over_serial": supervised_speedup,
            "serve_parity": parity,
            "supervised_parity": supervised_parity,
            "worker_restarts": supervised_snapshot["worker_restarts"],
            "num_patterns": len(coalesced_patterns),
            "batches": snapshot["batches"],
            "batch_occupancy_mean": snapshot["batch_occupancy_mean"],
            "request_latency_p50_seconds": snapshot["request_latency_p50_seconds"],
            "request_latency_p95_seconds": snapshot["request_latency_p95_seconds"],
            "cache_hit_rate": snapshot["cache_hit_rate"],
        },
    )

    assert parity
    assert supervised_parity

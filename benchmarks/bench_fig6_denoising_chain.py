"""Fig. 6 — illustration of the reverse (denoising) diffusion chain.

The paper shows flattened samples of the chain T_K -> ... -> T̂_0: the state
starts as uniform salt-and-pepper noise (fill ratio ~0.5) and progressively
organises into a sparse, blocky layout topology.  The reproduction records the
fill ratio and bow-tie count of the intermediate states and renders the first,
middle and final state as ASCII art.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import write_result

from repro.geometry import has_bowtie
from repro.pipeline import render_topology, run_denoising_chain


def bench_fig6_denoising_chain(benchmark, trained_pipeline):
    """Sample one reverse chain (the timed body) and report its statistics."""
    stride = max(1, trained_pipeline.config.diffusion.num_steps // 8)

    chain = benchmark.pedantic(
        lambda: run_denoising_chain(trained_pipeline, chain_stride=stride, rng=0),
        rounds=1,
        iterations=1,
    )

    fills = chain.fill_ratios()
    lines = ["step_index  fill_ratio  has_bowtie"]
    for index, (matrix, fill) in enumerate(zip(chain.matrices, fills)):
        lines.append(f"{index:>10}  {fill:>10.3f}  {str(has_bowtie(matrix)):>10}")
    lines.append("")
    lines.append("initial state (T_K):")
    lines.append(render_topology(chain.matrices[0]))
    lines.append("")
    lines.append("final state (T̂_0):")
    lines.append(render_topology(chain.matrices[-1]))
    write_result("fig6_denoising_chain.txt", "\n".join(lines))

    # Shape check: the chain starts near the uniform stationary distribution
    # and ends markedly sparser (layout topologies are information-sparse).
    assert 0.35 < fills[0] < 0.65
    assert fills[-1] < fills[0]
    assert np.isfinite(fills).all()

"""Fig. 8 — legal patterns from the same topology under different design rules.

Because topology generation and legalisation are decoupled, the same topology
can be legalised under new design rules without retraining the generator.
The reproduction legalises one topology under (a) the normal rules,
(b) a larger space_min and (c) a smaller area_max, and verifies that every
solved scenario is DRC-clean under *its own* rule set.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.legalization import LARGER_SPACE_RULES, NORMAL_RULES, SMALLER_AREA_RULES
from repro.pipeline import patterns_under_rule_scenarios


def _pick_topology(trained_pipeline, generated_topologies):
    kept = trained_pipeline.prefilter.filter(list(generated_topologies)).kept
    if kept:
        return kept[0]
    return trained_pipeline.dataset.topology_matrices("test")[0]


def bench_fig8_same_topology_different_rules(benchmark, trained_pipeline, generated_topologies):
    topology = _pick_topology(trained_pipeline, generated_topologies)
    scenarios = [
        ("(a) normal rules", NORMAL_RULES),
        ("(b) larger space_min", LARGER_SPACE_RULES),
        ("(c) smaller area_max", SMALLER_AREA_RULES),
    ]

    results = benchmark.pedantic(
        lambda: patterns_under_rule_scenarios(topology, scenarios, rng=0), rounds=3, iterations=1
    )

    lines = ["scenario                solved  legal  space_min  area_max"]
    for scenario in results:
        solved = scenario.pattern is not None
        lines.append(
            f"{scenario.name:<22}{str(solved):>8}{str(scenario.legal):>7}"
            f"{scenario.rules.space_min:>11}{scenario.rules.area_max:>10}"
        )
    write_result("fig8_rule_flexibility.txt", "\n".join(lines))

    # The normal-rule scenario must be solvable (the topology came from data /
    # the generator under those rules), and every solved scenario is legal.
    assert results[0].pattern is not None and results[0].legal
    assert all(s.legal for s in results if s.pattern is not None)

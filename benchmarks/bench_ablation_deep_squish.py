"""Ablation — Deep Squish channel folding vs. a flat one-channel topology.

Section III-B motivates Deep Squish with the observation that diffusion-model
cost is dominated by the spatial input size, not the channel count.  This
ablation times a U-Net training step on the *same* topology information
presented two ways:

* flat:  1 channel  x 16 x 16 (the plain squish matrix),
* deep:  4 channels x  8 x  8 (the deep-squish folded tensor),
* deeper: 16 channels x 4 x 4.

The deep representations should be clearly faster per step while remaining
lossless (verified by the fold/unfold roundtrip in the test suite).
"""

from __future__ import annotations

import time

import numpy as np

from _bench_utils import write_result

from repro.diffusion import DiffusionConfig, DiscreteDiffusion
from repro.nn import UNet, UNetConfig
from repro.squish import fold


def _training_step_time(channels: int, matrix_size: int, matrices: np.ndarray, steps: int = 3) -> float:
    """Average seconds of one loss+backward step at the given folding."""
    spatial = matrix_size // int(np.sqrt(channels))
    config = UNetConfig(
        in_channels=channels,
        num_classes=2,
        image_size=spatial,
        model_channels=16,
        channel_mult=(1, 2),
        num_res_blocks=1,
        attention_resolutions=(),
        dropout=0.0,
        seed=0,
    )
    model = DiscreteDiffusion(UNet(config), DiffusionConfig(num_steps=16, lambda_ce=0.05))
    tensors = np.stack([fold(m, channels) for m in matrices], axis=0).astype(np.int64)
    # warm-up
    loss, _ = model.loss(tensors[:4], rng=0, k=8)
    loss.backward()
    start = time.perf_counter()
    for _ in range(steps):
        model.model.zero_grad()
        loss, _ = model.loss(tensors[:4], rng=0, k=8)
        loss.backward()
    return (time.perf_counter() - start) / steps


def bench_ablation_deep_squish_folding(benchmark, bench_dataset):
    matrices = bench_dataset.topology_matrices("train")[:8]
    matrix_size = matrices.shape[1]

    flat_time = _training_step_time(1, matrix_size, matrices)
    deep_time = benchmark.pedantic(
        lambda: _training_step_time(4, matrix_size, matrices), rounds=1, iterations=1
    )
    deeper_time = _training_step_time(16, matrix_size, matrices)

    lines = [
        "representation            channels  spatial  sec/step  speedup vs flat",
        f"{'flat squish matrix':<26}{1:>9}{matrix_size:>9}{flat_time:>10.4f}{1.0:>17.2f}x",
        f"{'deep squish (C=4)':<26}{4:>9}{matrix_size // 2:>9}{deep_time:>10.4f}{flat_time / deep_time:>17.2f}x",
        f"{'deep squish (C=16)':<26}{16:>9}{matrix_size // 4:>9}{deeper_time:>10.4f}{flat_time / deeper_time:>17.2f}x",
    ]
    write_result("ablation_deep_squish.txt", "\n".join(lines))

    # The claim being reproduced: shrinking the spatial size (while growing
    # channels losslessly) reduces per-step cost.
    assert deep_time < flat_time
    assert deeper_time < flat_time

"""Table II — model efficiency (sampling vs. Solving-R vs. Solving-E).

The paper reports the average per-sample cost of topology sampling and of the
nonlinear legalisation solve with random (Solving-R) versus dataset-seeded
(Solving-E) initialisation, with Solving-E ~2.3x faster.  Absolute times here
reflect the NumPy substrate and the benchmark machine; the relative ordering
(Solving-E at least as fast as Solving-R) is the reproduced claim.
"""

from __future__ import annotations

from _bench_utils import FAST_MODE, NUM_GENERATED, write_metrics, write_result

from repro.legalization import SolverOptions
from repro.pipeline import measure_solving_time, run_efficiency_experiment


def bench_table2_sampling_and_solving(benchmark, trained_pipeline):
    """Time the full Table II harness (the timed body is one solver call)."""
    report = run_efficiency_experiment(trained_pipeline, num_samples=8, rng=0)

    # Batched throughput of the sampling engine at the library-generation
    # batch size (per-sample cost amortises with the batch).
    engine = trained_pipeline.sampling_engine()
    _, batched = engine.sample_with_report(NUM_GENERATED, seed=0)

    # pytest-benchmark statistics for the solver on one representative topology.
    topologies = trained_pipeline.dataset.topology_matrices("test")[:1]
    rules = trained_pipeline.config.rules

    def solve_one():
        return measure_solving_time(list(topologies), rules, rng=0, options=SolverOptions())

    benchmark(solve_one)

    lines = [report.format()]
    ratio = report.solving_existing.acceleration
    lines.append("")
    lines.append(f"Solving-E acceleration over Solving-R: {ratio:.2f}x (paper: 2.30x)")
    lines.append("")
    lines.append(f"Sampling engine at batch {NUM_GENERATED}:")
    lines.append(batched.format())
    write_result("table2_efficiency.txt", "\n".join(lines))

    legalization = report.legalization_report
    write_metrics(
        "table2",
        {
            "fast_mode": FAST_MODE,
            "sampling_seconds_per_sample": report.sampling.seconds_per_sample,
            "solving_r_seconds": report.solving_random.seconds_per_sample,
            "solving_e_seconds": report.solving_existing.seconds_per_sample,
            "solving_e_acceleration": ratio,
            "sampling_samples_per_second": batched.samples_per_second,
            "legalize_success_rate": (
                legalization.success_rate if legalization is not None else None
            ),
            "legalize_topologies_per_second": (
                legalization.topologies_per_second if legalization is not None else None
            ),
        },
    )

    assert report.sampling.seconds_per_sample > 0
    assert report.solving_random.seconds_per_sample > 0
    assert report.solving_existing.seconds_per_sample > 0
    assert batched.samples_per_second > 0
    assert report.sampling_report is not None
    assert report.legalization_report is not None

"""Snapshot benchmark metrics into a committed ``BENCH_<label>.json``.

Each PR that touches performance commits one snapshot of the machine-readable
benchmark metrics it was validated against, so the repository carries a
throughput paper trail next to the code (``BENCH_PR6.json`` was the first).
This helper makes every snapshot the same shape: it collects the
``benchmarks/results/metrics_*.json`` files a harness run produced and folds
them into one document keyed by benchmark name.

Usage::

    REPRO_BENCH_FAST=1 python -m pytest benchmarks/ -q --benchmark-disable
    python tools/collect_bench.py PR7                 # writes BENCH_PR7.json
    python tools/collect_bench.py PR7 --only fewstep_sampling table2

The snapshot records no timestamps or host details on purpose: fast-mode
metrics are deterministic per seed, so re-running the harnesses must
reproduce the committed file bit-for-bit (timing-valued metrics are the
exception and are expected to drift — the regression gate, not the snapshot,
bounds those).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"


def collect(results_dir: Path, only: "list[str] | None" = None) -> dict:
    """All ``metrics_<name>.json`` documents keyed by ``<name>``.

    ``only`` restricts the snapshot to the named benchmarks; naming one with
    no metrics file is an error (a silent miss would commit a hole).
    """
    metrics: dict[str, dict] = {}
    for path in sorted(results_dir.glob("metrics_*.json")):
        name = path.stem.removeprefix("metrics_")
        if only and name not in only:
            continue
        metrics[name] = json.loads(path.read_text())
    if only:
        missing = sorted(set(only) - set(metrics))
        if missing:
            raise FileNotFoundError(
                f"no metrics for {', '.join(missing)} under {results_dir}; "
                "run the corresponding benchmark harness first"
            )
    if not metrics:
        raise FileNotFoundError(
            f"no metrics_*.json under {results_dir}; run the benchmark "
            "harnesses first (see README.md)"
        )
    return metrics


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "label",
        help="snapshot label, e.g. PR7 -> BENCH_PR7.json at the repo root",
    )
    parser.add_argument("--results", type=Path, default=RESULTS_DIR)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: BENCH_<label>.json at the repo root)",
    )
    parser.add_argument(
        "--only", nargs="+", default=None, metavar="NAME",
        help="restrict the snapshot to these benchmark names",
    )
    args = parser.parse_args(argv)

    try:
        metrics = collect(args.results, args.only)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    snapshot = {"label": args.label, "benchmarks": metrics}
    out = args.out if args.out is not None else REPO_ROOT / f"BENCH_{args.label}.json"
    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"{out}: {len(metrics)} benchmark(s) snapshotted: {', '.join(sorted(metrics))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

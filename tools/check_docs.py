"""Docs gate: execute every ``python`` code block and verify cross-links.

Usage::

    PYTHONPATH=src python tools/check_docs.py [FILES...]

With no arguments, checks ``docs/*.md`` plus ``README.md``.  Two classes of
failure, both fatal:

* **Broken code block** — every fenced block whose info string starts with
  ``python`` is executed (doctest-style) in a per-file namespace, with the
  working directory switched to a throw-away temp dir so examples may write
  files freely.  A block whose info string contains ``no-run`` is only
  compiled, not executed (for paper-scale snippets that would take hours).
* **Broken link** — every relative markdown link must resolve to an existing
  file, and a ``#fragment`` (same-file or cross-file) must match a heading
  of the target document under GitHub's anchor slug rules.

The CI ``docs`` job runs this; run it locally before editing docs/.
"""

from __future__ import annotations

import re
import sys
import tempfile
import traceback
from contextlib import chdir
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# Absolute src path: blocks execute from a temp cwd, where a relative
# PYTHONPATH=src entry would no longer resolve.
sys.path.insert(0, str(REPO_ROOT / "src"))

_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.DOTALL | re.MULTILINE)
# [text](target) — skipping images is fine: we ship none.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, dashes, ascii-ish)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def stripped_prose(markdown: str) -> str:
    """The document with fenced code blocks removed (links in code don't count)."""
    return _FENCE.sub("", markdown)


def heading_slugs(path: Path) -> set[str]:
    text = stripped_prose(path.read_text())
    return {github_slug(match.group(1)) for match in _HEADING.finditer(text)}


def check_links(path: Path, errors: list[str]) -> None:
    for match in _LINK.finditer(stripped_prose(path.read_text())):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        ref, _, fragment = target.partition("#")
        dest = path if not ref else (path.parent / ref).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link {target!r} ({dest} does not exist)")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in heading_slugs(dest):
                errors.append(
                    f"{path}: broken anchor {target!r} "
                    f"(no heading slugs to {fragment!r} in {dest.name})"
                )


def check_code_blocks(path: Path, errors: list[str]) -> int:
    """Execute the file's python blocks in one shared namespace; returns count."""
    namespace: dict = {"__name__": f"docs_block[{path.name}]"}
    count = 0
    for match in _FENCE.finditer(path.read_text()):
        info, body = match.group(1).strip(), match.group(2)
        if not info.startswith("python"):
            continue
        count += 1
        label = f"{path}: python block #{count}"
        try:
            code = compile(body, f"<{label}>", "exec")
        except SyntaxError:
            errors.append(f"{label} does not compile:\n{traceback.format_exc(limit=0)}")
            continue
        if "no-run" in info:
            continue
        with tempfile.TemporaryDirectory() as tmp, chdir(tmp):
            try:
                exec(code, namespace)  # noqa: S102 - executing our own docs
            except Exception:
                errors.append(f"{label} raised:\n{traceback.format_exc(limit=3)}")
    return count


def main(argv: "list[str] | None" = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args:
        files = [Path(arg).resolve() for arg in args]
    else:
        files = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]
    errors: list[str] = []
    total_blocks = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file does not exist")
            continue
        check_links(path, errors)
        total_blocks += check_code_blocks(path, errors)
    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    print(f"checked {len(files)} file(s), {total_blocks} python block(s): "
          f"{'FAILED' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Property-based tests: the indexed v2 library against brute-force oracles.

The central property the index must uphold: for any append sequence, the
sidecar/bloom/mmap probe path produces **bit-equal dedup decisions** to the
v1 in-memory hash sets.  Hypothesis drives randomized chunk sequences with
heavy hash collisions; oracles are plain Python sets and list scans.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.library import ChunkRecord, PatternLibrary, pattern_hash
from repro.metrics import pattern_complexity
from repro.squish import SquishPattern

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# chunk plans: up to 6 chunks of 0..4 fills drawn from a tiny alphabet, so
# intra-chunk, inter-chunk and cross-writer duplicates are all common
chunk_plans = st.lists(
    st.lists(st.integers(0, 9), min_size=0, max_size=4), min_size=1, max_size=6
)


def make_pattern(fill: int, size: int = 4, step: int = 32) -> SquishPattern:
    topo = np.zeros((size, size), dtype=np.uint8)
    topo[1 : 1 + (fill % (size - 1)) + 0, 1:3] = 1
    topo[0, fill % size] = 1
    delta = np.full(size, step, dtype=np.int64)
    return SquishPattern(topo, delta, delta + fill)


def make_record(chunk: int, patterns: list[SquishPattern]) -> ChunkRecord:
    return ChunkRecord(
        chunk=chunk,
        start=chunk * 4,
        num_sampled=max(4, len(patterns)),
        num_kept=len(patterns),
        num_rejected=0,
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]] if patterns else [],
    )


def append_plan(root: Path, plan, writer):
    library = PatternLibrary(root, dedup=True, writer=writer)
    decisions = []
    for chunk, fills in enumerate(plan):
        patterns = [make_pattern(f) for f in fills]
        record = make_record(chunk, patterns)
        library.append_chunk(record, patterns)
        decisions.append((record.num_stored, record.duplicates_skipped))
    return library, decisions


class TestDedupEquivalence:
    @SETTINGS
    @given(chunk_plans)
    def test_indexed_dedup_equals_v1_in_memory_sets(self, plan):
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            v1, v1_decisions = append_plan(scratch / "v1", plan, writer=None)
            v2, v2_decisions = append_plan(scratch / "v2", plan, writer="w")
            assert v2_decisions == v1_decisions
            assert [pattern_hash(p) for p in v2.load_patterns()] == [
                pattern_hash(p) for p in v1.load_patterns()
            ]
            assert v2.num_unique_topologies == v1.num_unique_topologies

    @SETTINGS
    @given(chunk_plans)
    def test_dedup_decisions_match_a_set_oracle(self, plan):
        with tempfile.TemporaryDirectory() as scratch:
            _, decisions = append_plan(Path(scratch), plan, writer="w")
            seen: set[str] = set()
            for fills, (stored, skipped) in zip(plan, decisions):
                expected_stored = 0
                for fill in fills:
                    digest = pattern_hash(make_pattern(fill))
                    if digest not in seen:
                        seen.add(digest)
                        expected_stored += 1
                assert stored == expected_stored
                assert skipped == len(fills) - expected_stored

    @SETTINGS
    @given(chunk_plans)
    def test_membership_probes_match_oracle_after_reopen(self, plan):
        with tempfile.TemporaryDirectory() as scratch:
            library, _ = append_plan(Path(scratch), plan, writer="w")
            stored = {pattern_hash(p) for p in library.load_patterns()}
            reread = PatternLibrary(Path(scratch))
            for fill in range(12):
                digest = pattern_hash(make_pattern(fill))
                assert reread.has_pattern(digest) == (digest in stored)


class TestCompactionProperties:
    @SETTINGS
    @given(chunk_plans, st.integers(1, 8))
    def test_compaction_preserves_unique_in_order_multiset(self, plan, target):
        with tempfile.TemporaryDirectory() as scratch:
            root = Path(scratch)
            library = PatternLibrary(root, dedup=False, writer="w")
            for chunk, fills in enumerate(plan):
                patterns = [make_pattern(f) for f in fills]
                library.append_chunk(make_record(chunk, patterns), patterns)
            before = [pattern_hash(p) for p in library.load_patterns()]
            expected = list(dict.fromkeys(before))
            library.compact(target_shard_patterns=target, drop_duplicates=True)
            assert [pattern_hash(p) for p in library.load_patterns()] == expected
            # and the rebuilt index still answers membership correctly
            for digest in expected:
                assert library.has_pattern(digest)

    @SETTINGS
    @given(chunk_plans, st.integers(1, 8))
    def test_query_band_matches_brute_force(self, plan, lo):
        with tempfile.TemporaryDirectory() as scratch:
            library, _ = append_plan(Path(scratch), plan, writer="w")
            hi = lo + 4
            expected = sorted(
                pattern_hash(p)
                for p in library.load_patterns()
                if lo <= sum(pattern_complexity(p)) <= hi
            )
            got = sorted(
                h.pattern_hash for h in library.query(complexity_band=(lo, hi))
            )
            assert got == expected

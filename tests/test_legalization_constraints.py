"""Unit tests for design rules and constraint extraction (Eq. 14)."""

import numpy as np
import pytest

from repro.legalization import (
    LARGER_SPACE_RULES,
    NORMAL_RULES,
    SMALLER_AREA_RULES,
    DesignRules,
    IntervalConstraint,
    extract_constraints,
    polygon_area,
)


class TestDesignRules:
    def test_defaults_are_consistent(self):
        rules = DesignRules()
        assert rules.space_min > 0 and rules.width_min > 0
        assert rules.area_min <= rules.area_max
        assert rules.pattern_size == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignRules(space_min=0)
        with pytest.raises(ValueError):
            DesignRules(area_min=10, area_max=5)
        with pytest.raises(ValueError):
            DesignRules(pattern_size=-1)

    def test_rule_variants_for_fig8(self):
        assert LARGER_SPACE_RULES.space_min > NORMAL_RULES.space_min
        assert SMALLER_AREA_RULES.area_max < NORMAL_RULES.area_max

    def test_with_helpers_return_new_objects(self):
        rules = DesignRules()
        assert rules.with_space_min(100).space_min == 100
        assert rules.with_width_min(50).width_min == 50
        assert rules.with_area_range(1, 2).area_max == 2
        assert rules.space_min == DesignRules().space_min  # original unchanged


class TestConstraintExtraction:
    def test_single_rectangle_constraints(self):
        topo = np.zeros((4, 4), dtype=np.uint8)
        topo[1:3, 1:3] = 1
        constraints = extract_constraints(topo, width_min=30, space_min=20)
        # one width run along x (columns 1..2) and one along y (rows 1..2)
        axes = {(c.axis, c.start, c.end) for c in constraints.width_constraints}
        assert ("x", 1, 2) in axes and ("y", 1, 2) in axes
        assert constraints.space_constraints == []
        assert constraints.num_polygons == 1

    def test_space_constraint_between_two_shapes(self):
        topo = np.zeros((1, 5), dtype=np.uint8)
        topo[0, 0] = 1
        topo[0, 4] = 1
        constraints = extract_constraints(topo, width_min=30, space_min=20)
        spaces = [(c.axis, c.start, c.end) for c in constraints.space_constraints]
        assert spaces == [("x", 1, 3)]
        assert all(c.minimum == 20 for c in constraints.space_constraints)

    def test_border_gaps_are_not_space_constraints(self):
        topo = np.zeros((1, 5), dtype=np.uint8)
        topo[0, 2] = 1
        constraints = extract_constraints(topo, width_min=30, space_min=20)
        assert constraints.space_constraints == []

    def test_duplicate_runs_are_deduplicated(self):
        topo = np.zeros((4, 4), dtype=np.uint8)
        topo[0:4, 1:3] = 1  # same column run repeated on every row
        constraints = extract_constraints(topo, width_min=30, space_min=20)
        x_widths = [c for c in constraints.width_constraints if c.axis == "x"]
        assert len(x_widths) == 1

    def test_polygon_cells_and_area(self):
        topo = np.zeros((3, 3), dtype=np.uint8)
        topo[0, 0] = 1
        topo[2, 1:3] = 1
        constraints = extract_constraints(topo, 10, 10)
        assert constraints.num_polygons == 2
        dx = np.array([10, 20, 30])
        dy = np.array([5, 6, 7])
        areas = sorted(polygon_area(cells, dx, dy) for cells in constraints.polygon_cells)
        assert areas == [50.0, (20 + 30) * 7.0]

    def test_interval_constraint_indices(self):
        constraint = IntervalConstraint("x", 2, 5, 40, "width")
        np.testing.assert_array_equal(constraint.indices(), [2, 3, 4, 5])

    def test_all_interval_constraints_concatenates(self):
        topo = np.zeros((1, 5), dtype=np.uint8)
        topo[0, 0] = 1
        topo[0, 4] = 1
        constraints = extract_constraints(topo, 30, 20)
        assert len(constraints.all_interval_constraints) == (
            len(constraints.width_constraints) + len(constraints.space_constraints)
        )

    def test_empty_topology_has_no_constraints(self):
        constraints = extract_constraints(np.zeros((3, 3), dtype=np.uint8), 10, 10)
        assert constraints.width_constraints == []
        assert constraints.space_constraints == []
        assert constraints.num_polygons == 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            extract_constraints(np.full((2, 2), 2), 10, 10)

"""Integration tests for the end-to-end DiffPattern pipeline and harnesses."""

import numpy as np
import pytest

from repro.baselines import CAEConfig, CAEGenerator
from repro.drc import DesignRuleChecker
from repro.legalization import LARGER_SPACE_RULES, NORMAL_RULES, SMALLER_AREA_RULES
from repro.pipeline import (
    DiffPatternConfig,
    DiffPatternPipeline,
    DiffPatternTopologyGenerator,
    attach_reference_geometry,
    compare_complexity_distributions,
    evaluate_baseline,
    evaluate_diffpattern,
    evaluate_real_patterns,
    format_table,
    geometry_signatures,
    measure_solving_time,
    patterns_from_single_topology,
    patterns_under_rule_scenarios,
    render_pattern,
    render_topology,
    run_denoising_chain,
    run_efficiency_experiment,
)


class TestConfig:
    def test_presets_have_consistent_unet(self):
        for preset in (DiffPatternConfig.tiny(), DiffPatternConfig.laptop(), DiffPatternConfig.paper()):
            unet = preset.unet_config()
            assert unet.in_channels == preset.dataset.channels
            assert unet.image_size == preset.tensor_size

    def test_paper_preset_matches_paper_numbers(self):
        paper = DiffPatternConfig.paper()
        assert paper.diffusion.num_steps == 1000
        assert paper.dataset.channels == 16
        assert paper.tensor_size == 32
        assert paper.model_channels == 128

    def test_rules_propagate_to_dataset(self):
        config = DiffPatternConfig.tiny(rules=LARGER_SPACE_RULES)
        assert config.dataset.rules == LARGER_SPACE_RULES


class TestPipelinePhases:
    def test_prepare_data_and_train(self, trained_tiny_pipeline):
        assert trained_tiny_pipeline.dataset is not None
        assert trained_tiny_pipeline.training_history

    def test_generate_topologies_shape(self, trained_tiny_pipeline):
        topologies = trained_tiny_pipeline.generate_topologies(3, rng=0)
        size = trained_tiny_pipeline.config.dataset.matrix_size
        assert topologies.shape == (3, size, size)
        assert set(np.unique(topologies)).issubset({0, 1})

    def test_generate_before_training_raises(self):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        with pytest.raises(RuntimeError):
            pipeline.generate_topologies(1)

    def test_train_before_data_raises(self):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        with pytest.raises(RuntimeError):
            pipeline.train(iterations=1)

    def test_legalize_counts_are_consistent(self, trained_tiny_pipeline, tiny_dataset):
        # Use real (legal) topologies so the pre-filter keeps them all and the
        # solver outcome is deterministic regardless of training quality.
        topologies = tiny_dataset.topology_matrices("test")[:4]
        result = trained_tiny_pipeline.legalize(topologies, num_solutions=1, rng=0)
        assert result.prefilter_reject_rate == 0.0
        assert len(result.kept_topologies) == 4
        assert result.num_patterns + result.unsolved >= len(result.kept_topologies) - result.unsolved

    def test_legalized_patterns_are_drc_clean(self, trained_tiny_pipeline, tiny_dataset):
        topologies = tiny_dataset.topology_matrices("test")[:4]
        result = trained_tiny_pipeline.legalize(topologies, num_solutions=1, rng=0)
        checker = DesignRuleChecker(trained_tiny_pipeline.config.rules)
        assert result.num_patterns > 0
        assert result.legality == 1.0
        assert all(checker.is_legal(p) for p in result.patterns)

    def test_diffpattern_l_mode_multiplies_patterns(self, trained_tiny_pipeline, tiny_dataset):
        topologies = tiny_dataset.topology_matrices("test")[:2]
        single = trained_tiny_pipeline.legalize(topologies, num_solutions=1, rng=0)
        multi = trained_tiny_pipeline.legalize(topologies, num_solutions=3, rng=0)
        assert multi.num_patterns > single.num_patterns

    def test_checkpoint_roundtrip(self, trained_tiny_pipeline, tmp_path):
        path = tmp_path / "diffpattern.npz"
        trained_tiny_pipeline.save_model(path)
        fresh = DiffPatternPipeline(trained_tiny_pipeline.config)
        fresh.dataset = trained_tiny_pipeline.dataset
        fresh.load_model(path)
        a = trained_tiny_pipeline.generate_topologies(2, rng=3)
        b = fresh.generate_topologies(2, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_save_model_requires_model(self, tmp_path):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        with pytest.raises(RuntimeError):
            pipeline.save_model(tmp_path / "x.npz")

    def test_run_end_to_end(self):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        result = pipeline.run(
            num_training_patterns=24, num_generated=4, train_iterations=5, rng=0
        )
        assert result.topologies.shape[0] == 4
        # With an essentially untrained model most topologies are filtered
        # out; the invariant is that whatever survives is legal.
        assert result.legality in (0.0, 1.0)


class TestAdapterAndComparison:
    def test_topology_generator_adapter(self, trained_tiny_pipeline, tiny_dataset):
        adapter = DiffPatternTopologyGenerator(trained_tiny_pipeline)
        adapter.fit(tiny_dataset.topology_matrices("train"), rng=0)
        out = adapter.generate(2, rng=0)
        assert out.shape[0] == 2

    def test_adapter_requires_prepared_pipeline(self):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        adapter = DiffPatternTopologyGenerator(pipeline)
        with pytest.raises(RuntimeError):
            adapter.fit(np.zeros((2, 16, 16), dtype=np.uint8))

    def test_attach_reference_geometry(self, tiny_dataset):
        topologies = tiny_dataset.topology_matrices("test")[:3]
        references = tiny_dataset.reference_geometries("train")
        patterns = attach_reference_geometry(list(topologies), references, rng=0)
        assert len(patterns) == 3
        assert all(p.width == tiny_dataset.config.rules.pattern_size for p in patterns)

    def test_attach_reference_geometry_requires_matching_shape(self, tiny_dataset):
        references = tiny_dataset.reference_geometries("train")
        with pytest.raises(ValueError):
            attach_reference_geometry([np.zeros((4, 4), dtype=np.uint8)], references)

    def test_evaluate_real_patterns_row(self, tiny_dataset, rules):
        row = evaluate_real_patterns(tiny_dataset, rules)
        assert row.legality == 1.0
        assert row.generated_patterns == len(tiny_dataset)
        assert row.generated_diversity > 0

    def test_evaluate_baseline_row(self, tiny_dataset, rules):
        generator = CAEGenerator(CAEConfig(iterations=5, base_channels=8, latent_dim=8))
        row = evaluate_baseline("CAE", generator, tiny_dataset, rules, num_generated=4, rng=0)
        assert row.generated_patterns == 4
        assert 0.0 <= row.legality <= 1.0

    def test_evaluate_diffpattern_row_is_fully_legal(self, trained_tiny_pipeline):
        row = evaluate_diffpattern(trained_tiny_pipeline, num_generated=4, num_solutions=1, rng=0)
        assert row.name == "DiffPattern-S"
        # every produced pattern passed the white-box legaliser
        assert row.legality in (0.0, 1.0)
        if row.generated_patterns:
            assert row.legality == 1.0

    def test_format_table_contains_all_methods(self, tiny_dataset, rules):
        rows = [evaluate_real_patterns(tiny_dataset, rules)]
        text = format_table(rows)
        assert "Real Patterns" in text and "Legality" in text


class TestEfficiencyHarness:
    def test_measure_solving_time_positive(self, tiny_dataset, rules):
        topologies = tiny_dataset.topology_matrices("test")[:3]
        seconds = measure_solving_time(list(topologies), rules, rng=0)
        assert seconds > 0

    def test_run_efficiency_experiment(self, trained_tiny_pipeline):
        report = run_efficiency_experiment(trained_tiny_pipeline, num_samples=2, rng=0)
        assert report.sampling.seconds_per_sample > 0
        assert report.solving_random.seconds_per_sample > 0
        assert report.solving_existing.seconds_per_sample > 0
        assert "Solving-E" in report.format() or "Solving" in report.format()


class TestFigureHarnesses:
    def test_denoising_chain(self, trained_tiny_pipeline):
        chain = run_denoising_chain(trained_tiny_pipeline, chain_stride=2, rng=0)
        assert len(chain.matrices) >= 2
        assert len(chain.fill_ratios()) == len(chain.matrices)
        # The chain starts from (roughly uniform) noise.
        assert 0.3 < chain.fill_ratios()[0] < 0.7

    def test_patterns_from_single_topology_are_distinct(self, two_shape_topology, rules):
        patterns = patterns_from_single_topology(two_shape_topology, rules, num_patterns=4, rng=0)
        assert len(patterns) == 4
        assert len(set(geometry_signatures(patterns))) > 1
        assert all(np.array_equal(p.topology, two_shape_topology) for p in patterns)

    def test_patterns_under_rule_scenarios(self, two_shape_topology):
        scenarios = [
            ("normal", NORMAL_RULES),
            ("larger space", LARGER_SPACE_RULES),
            ("smaller area", SMALLER_AREA_RULES),
        ]
        results = patterns_under_rule_scenarios(two_shape_topology, scenarios, rng=0)
        assert [r.name for r in results] == ["normal", "larger space", "smaller area"]
        assert all(r.legal for r in results if r.pattern is not None)
        assert any(r.pattern is not None for r in results)

    def test_complexity_comparison(self, tiny_dataset):
        real = tiny_dataset.real_patterns("train")
        generated = tiny_dataset.real_patterns("test")
        comparison = compare_complexity_distributions(real, generated)
        assert 0.0 <= comparison.overlap() <= 1.0
        (real_mean, _), (gen_mean, _) = comparison.mean_complexity()
        assert real_mean >= 0 and gen_mean >= 0

    def test_render_helpers(self, two_shape_topology, tiny_dataset):
        art = render_topology(two_shape_topology)
        assert "#" in art and "." in art
        pattern_art = render_pattern(tiny_dataset.real_patterns()[0], width=24)
        assert len(pattern_art.splitlines()) >= 1

"""Unit tests of the repo-wide fault-injection framework (:mod:`repro.faults`).

These pin the framework's own contracts — registry enumeration, plan
parsing, trigger arithmetic, the cross-process marker latch — so the chaos
suites (``test_serve_chaos.py``, ``test_library_faults.py``) can rely on
them without re-proving the machinery in every scenario.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import (
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedError,
    declare_fault_points,
    fault_point,
    inject_faults,
    install_fault_hook,
    plan_from_env,
    record_fault_points,
    registered_fault_points,
)


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
def test_declared_points_are_enumerable_by_prefix():
    declare_fault_points("unit:alpha", "unit:beta", "other:gamma")
    assert registered_fault_points("unit:") == ["unit:alpha", "unit:beta"]
    assert registered_fault_points(("unit:", "other:")) == [
        "other:gamma",
        "unit:alpha",
        "unit:beta",
    ]
    # idempotent re-declaration
    declare_fault_points("unit:alpha")
    assert registered_fault_points("unit:") == ["unit:alpha", "unit:beta"]


def test_importing_subsystems_registers_their_points():
    import repro.library.store  # noqa: F401
    import repro.pipeline.stages  # noqa: F401
    import repro.serve.batcher  # noqa: F401
    import repro.serve.supervisor  # noqa: F401

    assert "append:ledger" in registered_fault_points("append:")
    assert "stream:advance" in registered_fault_points("stream:")
    assert set(registered_fault_points("serve:")) >= {
        "serve:warmup",
        "serve:advance",
        "serve:persist",
        "serve:cache-commit",
    }
    assert set(registered_fault_points("worker:")) >= {
        "worker:warmup",
        "worker:advance",
        "worker:send",
    }


# --------------------------------------------------------------------------- #
# triggering
# --------------------------------------------------------------------------- #
def test_fault_point_is_inert_without_a_hook():
    install_fault_hook(None)
    fault_point("unit:alpha")  # must not raise


def test_kill_fault_fires_on_its_hit_with_label_and_index():
    with inject_faults(Fault("unit:alpha", "kill", hits=2)) as plan:
        fault_point("unit:alpha")  # hit 1: armed for hit 2
        fault_point("unit:other")
        with pytest.raises(InjectedCrash) as crash:
            fault_point("unit:alpha")
    assert crash.value.label == "unit:alpha"
    assert crash.value.index == 3  # third traversal overall
    assert plan.counts() == {"unit:alpha": 2, "unit:other": 1}
    # the hook is uninstalled on exit
    fault_point("unit:alpha")


def test_error_and_delay_modes():
    with inject_faults(Fault("unit:err", "error")):
        with pytest.raises(InjectedError):
            fault_point("unit:err")
        fault_point("unit:err")  # hits=1 consumed: subsequent traversals pass

    with inject_faults(Fault("unit:slow", "delay", seconds=0.05)):
        t0 = time.monotonic()
        fault_point("unit:slow")
        assert time.monotonic() - t0 >= 0.05


def test_marker_makes_a_fault_one_shot_across_plans(tmp_path):
    marker = tmp_path / "fired"
    with inject_faults(Fault("unit:once", "kill", marker=marker)):
        with pytest.raises(InjectedCrash):
            fault_point("unit:once")
    assert marker.exists()
    # A fresh plan (simulating a restarted process inheriting the same
    # configuration) finds the marker and does not re-trigger.
    with inject_faults(Fault("unit:once", "kill", marker=marker)):
        fault_point("unit:once")


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("unit:x", "explode")
    with pytest.raises(ValueError):
        Fault("unit:x", hits=0)


# --------------------------------------------------------------------------- #
# plans and environment parsing
# --------------------------------------------------------------------------- #
def test_plan_from_env_parses_modes_args_and_markers(tmp_path):
    marker = tmp_path / "m"
    plan = plan_from_env(
        f"a:b=kill@{marker}; c:d=delay:0.25 ; e:f=error;; g:h="
    )
    assert set(plan.faults) == {"a:b", "c:d", "e:f", "g:h"}
    assert plan.faults["a:b"].mode == "kill"
    assert str(plan.faults["a:b"].marker) == str(marker)
    assert plan.faults["c:d"].mode == "delay"
    assert plan.faults["c:d"].seconds == 0.25
    assert plan.faults["e:f"].mode == "error"
    assert plan.faults["g:h"].mode == "kill"  # empty spec defaults to kill


def test_plan_from_env_rejects_malformed_entries():
    assert plan_from_env("") is None
    assert plan_from_env("   ") is None
    with pytest.raises(ValueError):
        plan_from_env("no-equals-sign")
    with pytest.raises(ValueError):
        plan_from_env("a:b=nosuchmode")
    with pytest.raises(ValueError):
        plan_from_env("=kill")


def test_inject_faults_accepts_a_ready_plan_and_restores_previous_hook():
    outer = FaultPlan()
    install_fault_hook(outer)
    try:
        inner = FaultPlan(Fault("unit:nested", "error"))
        with inject_faults(inner) as installed:
            assert installed is inner
            with pytest.raises(InjectedError):
                fault_point("unit:nested")
        # previous hook restored, and it observed nothing in between
        fault_point("unit:after")
        assert outer.counts() == {"unit:after": 1}
    finally:
        install_fault_hook(None)


def test_record_fault_points_collects_traversal_order():
    with record_fault_points() as points:
        fault_point("unit:first")
        fault_point("unit:second")
        fault_point("unit:first")
    assert points == ["unit:first", "unit:second", "unit:first"]
    fault_point("unit:first")  # hook cleared
    assert points == ["unit:first", "unit:second", "unit:first"]


def test_library_faults_shim_shares_the_framework_hook():
    import repro.library.faults as shim

    assert shim.fault_point is fault_point
    assert shim.InjectedCrash is InjectedCrash
    # installing through the shim arms the shared hook
    with inject_faults(Fault("unit:shim", "error")):
        with pytest.raises(InjectedError):
            shim.fault_point("unit:shim")

"""Scenario spec validation, composition, file round-trip and lowering parity."""

from __future__ import annotations

import json

import pytest

from repro.diffusion import DiffusionConfig
from repro.pipeline import DiffPatternConfig
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    ScenarioError,
    ScenarioRegistry,
    ScenarioSpec,
    builtin_registry,
    dump_scenarios,
    load_scenarios,
)


# --------------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------------- #
class TestSpecValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(ScenarioError, match="unknown section"):
            ScenarioSpec.from_dict("bad", {"rulez": {"space_min": 32}})

    def test_unknown_key_in_section_rejected(self):
        with pytest.raises(ScenarioError, match="space_mim"):
            ScenarioSpec.from_dict("bad", {"rules": {"space_mim": 32}})

    def test_non_mapping_section_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            ScenarioSpec.from_dict("bad", {"rules": 32})

    def test_bad_preset_rejected(self):
        with pytest.raises(ScenarioError, match="preset"):
            ScenarioSpec.from_dict("bad", {"preset": "huge"})

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            ScenarioSpec.from_dict("bad", ["not", "a", "mapping"])

    def test_invalid_value_surfaces_at_lowering(self):
        spec = ScenarioSpec.from_dict("bad", {"rules": {"space_min": -1}})
        with pytest.raises(ScenarioError, match="space_min"):
            spec.lower()

    def test_unresolved_extends_refuses_to_lower(self):
        spec = ScenarioSpec.from_dict("child", {"extends": "parent"})
        with pytest.raises(ScenarioError, match="resolve"):
            spec.lower()

    def test_type_invalid_training_value_is_scenario_error(self):
        spec = ScenarioSpec.from_dict("bad", {"training": {"iterations": "fast"}})
        with pytest.raises(ScenarioError, match="fast"):
            spec.lower()

    def test_type_invalid_model_value_is_scenario_error(self):
        spec = ScenarioSpec.from_dict("bad", {"model": {"model_channels": "big"}})
        with pytest.raises(ScenarioError, match="big"):
            spec.lower()

    def test_type_invalid_engine_value_is_scenario_error(self):
        spec = ScenarioSpec.from_dict("bad", {"engine": {"workers": "many"}})
        with pytest.raises(ScenarioError, match="many"):
            spec.lower()

    def test_engine_zero_means_auto(self):
        spec = ScenarioSpec.from_dict("auto", {"engine": {"workers": 0}})
        assert spec.lower().config.workers is None

    def test_tuple_fields_coerced_from_lists(self):
        spec = ScenarioSpec.from_dict("m", {"model": {"channel_mult": [1, 2, 4]}})
        assert spec.lower().config.channel_mult == (1, 2, 4)

    def test_solver_mode_reaches_config(self):
        spec = ScenarioSpec.from_dict("pinned", {"engine": {"solver_mode": "slsqp"}})
        assert spec.lower().config.solver_mode == "slsqp"

    def test_solver_mode_defaults_to_auto(self):
        assert ScenarioSpec.from_dict("plain", {}).lower().config.solver_mode == "auto"

    def test_invalid_solver_mode_is_scenario_error(self):
        spec = ScenarioSpec.from_dict("bad", {"engine": {"solver_mode": "newton"}})
        with pytest.raises(ScenarioError, match="newton"):
            spec.lower()


# --------------------------------------------------------------------------- #
# registry / override chains
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_unknown_scenario_lists_available(self):
        with pytest.raises(ScenarioError, match="available:"):
            builtin_registry().resolve("no-such-scenario")

    def test_unknown_extends_target(self):
        registry = ScenarioRegistry()
        registry.register_dict("child", {"extends": "ghost"})
        with pytest.raises(ScenarioError, match="ghost"):
            registry.resolve("child")

    def test_cyclic_extends_chain(self):
        registry = ScenarioRegistry()
        registry.register_dict("a", {"extends": "b"})
        registry.register_dict("b", {"extends": "a"})
        with pytest.raises(ScenarioError, match="cyclic"):
            registry.resolve("a")

    def test_self_extends_chain(self):
        registry = ScenarioRegistry()
        registry.register_dict("selfish", {"extends": "selfish"})
        with pytest.raises(ScenarioError, match="cyclic"):
            registry.resolve("selfish")

    def test_duplicate_registration_rejected(self):
        registry = builtin_registry()
        with pytest.raises(ScenarioError, match="already registered"):
            registry.register_dict("smoke", {})
        registry.register_dict("smoke", {"preset": "tiny"}, replace=True)

    def test_child_overrides_parent_per_key(self):
        registry = ScenarioRegistry()
        registry.register_dict(
            "base", {"preset": "tiny", "rules": {"space_min": 48, "width_min": 40}}
        )
        registry.register_dict("child", {"extends": "base", "rules": {"space_min": 96}})
        resolved = registry.resolve("child")
        assert resolved.extends is None
        rules = resolved.lower().config.rules
        assert rules.space_min == 96       # child wins
        assert rules.width_min == 40       # parent survives

    def test_grandparent_chain_flattens(self):
        registry = ScenarioRegistry()
        registry.register_dict("a", {"preset": "tiny", "run": {"seed": 1}})
        registry.register_dict("b", {"extends": "a", "run": {"num_generated": 5}})
        registry.register_dict("c", {"extends": "b", "run": {"num_solutions": 3}})
        plan = registry.resolve("c").lower()
        assert (plan.seed, plan.num_generated, plan.num_solutions) == (1, 5, 3)

    def test_with_overrides_validates(self):
        spec = builtin_registry().resolve("smoke")
        with pytest.raises(ScenarioError, match="unknown key"):
            spec.with_overrides({"run": {"num_genrated": 4}})

    def test_every_builtin_resolves_and_lowers(self):
        registry = builtin_registry()
        assert set(registry.names()) == set(BUILTIN_SCENARIOS)
        for name in registry.names():
            plan = registry.resolve(name).lower()
            assert plan.num_generated >= 1
            assert plan.config.tensor_size >= 1


# --------------------------------------------------------------------------- #
# file round-trip
# --------------------------------------------------------------------------- #
class TestFiles:
    def test_toml_loads_and_extends_builtin(self, tmp_path):
        path = tmp_path / "extra.toml"
        path.write_text(
            "[night]\n"
            'extends = "dense"\n'
            "[night.run]\n"
            "num_generated = 99\n"
        )
        registry = builtin_registry()
        specs = load_scenarios(path, registry=registry)
        assert [spec.name for spec in specs] == ["night"]
        plan = registry.resolve("night").lower()
        assert plan.num_generated == 99
        assert plan.dedup is True                    # inherited from dense

    def test_json_round_trip_preserves_lowering(self, tmp_path):
        registry = builtin_registry()
        specs = [registry.get(name) for name in registry.names()]
        path = dump_scenarios(specs, tmp_path / "all.json")
        reloaded = ScenarioRegistry()
        load_scenarios(path, registry=reloaded)
        assert reloaded.names() == registry.names()
        for name in registry.names():
            assert (
                reloaded.resolve(name).lower().config
                == registry.resolve(name).lower().config
            )

    def test_bad_suffix_rejected(self, tmp_path):
        path = tmp_path / "extra.yaml"
        path.write_text("night: {}\n")
        with pytest.raises(ScenarioError, match=".toml or .json"):
            load_scenarios(path)

    def test_parse_error_reported(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[night\n")
        with pytest.raises(ScenarioError, match="cannot parse"):
            load_scenarios(path)

    def test_missing_file_reported(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenarios(tmp_path / "ghost.toml")

    def test_invalid_spec_in_file_registers_nothing(self, tmp_path):
        path = tmp_path / "extra.json"
        path.write_text(json.dumps({"ok": {}, "bad": {"rules": {"space_mim": 1}}}))
        registry = ScenarioRegistry()
        with pytest.raises(ScenarioError, match="space_mim"):
            load_scenarios(path, registry=registry)
        assert registry.names() == []               # validate-all-then-register

    def test_collision_with_builtin_rejected(self, tmp_path):
        path = tmp_path / "extra.json"
        path.write_text(json.dumps({"smoke": {"preset": "tiny"}}))
        with pytest.raises(ScenarioError, match="already registered"):
            load_scenarios(path, registry=builtin_registry())


# --------------------------------------------------------------------------- #
# lowering parity
# --------------------------------------------------------------------------- #
class TestLoweringParity:
    def test_paper_tables_matches_legacy_bench_config(self):
        """The benchmark scenario lowers bit-identically to the literal the
        benchmark conftest hand-rolled before the registry existed."""
        legacy = DiffPatternConfig.tiny()
        legacy.diffusion = DiffusionConfig(num_steps=32, lambda_ce=0.05)
        legacy.train_iterations = 900
        legacy.solver_mode = "slsqp"  # the scenario pins the bit-identical solve
        plan = builtin_registry().resolve("paper-tables").lower()
        assert plan.config == legacy
        assert plan.num_training_patterns == 256
        assert plan.num_generated == 24

    def test_bench_overrides_keep_parity_at_full_scale(self):
        """The conftest's override layering reproduces the same config when
        the overrides equal the scenario's own values."""
        plan = builtin_registry().resolve("paper-tables").with_overrides(
            {
                "diffusion": {"num_steps": 32},
                "training": {"iterations": 900, "num_patterns": 256},
                "engine": {"workers": 1},
                "run": {"num_generated": 24},
            }
        ).lower()
        assert plan.config == builtin_registry().resolve("paper-tables").lower().config

    def test_rules_single_sourced_into_dataset(self):
        plan = builtin_registry().resolve("sparse").lower()
        assert plan.config.rules.space_min == 96
        assert plan.config.dataset.rules is plan.config.rules

    def test_run_seed_reaches_config(self):
        spec = ScenarioSpec.from_dict("seeded", {"run": {"seed": 17}})
        plan = spec.lower()
        assert plan.seed == 17
        assert plan.config.seed == 17

    def test_lowering_is_repeatable(self):
        spec = builtin_registry().resolve("rule-migration")
        assert spec.lower().config == spec.lower().config

    def test_paper_tables_lineage_pins_slsqp_but_hotspot_opts_out(self):
        registry = builtin_registry()
        assert registry.resolve("paper-tables").lower().config.solver_mode == "slsqp"
        # rule-migration inherits the pin through extends...
        assert registry.resolve("rule-migration").lower().config.solver_mode == "slsqp"
        # ...while hotspot-expansion explicitly opts back into the fast path.
        assert registry.resolve("hotspot-expansion").lower().config.solver_mode == "auto"

"""Unit tests for complexity, diversity and validity metrics."""

import numpy as np
import pytest

from repro.metrics import (
    ComplexityHistogram,
    ValidityConfig,
    ValidityScorer,
    complexity_distribution,
    diversity_from_complexities,
    pattern_complexity,
    pattern_diversity,
    shannon_entropy,
    topology_complexity,
    topology_diversity,
)
from repro.squish import SquishPattern, pad_to_size


class TestComplexity:
    def test_empty_topology_complexity_is_zero(self):
        assert topology_complexity(np.zeros((8, 8), dtype=np.uint8)) == (0, 0)

    def test_single_rectangle_complexity(self):
        topo = np.zeros((8, 8), dtype=np.uint8)
        topo[2:5, 3:6] = 1
        # canonical form has 3 column intervals and 3 row intervals -> (2, 2)
        assert topology_complexity(topo) == (2, 2)

    def test_complexity_invariant_to_padding(self):
        topo = np.zeros((4, 4), dtype=np.uint8)
        topo[1:3, 1:3] = 1
        pattern = SquishPattern(topo, np.full(4, 100), np.full(4, 100))
        padded = pad_to_size(pattern, 16)
        assert pattern_complexity(pattern) == pattern_complexity(padded)

    def test_complexity_counts_direction_separately(self):
        topo = np.zeros((4, 4), dtype=np.uint8)
        topo[:, 1] = 1  # full-height bar: no y scan lines inside
        assert topology_complexity(topo) == (2, 0)

    def test_distribution_sums_to_one(self):
        probs, _, _ = complexity_distribution([(1, 1), (1, 1), (2, 3)])
        assert probs.sum() == pytest.approx(1.0)

    def test_distribution_with_fixed_bins(self):
        probs, xs, ys = complexity_distribution([(0, 0), (3, 3)], bins=8)
        assert probs.shape == (8, 8)
        assert probs[0, 0] == pytest.approx(0.5)
        assert probs[3, 3] == pytest.approx(0.5)

    def test_distribution_empty_raises(self):
        with pytest.raises(ValueError):
            complexity_distribution([])


class TestDiversity:
    def test_shannon_entropy_uniform(self):
        assert shannon_entropy(np.full(4, 0.25)) == pytest.approx(2.0)

    def test_shannon_entropy_delta_is_zero(self):
        assert shannon_entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_shannon_entropy_rejects_negative(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([0.5, -0.5]))

    def test_shannon_entropy_unnormalised_input(self):
        assert shannon_entropy(np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_diversity_from_complexities(self):
        assert diversity_from_complexities([(1, 1), (2, 2)]) == pytest.approx(1.0)
        assert diversity_from_complexities([(1, 1), (1, 1)]) == 0.0
        assert diversity_from_complexities([]) == 0.0

    def test_more_varied_library_has_higher_diversity(self, synthetic_patterns):
        uniform_library = synthetic_patterns[:1] * 20
        varied_library = synthetic_patterns[:20]
        assert pattern_diversity(varied_library) > pattern_diversity(uniform_library)

    def test_topology_diversity_matches_pattern_diversity_for_unit_grid(self):
        topos = [np.zeros((6, 6), dtype=np.uint8) for _ in range(3)]
        topos[1][1:3, 1:3] = 1
        topos[2][0:2, 0:6] = 1
        patterns = [
            SquishPattern(t, np.full(6, 10), np.full(6, 10)) for t in topos
        ]
        assert topology_diversity(topos) == pytest.approx(pattern_diversity(patterns))


class TestValidityScorer:
    def _topologies(self, count, rng):
        data = np.zeros((count, 8, 8), dtype=np.uint8)
        for i in range(count):
            start = rng.integers(0, 6)
            data[i, 2:6, start : start + 2] = 1
        return data

    def test_score_requires_fit(self):
        with pytest.raises(RuntimeError):
            ValidityScorer().score(np.zeros((2, 8, 8), dtype=np.uint8))

    def test_training_data_scores_at_threshold_quantile(self):
        rng = np.random.default_rng(0)
        data = self._topologies(40, rng)
        scorer = ValidityScorer(ValidityConfig(iterations=80, hidden_dim=32, latent_dim=8))
        scorer.fit(data, rng=0)
        score = scorer.score(data)
        assert score >= 0.9

    def test_dissimilar_patterns_score_lower(self):
        rng = np.random.default_rng(0)
        data = self._topologies(40, rng)
        scorer = ValidityScorer(ValidityConfig(iterations=80, hidden_dim=32, latent_dim=8))
        scorer.fit(data, rng=0)
        noise = (np.random.default_rng(1).random((40, 8, 8)) > 0.5).astype(np.uint8)
        assert scorer.score(noise) <= scorer.score(data)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        scorer = ValidityScorer(ValidityConfig(iterations=10, hidden_dim=16, latent_dim=4))
        scorer.fit(self._topologies(10, rng), rng=0)
        with pytest.raises(ValueError):
            scorer.score(np.zeros((2, 4, 4), dtype=np.uint8))

    def test_flatten_validates_rank(self):
        with pytest.raises(ValueError):
            ValidityScorer._flatten(np.zeros((4, 4)))


class TestComplexityHistogram:
    PAIRS = [(3, 2), (1, 1), (3, 2), (0, 5), (1, 1), (3, 2), (7, 0)]

    def test_streaming_diversity_is_bit_identical_to_batch(self):
        histogram = ComplexityHistogram()
        for pair in self.PAIRS:
            histogram.add(*pair)
        assert histogram.diversity() == diversity_from_complexities(self.PAIRS)
        # Insertion order is irrelevant: the counts sort like np.unique rows.
        shuffled = ComplexityHistogram(list(reversed(self.PAIRS)))
        assert shuffled.diversity() == histogram.diversity()

    def test_merge_equals_single_accumulation(self):
        a = ComplexityHistogram(self.PAIRS[:3])
        b = ComplexityHistogram(self.PAIRS[3:])
        assert a.merge(b) == ComplexityHistogram(self.PAIRS)
        assert a.total == len(self.PAIRS)

    def test_counts_and_pairs(self):
        histogram = ComplexityHistogram(self.PAIRS)
        assert histogram.count(3, 2) == 3
        assert histogram.count(9, 9) == 0
        assert histogram.num_distinct == 4
        assert len(histogram) == len(self.PAIRS)
        assert histogram.pairs() == sorted(self.PAIRS)

    def test_empty_histogram(self):
        histogram = ComplexityHistogram()
        assert histogram.diversity() == 0.0
        assert histogram.total == 0
        assert histogram.pairs() == []

    def test_records_roundtrip(self):
        histogram = ComplexityHistogram(self.PAIRS)
        rebuilt = ComplexityHistogram.from_records(histogram.as_records())
        assert rebuilt == histogram
        assert rebuilt.diversity() == histogram.diversity()

    def test_distribution_matches_batch_function(self):
        histogram = ComplexityHistogram(self.PAIRS)
        probs_a, xs_a, ys_a = histogram.distribution(bins=8)
        probs_b, xs_b, ys_b = complexity_distribution(sorted(self.PAIRS), bins=8)
        np.testing.assert_array_equal(probs_a, probs_b)
        np.testing.assert_array_equal(xs_a, xs_b)
        np.testing.assert_array_equal(ys_a, ys_b)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            ComplexityHistogram().add(1, 1, count=0)

"""Few-step respaced sampling: schedule math, bit-identity, knob routing.

The contract under test (see ``docs/sampling.md``):

* a ``RespacedSchedule`` with ``steps`` equal to the chain length is
  *bit-identical* to the full-chain sampler, at every chunk size;
* a strided schedule changes the sampled values but keeps the engine's
  chunk-invariance / ``first_index`` determinism contract intact;
* composed jump-posterior tables equal the brute-force matrix products;
* the ``sampling.steps`` knob routes through ``DiffPatternConfig``, the
  scenario registry and the CLI override mapping, rejecting invalid values
  with errors that name the culprit.
"""

import numpy as np
import pytest

from repro.diffusion import (
    DiffusionConfig,
    DiscreteDiffusion,
    RespacedSchedule,
    respaced_timesteps,
)
from repro.pipeline import DiffPatternConfig, SamplingEngine
from repro.scenarios import ScenarioError, builtin_registry

from test_sampling_engine import tiny_unet


@pytest.fixture(scope="module")
def diffusion():
    return DiscreteDiffusion(tiny_unet(), DiffusionConfig(num_steps=8, lambda_ce=0.05))


@pytest.fixture(scope="module")
def transition(diffusion):
    return diffusion.transition


class TestRespacedTimesteps:
    def test_full_chain_is_every_step(self):
        assert respaced_timesteps(8, 8) == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_single_step_keeps_only_the_top(self):
        assert respaced_timesteps(32, 1) == (32,)

    def test_even_spacing_anchors_the_chain_top(self):
        taus = respaced_timesteps(32, 6)
        assert taus == (1, 7, 13, 20, 26, 32)
        assert taus[-1] == 32

    def test_strictly_increasing_for_every_count(self):
        for chain in (1, 2, 7, 32, 100):
            for steps in range(1, chain + 1):
                taus = respaced_timesteps(chain, steps)
                assert len(taus) == steps
                assert taus[-1] == chain
                assert all(b > a for a, b in zip(taus, taus[1:]))

    @pytest.mark.parametrize("steps", [0, -1, 9, 2.5, True, "6"])
    def test_rejects_invalid_steps(self, steps):
        with pytest.raises(ValueError):
            respaced_timesteps(8, steps)


class TestRespacedSchedule:
    def test_default_is_the_full_chain(self, transition):
        schedule = RespacedSchedule(transition)
        assert schedule.is_full
        assert schedule.num_steps == schedule.chain_steps == 8
        assert schedule.jumps[0] == (8, 7)
        assert schedule.jumps[-1] == (1, 0)

    def test_strided_jump_structure(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        assert schedule.timesteps == (1, 4, 8)
        assert schedule.jumps == ((8, 4), (4, 1), (1, 0))
        assert not schedule.is_full

    def test_explicit_timesteps(self, transition):
        schedule = RespacedSchedule(transition, timesteps=[2, 5, 8])
        assert schedule.timesteps == (2, 5, 8)
        assert schedule.num_steps == 3

    def test_steps_and_timesteps_are_exclusive(self, transition):
        with pytest.raises(ValueError):
            RespacedSchedule(transition, steps=3, timesteps=(1, 8))

    @pytest.mark.parametrize(
        "timesteps", [(), (0, 8), (1, 9), (5, 3, 8), (1, 1, 8), (1, 5)]
    )
    def test_rejects_invalid_timesteps(self, transition, timesteps):
        with pytest.raises(ValueError):
            RespacedSchedule(transition, timesteps=timesteps)

    def test_jump_matrix_is_the_product_of_skipped_steps(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        brute = np.eye(2)
        for k in range(5, 9):
            brute = brute @ transition.q_matrix(k)
        np.testing.assert_allclose(schedule.jump_matrix(8, 4), brute)
        # jump over the whole chain equals the cumulative matrix
        np.testing.assert_allclose(
            schedule.jump_matrix(8, 0), transition.q_bar_matrix(8)
        )

    def test_jump_matrix_rejects_bad_bounds(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        for cur, prev in ((4, 4), (3, 4), (9, 0), (0, -1)):
            with pytest.raises(ValueError):
                schedule.jump_matrix(cur, prev)

    def test_composed_table_matches_bayes_quotient(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        table = schedule.posterior_table(8, 4)
        q_jump = schedule.jump_matrix(8, 4)
        q_bar_prev = transition.q_bar_matrix(4)
        q_bar_cur = transition.q_bar_matrix(8)
        for v in range(2):
            for i in range(2):
                expected = q_jump[:, v] * q_bar_prev[i, :] / q_bar_cur[i, v]
                expected /= expected.sum()
                np.testing.assert_allclose(table[v, i], expected)
        np.testing.assert_allclose(table.sum(axis=-1), 1.0, atol=1e-12)

    def test_single_step_jump_is_the_transition_table(self, transition):
        # Delegation, not recomputation: the exact cached object comes back,
        # which is what makes steps == K bit-identical to the full chain.
        schedule = RespacedSchedule(transition, steps=8)
        assert schedule.posterior_table(5, 4) is transition.posterior_table(5)

    def test_final_jump_has_no_table(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        with pytest.raises(ValueError):
            schedule.posterior_table(1, 0)

    def test_tables_cached_and_immutable(self, transition):
        schedule = RespacedSchedule(transition, steps=3)
        table = schedule.posterior_table(8, 4, dtype=np.float32)
        assert table is schedule.posterior_table(8, 4, dtype=np.float32)
        assert table.dtype == np.float32
        with pytest.raises(ValueError):
            table[0, 0, 0] = 0.5


class TestEngineBitIdentity:
    def test_steps_equal_to_chain_is_bit_identical(self, diffusion):
        full = SamplingEngine(diffusion, batch_size=8)
        respaced = SamplingEngine(diffusion, batch_size=8, steps=8)
        np.testing.assert_array_equal(
            full.sample(6, seed=0), respaced.sample(6, seed=0)
        )

    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_bit_identity_holds_at_every_chunk_size(self, diffusion, chunk):
        reference = SamplingEngine(diffusion, batch_size=8).sample(7, seed=3)
        respaced = SamplingEngine(diffusion, batch_size=8, steps=8)
        np.testing.assert_array_equal(
            reference, respaced.sample(7, seed=3, batch_size=chunk)
        )

    def test_strided_changes_values_deterministically(self, diffusion):
        full = SamplingEngine(diffusion, batch_size=8)
        strided = SamplingEngine(diffusion, batch_size=8, steps=3)
        a = strided.sample(6, seed=0)
        assert not np.array_equal(a, full.sample(6, seed=0))
        np.testing.assert_array_equal(a, strided.sample(6, seed=0))

    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_strided_is_chunk_invariant(self, diffusion, chunk):
        strided = SamplingEngine(diffusion, batch_size=8, steps=3)
        reference = strided.sample(7, seed=11)
        np.testing.assert_array_equal(
            reference, strided.sample(7, seed=11, batch_size=chunk)
        )

    def test_strided_first_index_windows(self, diffusion):
        strided = SamplingEngine(diffusion, batch_size=8, steps=3)
        full = strided.sample(6, seed=4)
        window = strided.sample(3, seed=4, first_index=2)
        np.testing.assert_array_equal(full[2:5], window)

    def test_single_step_schedule_samples(self, diffusion):
        # steps=1: one network call, straight from stationary noise to x_0.
        engine = SamplingEngine(diffusion, batch_size=8, steps=1)
        samples = engine.sample(4, seed=0)
        assert samples.shape == (4, 4, 8, 8)
        assert set(np.unique(samples)).issubset({0, 1})
        assert engine.last_report.num_steps == 1

    def test_explicit_schedule_object(self, diffusion):
        schedule = RespacedSchedule(diffusion.transition, steps=3)
        by_object = SamplingEngine(diffusion, batch_size=8, schedule=schedule)
        by_steps = SamplingEngine(diffusion, batch_size=8, steps=3)
        np.testing.assert_array_equal(
            by_object.sample(4, seed=7), by_steps.sample(4, seed=7)
        )

    def test_steps_and_schedule_are_exclusive(self, diffusion):
        schedule = RespacedSchedule(diffusion.transition, steps=3)
        with pytest.raises(ValueError):
            SamplingEngine(diffusion, steps=3, schedule=schedule)

    def test_schedule_must_share_the_transition(self, diffusion):
        other = DiscreteDiffusion(
            tiny_unet(), DiffusionConfig(num_steps=8, lambda_ce=0.05)
        )
        foreign = RespacedSchedule(other.transition, steps=3)
        with pytest.raises(ValueError):
            SamplingEngine(diffusion, schedule=foreign)

    def test_rejects_invalid_steps(self, diffusion):
        for steps in (0, 9, -2):
            with pytest.raises(ValueError):
                SamplingEngine(diffusion, steps=steps)


class TestReportAccounting:
    def test_model_evals_count_chunks_times_steps(self, diffusion):
        engine = SamplingEngine(diffusion, batch_size=2, steps=3)
        _, report = engine.sample_with_report(5, seed=0)
        assert report.num_steps == 3
        assert report.chain_steps == 8
        assert report.num_chunks == 3
        assert report.model_evals == 3 * 3
        assert report.evals_per_sample == pytest.approx(9 / 5)

    def test_full_chain_report_is_unchanged(self, diffusion):
        engine = SamplingEngine(diffusion, batch_size=8)
        _, report = engine.sample_with_report(2, seed=0)
        assert report.num_steps == report.chain_steps == 8
        assert "respaced" not in report.format()

    def test_respaced_format_names_both_counts(self, diffusion):
        engine = SamplingEngine(diffusion, batch_size=8, steps=3)
        _, report = engine.sample_with_report(2, seed=0)
        assert "3 of 8 steps (respaced)" in report.format()


class TestConfigAndScenarioRouting:
    def test_config_validates_range(self):
        config = DiffPatternConfig.tiny()
        assert config.diffusion.num_steps == 8
        for bad in (0, 9, -1):
            with pytest.raises(ValueError):
                DiffPatternConfig(diffusion=config.diffusion, sampling_steps=bad)

    def test_fewstep_builtin_lowers_to_six_of_thirty_two(self):
        plan = builtin_registry().resolve("fewstep-tables").lower()
        assert plan.config.sampling_steps == 6
        assert plan.config.diffusion.num_steps == 32
        # inherits the paper-tables pin
        assert plan.config.solver_mode == "slsqp"
        assert "6 of 32 steps (respaced)" in plan.summary()

    def test_hotspot_expansion_uses_the_fewstep_sampler(self):
        plan = builtin_registry().resolve("hotspot-expansion").lower()
        assert plan.config.sampling_steps == 6

    def test_zero_means_full_chain(self):
        spec = builtin_registry().resolve("fewstep-tables")
        plan = spec.with_overrides({"sampling": {"steps": 0}}).lower()
        assert plan.config.sampling_steps is None
        assert "full chain" in plan.summary()

    def test_out_of_range_steps_name_the_scenario(self):
        spec = builtin_registry().resolve("paper-tables")
        with pytest.raises(ScenarioError, match="paper-tables.*sampling.steps"):
            spec.with_overrides({"sampling": {"steps": 99}}).lower()

    def test_range_checked_against_overridden_chain(self):
        # 6 steps is valid against the 32-step chain but not against a
        # 4-step override applied in the same spec.
        spec = builtin_registry().resolve("fewstep-tables")
        with pytest.raises(ScenarioError, match="sampling.steps"):
            spec.with_overrides({"diffusion": {"num_steps": 4}}).lower()
        plan = spec.with_overrides(
            {"diffusion": {"num_steps": 4}, "sampling": {"steps": 2}}
        ).lower()
        assert plan.config.sampling_steps == 2

    def test_unknown_sampling_key_rejected(self):
        with pytest.raises(ScenarioError, match="stride"):
            builtin_registry().resolve("smoke").with_overrides(
                {"sampling": {"stride": 4}}
            )

    def test_cli_knob_maps_to_the_sampling_section(self):
        from repro.cli import knob_overrides

        assert knob_overrides(steps=6) == {"sampling": {"steps": 6}}
        assert "sampling" not in knob_overrides(seed=1)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def pipeline(self):
        from repro.pipeline import DiffPatternPipeline

        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        pipeline.prepare_data(16, rng=0)
        pipeline.train(iterations=3, rng=0)
        return pipeline

    def test_engine_rebuilds_when_steps_change(self, pipeline):
        pipeline.config.sampling_steps = None
        full_engine = pipeline.sampling_engine()
        assert full_engine.steps == 8
        pipeline.config.sampling_steps = 3
        strided_engine = pipeline.sampling_engine()
        assert strided_engine is not full_engine
        assert strided_engine.steps == 3
        assert pipeline.sampling_engine() is strided_engine  # cached again
        pipeline.config.sampling_steps = None

    def test_steps_equal_to_chain_matches_default_end_to_end(self, pipeline):
        pipeline.config.sampling_steps = None
        base = pipeline.generate_topologies(4, rng=5)
        pipeline.config.sampling_steps = 8
        np.testing.assert_array_equal(base, pipeline.generate_topologies(4, rng=5))
        pipeline.config.sampling_steps = None

    def test_fingerprint_tracks_the_schedule(self, pipeline):
        pipeline.config.sampling_steps = None
        full = pipeline.generation_graph().fingerprint(8, 0, 1)
        pipeline.config.sampling_steps = 3
        strided = pipeline.generation_graph().fingerprint(8, 0, 1)
        pipeline.config.sampling_steps = None
        assert full["sampling_steps"] == 8
        assert strided["sampling_steps"] == 3
        assert full != strided

"""Shared fixtures for the test suite.

Everything here is deliberately small so the full suite runs in a couple of
minutes on a laptop CPU: tiny topology grids, few diffusion steps, and a few
training iterations — the goal of the unit tests is correctness of each code
path, not sample quality (sample quality is exercised by the benchmarks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DatasetConfig, LayoutPatternDataset, SyntheticLayoutGenerator
from repro.legalization import DesignRules
from repro.pipeline import DiffPatternConfig, DiffPatternPipeline


@pytest.fixture(scope="session")
def rules() -> DesignRules:
    """The default design-rule set used across tests."""
    return DesignRules()


@pytest.fixture(scope="session")
def small_rules() -> DesignRules:
    """A rule set matched to small (512 nm) test windows."""
    return DesignRules(space_min=20, width_min=20, area_min=500, area_max=80_000, pattern_size=512)


@pytest.fixture(scope="session")
def synthetic_patterns(rules):
    """A reusable library of DRC-clean synthetic squish patterns."""
    generator = SyntheticLayoutGenerator()
    return generator.generate_library(60, rng=1234)


@pytest.fixture(scope="session")
def tiny_dataset(synthetic_patterns):
    """Dataset with 16x16 padded matrices and 4 deep-squish channels."""
    config = DatasetConfig(matrix_size=16, channels=4)
    return LayoutPatternDataset.from_patterns(synthetic_patterns, config, rng=0)


@pytest.fixture(scope="session")
def two_shape_topology() -> np.ndarray:
    """A simple 8x8 topology with two separated rectangles."""
    topo = np.zeros((8, 8), dtype=np.uint8)
    topo[1:4, 1:4] = 1
    topo[5:7, 2:7] = 1
    return topo


@pytest.fixture(scope="session")
def trained_tiny_pipeline(tiny_dataset):
    """A DiffPattern pipeline with a briefly-trained tiny diffusion model.

    Ten training iterations are enough to exercise the full train/sample/
    legalise path; tests must not assume the samples are high quality.
    """
    config = DiffPatternConfig.tiny()
    pipeline = DiffPatternPipeline(config)
    pipeline.prepare_data(dataset=tiny_dataset)
    pipeline.train(iterations=10, rng=0)
    return pipeline

"""Unit tests for repro.nn.functional (conv2d, norms, softmax, losses)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def naive_conv2d(x, w, b, stride, padding):
    """Reference convolution implemented with plain loops."""
    n, c, h, width = x.shape
    oc, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, out_h, out_w), dtype=np.float64)
    for ni in range(n):
        for oi in range(oc):
            for yi in range(out_h):
                for xi in range(out_w):
                    patch = xp[ni, :, yi * stride : yi * stride + kh, xi * stride : xi * stride + kw]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum() + (b[oi] if b is not None else 0.0)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_forward_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=(4,)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.numpy(), expected, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 4, 3, 3))))

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float64)
        w = rng.normal(size=(2, 2, 3, 3)).astype(np.float64)
        b = rng.normal(size=(2,)).astype(np.float64)

        def loss_value(xv, wv, bv):
            out = F.conv2d(Tensor(xv.astype(np.float32)), Tensor(wv.astype(np.float32)),
                           Tensor(bv.astype(np.float32)), stride=1, padding=1)
            return float((out.numpy() ** 2).sum())

        xt = Tensor(x.astype(np.float32), requires_grad=True)
        wt = Tensor(w.astype(np.float32), requires_grad=True)
        bt = Tensor(b.astype(np.float32), requires_grad=True)
        out = F.conv2d(xt, wt, bt, stride=1, padding=1)
        (out * out).sum().backward()

        eps = 1e-3
        for target, grad in ((x, xt.grad), (w, wt.grad), (b, bt.grad)):
            flat = target.reshape(-1)
            numeric = np.zeros_like(flat)
            for i in range(flat.size):
                orig = flat[i]
                flat[i] = orig + eps
                plus = loss_value(x, w, b)
                flat[i] = orig - eps
                minus = loss_value(x, w, b)
                flat[i] = orig
                numeric[i] = (plus - minus) / (2 * eps)
            np.testing.assert_allclose(grad.reshape(-1), numeric, rtol=5e-2, atol=5e-2)


class TestPoolingAndUpsampling:
    def test_upsample_nearest_values(self):
        x = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2))
        up = F.upsample_nearest(x, 2)
        assert up.shape == (1, 1, 4, 4)
        np.testing.assert_array_equal(up.numpy()[0, 0, :2, :2], np.zeros((2, 2)))
        np.testing.assert_array_equal(up.numpy()[0, 0, 2:, 2:], np.full((2, 2), 3.0))

    def test_upsample_gradient_sums_blocks(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        F.upsample_nearest(x, 2).sum().backward()
        np.testing.assert_array_equal(x.grad, np.full((1, 1, 2, 2), 4.0))

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        pooled = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(pooled.numpy()[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_requires_divisible(self):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((1, 1, 5, 4))), 2)


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5)).astype(np.float32))
        probs = F.softmax(x, axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_softmax_stability_with_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        probs = F.softmax(x, axis=-1).numpy()
        np.testing.assert_allclose(probs, [[0.5, 0.5]], rtol=1e-5)

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)).astype(np.float32))
        np.testing.assert_allclose(
            F.log_softmax(x).numpy(), np.log(F.softmax(x).numpy() + 1e-12), atol=1e-4
        )

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]], dtype=np.float32))
        targets = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        assert F.cross_entropy_with_logits(logits, targets).item() < 1e-3

    def test_cross_entropy_uniform_prediction(self):
        logits = Tensor(np.zeros((5, 2), dtype=np.float32))
        targets = np.eye(2, dtype=np.float32)[np.zeros(5, dtype=int)]
        assert F.cross_entropy_with_logits(logits, targets).item() == pytest.approx(np.log(2), rel=1e-3)

    def test_kl_divergence_zero_when_matching(self):
        target = np.array([[0.25, 0.75]], dtype=np.float32)
        logits = Tensor(np.log(target))
        kl = F.kl_divergence_categorical(target, logits).item()
        assert abs(kl) < 1e-4

    def test_kl_divergence_positive_when_mismatched(self):
        target = np.array([[0.9, 0.1]], dtype=np.float32)
        logits = Tensor(np.zeros((1, 2), dtype=np.float32))
        assert F.kl_divergence_categorical(target, logits).item() > 0.1


class TestNormalisation:
    def test_group_norm_normalises_groups(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(2, 4, 5, 5)).astype(np.float32))
        weight = Tensor(np.ones(4, dtype=np.float32))
        bias = Tensor(np.zeros(4, dtype=np.float32))
        out = F.group_norm(x, 2, weight, bias).numpy()
        grouped = out.reshape(2, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=-1), np.zeros((2, 2)), atol=1e-4)
        np.testing.assert_allclose(grouped.std(axis=-1), np.ones((2, 2)), atol=1e-2)

    def test_group_norm_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            F.group_norm(Tensor(np.zeros((1, 3, 2, 2))), 2, Tensor(np.ones(3)), Tensor(np.zeros(3)))

    def test_layer_norm_normalises_last_axis(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(loc=-1.0, scale=3.0, size=(4, 8)).astype(np.float32))
        out = F.layer_norm(x, Tensor(np.ones(8)), Tensor(np.zeros(8))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)


class TestDropoutAndEmbeddingInputs:
    def test_dropout_identity_in_eval(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_dropout_scales_surviving_units(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True).numpy()
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0), training=True)

    def test_sinusoidal_embedding_shape_and_range(self):
        emb = F.sinusoidal_embedding(np.array([0, 1, 100]), 16)
        assert emb.shape == (3, 16)
        assert np.abs(emb).max() <= 1.0 + 1e-6

    def test_sinusoidal_embedding_distinguishes_timesteps(self):
        emb = F.sinusoidal_embedding(np.array([1, 2]), 32)
        assert not np.allclose(emb[0], emb[1])

    def test_sinusoidal_embedding_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            F.sinusoidal_embedding(np.array([1]), 15)

"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry import (
    component_areas,
    component_cell_indices,
    connected_components,
    grid_to_rects,
    has_bowtie,
    interior_runs_2d,
    runs_2d,
    runs_of_value,
    validate_grid,
)


class TestValidateGrid:
    def test_accepts_binary(self):
        out = validate_grid([[0, 1], [1, 0]])
        assert out.dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_grid([[0, 2], [1, 0]])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            validate_grid([0, 1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_grid(np.zeros((0, 3)))


class TestConnectedComponents:
    def test_empty_grid_has_zero_components(self):
        labels, count = connected_components(np.zeros((4, 4), dtype=np.uint8))
        assert count == 0
        assert labels.sum() == 0

    def test_single_block(self):
        grid = np.zeros((4, 4), dtype=np.uint8)
        grid[1:3, 1:3] = 1
        labels, count = connected_components(grid)
        assert count == 1
        assert (labels[1:3, 1:3] == 1).all()

    def test_two_separate_blocks(self):
        grid = np.zeros((5, 5), dtype=np.uint8)
        grid[0, 0] = 1
        grid[4, 4] = 1
        _, count = connected_components(grid)
        assert count == 2

    def test_diagonal_cells_are_not_connected(self):
        grid = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        _, count = connected_components(grid)
        assert count == 2

    def test_l_shape_is_single_component(self):
        grid = np.array([[1, 0, 0], [1, 0, 0], [1, 1, 1]], dtype=np.uint8)
        _, count = connected_components(grid)
        assert count == 1

    def test_component_cell_indices(self):
        grid = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        labels, _ = connected_components(grid)
        cells = component_cell_indices(labels, 1)
        assert sorted(cells) == [(0, 0), (1, 0)]


class TestBowtie:
    def test_main_diagonal_bowtie(self):
        assert has_bowtie(np.array([[1, 0], [0, 1]], dtype=np.uint8))

    def test_anti_diagonal_bowtie(self):
        assert has_bowtie(np.array([[0, 1], [1, 0]], dtype=np.uint8))

    def test_full_block_is_not_bowtie(self):
        assert not has_bowtie(np.ones((2, 2), dtype=np.uint8))

    def test_l_corner_is_not_bowtie(self):
        assert not has_bowtie(np.array([[1, 0], [1, 1]], dtype=np.uint8))

    def test_embedded_bowtie_detected(self):
        grid = np.zeros((6, 6), dtype=np.uint8)
        grid[2, 2] = 1
        grid[3, 3] = 1
        assert has_bowtie(grid)

    def test_separated_shapes_no_bowtie(self):
        grid = np.zeros((6, 6), dtype=np.uint8)
        grid[0:2, 0:2] = 1
        grid[4:6, 4:6] = 1
        assert not has_bowtie(grid)


class TestRuns:
    def test_runs_of_ones(self):
        line = np.array([1, 1, 0, 1, 0, 1, 1, 1])
        assert list(runs_of_value(line, 1)) == [(0, 1), (3, 3), (5, 7)]

    def test_runs_of_zeros(self):
        line = np.array([1, 0, 0, 1])
        assert list(runs_of_value(line, 0)) == [(1, 2)]

    def test_runs_all_same(self):
        assert list(runs_of_value(np.ones(4), 1)) == [(0, 3)]

    def test_runs_none(self):
        assert list(runs_of_value(np.zeros(4), 1)) == []


class TestRuns2D:
    """The vectorized kernels must match the per-line Python loops exactly."""

    @staticmethod
    def _reference_runs(grid, value):
        triples = []
        for r in range(grid.shape[0]):
            for start, end in runs_of_value(grid[r], value):
                triples.append((r, start, end))
        return triples

    @staticmethod
    def _reference_interior(grid, value):
        triples = []
        for r in range(grid.shape[0]):
            line = grid[r]
            ones = np.nonzero(line == 1)[0]
            if ones.size == 0:
                continue
            first, last = int(ones[0]), int(ones[-1])
            for start, end in runs_of_value(line, value):
                if start > first and end < last:
                    triples.append((r, start, end))
        return triples

    def test_matches_per_line_loop_on_random_grids(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            grid = (rng.random((rng.integers(1, 12), rng.integers(1, 12))) < 0.5).astype(np.uint8)
            for value in (0, 1):
                line, start, end = runs_2d(grid, value)
                assert list(zip(line.tolist(), start.tolist(), end.tolist())) == (
                    self._reference_runs(grid, value)
                )

    def test_interior_matches_per_line_loop(self):
        rng = np.random.default_rng(1)
        for _ in range(25):
            grid = (rng.random((rng.integers(1, 12), rng.integers(1, 12))) < 0.4).astype(np.uint8)
            line, start, end = interior_runs_2d(grid, 0)
            assert list(zip(line.tolist(), start.tolist(), end.tolist())) == (
                self._reference_interior(grid, 0)
            )

    def test_transposed_view_gives_column_runs(self):
        grid = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)
        line, start, end = runs_2d(grid.T, 1)
        assert list(zip(line.tolist(), start.tolist(), end.tolist())) == [
            (0, 0, 1),
            (1, 2, 2),
        ]

    def test_border_runs_are_not_interior(self):
        grid = np.array([[0, 1, 0, 1, 0]], dtype=np.uint8)
        line, start, end = interior_runs_2d(grid, 0)
        assert list(zip(line.tolist(), start.tolist(), end.tolist())) == [(0, 2, 2)]

    def test_empty_line_yields_nothing(self):
        line, start, end = runs_2d(np.zeros((2, 3), dtype=np.uint8), 1)
        assert line.size == 0 and start.size == 0 and end.size == 0


class TestGridToRects:
    def test_simple_rectangle(self):
        grid = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        rects = grid_to_rects(grid, [10, 20], [5, 5])
        assert len(rects) == 2  # one merged run per row
        assert rects[0].width == 30

    def test_origin_offset(self):
        grid = np.array([[1]], dtype=np.uint8)
        rect = grid_to_rects(grid, [10], [10], origin=(100, 200))[0]
        assert (rect.x1, rect.y1, rect.x2, rect.y2) == (100, 200, 110, 210)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            grid_to_rects(np.ones((2, 2), dtype=np.uint8), [1], [1, 1])

    def test_nonpositive_delta_raises(self):
        with pytest.raises(ValueError):
            grid_to_rects(np.ones((1, 1), dtype=np.uint8), [0], [1])


class TestComponentAreas:
    def test_areas_with_nonuniform_grid(self):
        grid = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        areas = component_areas(grid, dx=[10, 20], dy=[5, 8])
        assert sorted(areas) == [50, 160]

    def test_total_area_matches_cells(self):
        grid = np.ones((3, 3), dtype=np.uint8)
        areas = component_areas(grid, dx=[10, 10, 10], dy=[10, 10, 10])
        assert areas == [900]

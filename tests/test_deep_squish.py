"""Unit tests for the Deep Squish (fold/unfold) representation."""

import numpy as np
import pytest

from repro.squish import (
    fold,
    fold_batch,
    naive_pack,
    naive_unpack,
    unfold,
    unfold_batch,
)


class TestFoldUnfold:
    def test_roundtrip_identity(self):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 2, size=(16, 16)).astype(np.uint8)
        tensor = fold(matrix, 16)
        assert tensor.shape == (16, 4, 4)
        assert np.array_equal(unfold(tensor), matrix)

    def test_roundtrip_various_channel_counts(self):
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 2, size=(12, 12)).astype(np.uint8)
        for channels in (1, 4, 9, 36):
            assert np.array_equal(unfold(fold(matrix, channels)), matrix)

    def test_fold_preserves_bit_count(self):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 2, size=(8, 8)).astype(np.uint8)
        tensor = fold(matrix, 4)
        assert tensor.sum() == matrix.sum()

    def test_fold_patch_mapping(self):
        # The (0,0) spatial position of the tensor carries the top-left patch.
        matrix = np.zeros((4, 4), dtype=np.uint8)
        matrix[0, 1] = 1  # row 0, col 1 of the top-left 2x2 patch
        tensor = fold(matrix, 4)
        assert tensor[:, 0, 0].tolist() == [0, 1, 0, 0]
        assert tensor[:, 0, 1].sum() == 0

    def test_fold_requires_square(self):
        with pytest.raises(ValueError):
            fold(np.zeros((4, 6), dtype=np.uint8), 4)

    def test_fold_requires_perfect_square_channels(self):
        with pytest.raises(ValueError):
            fold(np.zeros((4, 4), dtype=np.uint8), 8)

    def test_fold_requires_divisible_side(self):
        with pytest.raises(ValueError):
            fold(np.zeros((6, 6), dtype=np.uint8), 16)

    def test_unfold_rejects_non_binary(self):
        with pytest.raises(ValueError):
            unfold(np.full((4, 2, 2), 2))

    def test_unfold_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            unfold(np.zeros((4, 4)))

    def test_batch_roundtrip(self):
        rng = np.random.default_rng(3)
        batch = rng.integers(0, 2, size=(5, 8, 8)).astype(np.uint8)
        tensors = fold_batch(batch, 16)
        assert tensors.shape == (5, 16, 2, 2)
        assert np.array_equal(unfold_batch(tensors), batch)


class TestNaivePacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(4)
        matrix = rng.integers(0, 2, size=(8, 8)).astype(np.uint8)
        packed = naive_pack(matrix, 4)
        assert packed.shape == (4, 4)
        assert np.array_equal(naive_unpack(packed, 4), matrix)

    def test_state_space_is_exponential(self):
        matrix = np.ones((4, 4), dtype=np.uint8)
        packed = naive_pack(matrix, 16)
        assert packed.max() == 2**16 - 1

    def test_unbalanced_bit_power(self):
        # Only the first bit of the patch set -> value 2**(bits-1).
        matrix = np.zeros((2, 2), dtype=np.uint8)
        matrix[0, 0] = 1
        assert naive_pack(matrix, 4)[0, 0] == 8
        # Only the last bit set -> value 1.
        matrix = np.zeros((2, 2), dtype=np.uint8)
        matrix[1, 1] = 1
        assert naive_pack(matrix, 4)[0, 0] == 1

    def test_unpack_range_check(self):
        with pytest.raises(ValueError):
            naive_unpack(np.array([[16]]), 4)

    def test_deep_squish_and_naive_encode_same_information(self):
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 2, size=(8, 8)).astype(np.uint8)
        via_fold = unfold(fold(matrix, 16))
        via_pack = naive_unpack(naive_pack(matrix, 16), 16)
        assert np.array_equal(via_fold, via_pack)

"""Unit tests for the persistent pattern library (shards + manifest)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.library import (
    ChunkRecord,
    LibraryError,
    PatternLibrary,
    load_shard,
    pattern_hash,
    save_shard,
    topology_hash,
)
from repro.squish import SquishPattern


def make_pattern(fill: int, size: int = 4, step: int = 32) -> SquishPattern:
    topo = np.zeros((size, size), dtype=np.uint8)
    topo[1 : 1 + (fill % (size - 1)) + 0, 1:3] = 1
    topo[0, fill % size] = 1
    delta = np.full(size, step, dtype=np.int64)
    return SquishPattern(topo, delta, delta + fill)


def make_record(chunk: int, patterns: list[SquishPattern], **overrides) -> ChunkRecord:
    defaults = dict(
        chunk=chunk,
        start=chunk * 4,
        num_sampled=4,
        num_kept=len(patterns),
        num_rejected=4 - min(4, len(patterns)),
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]] if patterns else [],
    )
    defaults.update(overrides)
    return ChunkRecord(**defaults)


class TestShardCodec:
    def test_roundtrip_is_exact(self, tmp_path):
        patterns = [make_pattern(i) for i in range(3)]
        path = tmp_path / "shard.npz"
        save_shard(path, patterns)
        loaded = load_shard(path)
        assert len(loaded) == 3
        for original, copy in zip(patterns, loaded):
            np.testing.assert_array_equal(copy.topology, original.topology)
            np.testing.assert_array_equal(copy.delta_x, original.delta_x)
            np.testing.assert_array_equal(copy.delta_y, original.delta_y)
            assert copy.origin == original.origin

    def test_empty_shard(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_shard(path, [])
        assert load_shard(path) == []

    def test_non_shard_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, other=np.zeros(3))
        with pytest.raises(LibraryError, match="count"):
            load_shard(path)


class TestHashes:
    def test_topology_hash_is_shape_aware(self):
        flat = np.zeros((1, 4), dtype=np.uint8)
        tall = np.zeros((4, 1), dtype=np.uint8)
        assert topology_hash(flat) != topology_hash(tall)
        assert topology_hash(flat) == topology_hash(flat.copy())

    def test_pattern_hash_sees_geometry(self):
        a = make_pattern(1)
        b = a.with_geometry(a.delta_x + 1, a.delta_y)
        assert pattern_hash(a) != pattern_hash(b)
        assert topology_hash(a.topology) == topology_hash(b.topology)


class TestPatternLibrary:
    def test_append_and_reload(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        patterns = [make_pattern(i) for i in range(3)]
        stored = library.append_chunk(make_record(0, patterns), patterns)
        assert len(stored) == 3
        assert library.num_patterns == 3
        assert library.num_chunks == 1

        reopened = PatternLibrary(tmp_path / "lib")
        assert reopened.num_patterns == 3
        loaded = reopened.load_patterns()
        for original, copy in zip(patterns, loaded):
            np.testing.assert_array_equal(copy.topology, original.topology)
            np.testing.assert_array_equal(copy.delta_x, original.delta_x)

    def test_empty_chunk_records_without_shard(self, tmp_path):
        # A chunk whose every sample was prefiltered away still completes:
        # it is recorded (so resume skips it) but writes no shard file.
        library = PatternLibrary(tmp_path / "lib")
        library.append_chunk(make_record(0, []), [])
        record = PatternLibrary(tmp_path / "lib").chunk_records[0]
        assert record.shard is None
        assert PatternLibrary(tmp_path / "lib").load_chunk_patterns(0) == []
        assert not (tmp_path / "lib" / "shards").exists()

    def test_duplicate_chunk_is_rejected(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        patterns = [make_pattern(0)]
        library.append_chunk(make_record(0, patterns), patterns)
        with pytest.raises(LibraryError, match="already recorded"):
            library.append_chunk(make_record(0, patterns), patterns)

    def test_dedup_skips_exact_duplicates(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib", dedup=True)
        patterns = [make_pattern(1), make_pattern(1), make_pattern(2)]
        stored = library.append_chunk(make_record(0, patterns), patterns)
        assert len(stored) == 2
        record = library.chunk_records[0]
        assert record.duplicates_skipped == 1
        assert record.num_stored == 2
        # A later chunk repeating an old pattern is also skipped.
        repeat = [make_pattern(2), make_pattern(3)]
        stored2 = library.append_chunk(make_record(1, repeat), repeat)
        assert len(stored2) == 1
        assert library.num_patterns == 3

    def test_unique_topology_accounting(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        base = make_pattern(1)
        variants = [base, base.with_geometry(base.delta_x + 5, base.delta_y)]
        library.append_chunk(make_record(0, variants), variants)
        assert library.num_patterns == 2
        assert library.num_unique_topologies == 1

    def test_diversity_and_legality_from_records(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        patterns = [make_pattern(i) for i in range(2)]
        record = make_record(
            0, patterns, pattern_complexity_counts=[[1, 2, 1], [3, 4, 1]], num_clean=1
        )
        library.append_chunk(record, patterns)
        assert library.legality() == 0.5
        assert library.diversity() == 1.0  # two distinct pairs, uniform
        summary = library.summary()
        assert summary["patterns"] == 2 and summary["chunks"] == 1

    def test_plan_chunk_previews_dedup_without_mutation(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib", dedup=True)
        first = [make_pattern(1)]
        library.append_chunk(make_record(0, first), first)
        batch = [make_pattern(1), make_pattern(2), make_pattern(2)]
        # Known duplicate, fresh pattern, intra-chunk duplicate.
        assert library.plan_chunk(batch) == [False, True, False]
        # Pure preview: asking twice gives the same answer.
        assert library.plan_chunk(batch) == [False, True, False]
        stored = library.append_chunk(make_record(1, batch), batch)
        assert len(stored) == 1

    def test_plan_chunk_without_dedup_keeps_everything(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        batch = [make_pattern(1), make_pattern(1)]
        assert library.plan_chunk(batch) == [True, True]

    def test_persisted_dedup_mode_wins_on_reopen(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib", dedup=True)
        patterns = [make_pattern(1)]
        library.append_chunk(make_record(0, patterns), patterns)
        # Reopening without the flag must not silently flip the mode.
        reopened = PatternLibrary(tmp_path / "lib")
        assert reopened.dedup is True
        stored = reopened.append_chunk(make_record(1, patterns), patterns)
        assert stored == []

    def test_hash_registry_survives_reload(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib", dedup=True)
        patterns = [make_pattern(1), make_pattern(2)]
        library.append_chunk(make_record(0, patterns), patterns)
        reopened = PatternLibrary(tmp_path / "lib", dedup=True)
        assert reopened.num_unique_topologies == library.num_unique_topologies
        # The reloaded registry still skips previously stored patterns.
        stored = reopened.append_chunk(make_record(1, [make_pattern(1)]), [make_pattern(1)])
        assert stored == []

    def test_bind_adopts_and_validates_fingerprint(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        fingerprint = {"num_samples": 8, "sample_seed": 1, "legal_seed": 1}
        assert library.bind(fingerprint) == []
        patterns = [make_pattern(0)]
        library.append_chunk(make_record(0, patterns), patterns)

        reopened = PatternLibrary(tmp_path / "lib")
        records = reopened.bind(fingerprint, resume=True)
        assert [r.chunk for r in records] == [0]
        with pytest.raises(LibraryError, match="fingerprint"):
            reopened.bind({"num_samples": 9}, resume=True)

    def test_missing_shard_is_reported(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        patterns = [make_pattern(0)]
        library.append_chunk(make_record(0, patterns), patterns)
        library.shard_path(0).unlink()
        with pytest.raises(LibraryError, match="missing"):
            PatternLibrary(tmp_path / "lib").load_chunk_patterns(0)

    def test_corrupt_manifest_is_reported(self, tmp_path):
        root = tmp_path / "lib"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(LibraryError, match="manifest"):
            PatternLibrary(root)

    def test_unknown_chunk_is_reported(self, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        with pytest.raises(LibraryError, match="not recorded"):
            library.load_chunk_patterns(5)

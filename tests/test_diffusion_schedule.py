"""Unit tests for noise schedules."""

import numpy as np
import pytest

from repro.diffusion import NoiseSchedule, cosine_schedule, linear_schedule


class TestNoiseSchedule:
    def test_valid_schedule(self):
        schedule = NoiseSchedule(np.array([0.1, 0.2, 0.3]))
        assert schedule.num_steps == 3
        assert schedule.beta(2) == pytest.approx(0.2)

    def test_rejects_out_of_range_betas(self):
        with pytest.raises(ValueError):
            NoiseSchedule(np.array([0.0, 0.5]))
        with pytest.raises(ValueError):
            NoiseSchedule(np.array([0.5, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NoiseSchedule(np.array([]))

    def test_beta_index_bounds(self):
        schedule = NoiseSchedule(np.array([0.1, 0.2]))
        with pytest.raises(IndexError):
            schedule.beta(0)
        with pytest.raises(IndexError):
            schedule.beta(3)


class TestLinearSchedule:
    def test_matches_paper_equation(self):
        # Eq. (8): beta_k = (k-1)(beta_K - beta_1)/(K-1) + beta_1
        schedule = linear_schedule(1000, 0.01, 0.5)
        assert schedule.beta(1) == pytest.approx(0.01)
        assert schedule.beta(1000) == pytest.approx(0.5)
        assert schedule.beta(500) == pytest.approx((499) * (0.49) / 999 + 0.01)

    def test_monotonically_increasing(self):
        schedule = linear_schedule(64)
        assert (np.diff(schedule.betas) > 0).all()

    def test_single_step_schedule(self):
        schedule = linear_schedule(1, 0.01, 0.5)
        assert schedule.num_steps == 1
        assert schedule.beta(1) == pytest.approx(0.5)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            linear_schedule(0)


class TestCosineSchedule:
    def test_within_bounds(self):
        schedule = cosine_schedule(100)
        assert (schedule.betas > 0).all()
        assert (schedule.betas <= 0.5).all()

    def test_length(self):
        assert cosine_schedule(37).num_steps == 37

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            cosine_schedule(0)

"""Unit tests for synthetic data generation and the dataset container."""

import numpy as np
import pytest

from repro.data import (
    DatasetConfig,
    LayoutPatternDataset,
    SyntheticConfig,
    SyntheticLayoutGenerator,
)
from repro.drc import DesignRuleChecker
from repro.legalization import DesignRules
from repro.squish import unfold


class TestSyntheticGenerator:
    def test_patterns_are_drc_clean(self, synthetic_patterns, rules):
        checker = DesignRuleChecker(rules)
        assert checker.legality_rate(synthetic_patterns) == 1.0

    def test_patterns_have_correct_window(self, synthetic_patterns, rules):
        for pattern in synthetic_patterns[:10]:
            assert pattern.width == rules.pattern_size
            assert pattern.height == rules.pattern_size

    def test_patterns_are_non_empty(self, synthetic_patterns):
        assert all(p.topology.sum() > 0 for p in synthetic_patterns)

    def test_library_is_diverse(self, synthetic_patterns):
        shapes = {p.topology.shape for p in synthetic_patterns}
        assert len(shapes) > 3

    def test_generation_is_reproducible(self):
        generator = SyntheticLayoutGenerator()
        a = generator.generate_pattern(rng=7)
        b = generator.generate_pattern(rng=7)
        assert np.array_equal(a.topology, b.topology)
        assert np.array_equal(a.delta_x, b.delta_x)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(min_intervals=1)
        with pytest.raises(ValueError):
            SyntheticConfig(min_shapes=5, max_shapes=2)

    def test_interval_count_respects_minimum_spacing(self):
        rules = DesignRules(space_min=200, width_min=200, pattern_size=1000)
        config = SyntheticConfig(rules=rules, min_intervals=6, max_intervals=6)
        generator = SyntheticLayoutGenerator(config)
        with pytest.raises(ValueError):
            generator.generate_pattern(rng=0)

    def test_generate_layouts_decodes(self):
        generator = SyntheticLayoutGenerator()
        layouts = generator.generate_layouts(3, rng=0)
        assert all(layout.num_polygons >= 1 for layout in layouts)


class TestDatasetConfig:
    def test_tensor_size(self):
        assert DatasetConfig(matrix_size=32, channels=16).tensor_size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(matrix_size=0)
        with pytest.raises(ValueError):
            DatasetConfig(channels=3)
        with pytest.raises(ValueError):
            DatasetConfig(matrix_size=10, channels=16)
        with pytest.raises(ValueError):
            DatasetConfig(test_fraction=1.5)


class TestLayoutPatternDataset:
    def test_split_sizes(self, tiny_dataset):
        total = len(tiny_dataset)
        assert len(tiny_dataset.train_indices) + len(tiny_dataset.test_indices) == total
        assert len(tiny_dataset.test_indices) == int(round(total * tiny_dataset.config.test_fraction))

    def test_splits_are_disjoint(self, tiny_dataset):
        assert not set(tiny_dataset.train_indices) & set(tiny_dataset.test_indices)

    def test_matrices_have_fixed_shape(self, tiny_dataset):
        matrices = tiny_dataset.topology_matrices("train")
        size = tiny_dataset.config.matrix_size
        assert matrices.shape[1:] == (size, size)

    def test_tensors_fold_matches_matrices(self, tiny_dataset):
        matrices = tiny_dataset.topology_matrices("train")
        tensors = tiny_dataset.topology_tensors("train")
        assert tensors.shape[1] == tiny_dataset.config.channels
        np.testing.assert_array_equal(unfold(tensors[0]), matrices[0])

    def test_padding_preserves_geometry(self, tiny_dataset):
        for original, padded in zip(tiny_dataset.patterns[:5], tiny_dataset.padded[:5]):
            assert padded.is_equivalent_to(original)

    def test_reference_geometries_sum_to_window(self, tiny_dataset, rules):
        for dx, dy in tiny_dataset.reference_geometries("train")[:5]:
            assert dx.sum() == rules.pattern_size
            assert dy.sum() == rules.pattern_size

    def test_unknown_split_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.topology_matrices("validation")

    def test_synthesize_end_to_end(self):
        dataset = LayoutPatternDataset.synthesize(10, DatasetConfig(matrix_size=16, channels=4), rng=0)
        assert len(dataset) == 10
        assert dataset.topology_tensors("all").shape[0] == 10

    def test_patterns_with_too_many_scanlines_are_skipped(self, synthetic_patterns):
        config = DatasetConfig(matrix_size=4, channels=4)
        dataset = LayoutPatternDataset.from_patterns(synthetic_patterns[:20], config, rng=0)
        assert dataset.skipped > 0
        assert len(dataset) == 20 - dataset.skipped

"""Chaos suite for ``repro serve``: determinism through injected failures.

The acceptance gate of the fault-tolerant serving work: for **every**
registered serve-path fault point (``serve:*`` in the batcher, ``worker:*``
in the supervised child, ``stream:advance`` in the engine), killing or
delaying at that point must leave the client-visible stream bit-identical
to a run with no fault at all.  The argument is the stream's
counter-determinism (see :mod:`repro.serve.supervisor`): a restarted worker
synced to the committed frontier recomputes the in-flight window exactly.

Worker children are forked, so the fault hook installed in the test process
is inherited; ``marker`` files make each fault one-shot *across* restarts —
the restarted child finds the marker and does not re-trigger, which is what
lets these tests assert full recovery after exactly one injected failure.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import (
    Fault,
    FaultPlan,
    InjectedCrash,
    inject_faults,
    install_fault_hook,
    registered_fault_points,
)
from repro.pipeline import DiffPatternPipeline
from repro.scenarios import ScenarioRegistry
from repro.serve import (
    GenerateRequest,
    GenerationService,
    ServeClient,
    ServeServer,
    ServiceDegradedError,
    WorkerChunk,
    WorkerConfig,
)
from repro.serve.supervisor import _worker_main
from repro.utils import as_rng

#: Samples covered by the one-shot reference run; windows tile this range.
NUM_REFERENCE = 18

#: Every serve-path fault point the sweeps must cover.  Enumerated from the
#: registry, not hand-listed: adding a new ``fault_point`` to the serving
#: code automatically widens this suite.
CHAOS_POINTS = registered_fault_points(("serve:", "worker:", "stream:"))

#: Points that fire inside the child process (recovery = worker restart);
#: the rest fire in the serving process (recovery = admission-layer retry).
CHILD_ADVANCE_POINTS = {"worker:advance", "worker:send", "stream:advance"}


def _registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register_dict(
        "serve-test",
        {
            "description": "tiny regime for chaos tests",
            "preset": "tiny",
            "training": {"iterations": 150, "num_patterns": 48},
            "engine": {"sample_batch_size": 8, "workers": 1},
            "run": {"num_generated": 10, "seed": 7},
        },
    )
    return registry


@pytest.fixture(scope="module")
def serve_env():
    """Trained pipeline + RNG snapshot + the one-shot reference window."""
    registry = _registry()
    plan = registry.resolve("serve-test").lower()
    pipeline = DiffPatternPipeline(plan.config)
    gen = as_rng(plan.seed)
    pipeline.prepare_data(plan.num_training_patterns, rng=gen)
    pipeline.train(rng=gen)
    state = gen.bit_generator.state

    ref_gen = as_rng(0)
    ref_gen.bit_generator.state = state
    reference = pipeline.generate_and_legalize(
        NUM_REFERENCE,
        num_solutions=plan.num_solutions,
        rng=ref_gen,
        stream=plan.stream,
        retain_topologies=False,
    )

    def factory(_plan):
        restored = as_rng(0)
        restored.bit_generator.state = state
        return pipeline, restored

    return SimpleNamespace(
        registry=registry, plan=plan, factory=factory, reference=reference
    )


def _assert_same_patterns(served, reference_patterns) -> None:
    assert len(served) == len(reference_patterns)
    for ours, theirs in zip(served, reference_patterns):
        assert np.array_equal(ours.topology, theirs.topology)
        assert np.array_equal(ours.delta_x, theirs.delta_x)
        assert np.array_equal(ours.delta_y, theirs.delta_y)


def _in_source_order(windows):
    patterns, sources = [], []
    for window in windows:
        patterns.extend(window.patterns)
        sources.extend(window.sources)
    order = np.argsort(np.asarray(sources), kind="stable")
    return [patterns[i] for i in order]


def _fast_worker_config(**overrides) -> WorkerConfig:
    defaults = dict(heartbeat_interval=0.05, restart_backoff=0.01)
    defaults.update(overrides)
    return WorkerConfig(**defaults)


def _run(
    env,
    *,
    count: int = NUM_REFERENCE,
    max_batch: int = 6,
    supervised: bool = True,
    library_root=None,
    worker_config: "WorkerConfig | None" = None,
    **service_kwargs,
):
    """Run one request through a fresh service; return (window, metrics)."""
    if supervised and worker_config is None:
        worker_config = _fast_worker_config()

    async def scenario():
        service = GenerationService(
            registry=_registry(),
            pipeline_factory=env.factory,
            max_batch=max_batch,
            supervised=supervised,
            library_root=library_root,
            worker_config=worker_config,
            **service_kwargs,
        )
        await service.start()
        ticket = service.submit(GenerateRequest(scenario="serve-test", count=count))
        window = await ticket.collect()
        snapshot = service.metrics.snapshot()
        await service.stop()
        return window, snapshot

    return asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# the sweep: kill at every registered serve-path fault point
# --------------------------------------------------------------------------- #
def test_the_sweep_covers_every_registered_point():
    assert set(CHAOS_POINTS) >= {
        "serve:warmup",
        "serve:advance",
        "serve:persist",
        "serve:cache-commit",
        "worker:warmup",
        "worker:advance",
        "worker:send",
        "stream:advance",
    }


@pytest.mark.parametrize("label", CHAOS_POINTS)
def test_kill_at_every_point_is_bit_identical(serve_env, tmp_path, label):
    """A process kill at any point: the served stream is the no-fault stream."""
    marker = tmp_path / "fired"
    with inject_faults(Fault(label, "kill", marker=marker)):
        window, snapshot = _run(serve_env, library_root=tmp_path / "library")
    assert marker.exists(), f"fault at {label} never fired (dead point?)"
    assert window.ok, window.summary.error
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    if label in CHILD_ADVANCE_POINTS:
        # child died mid-advance: the supervisor restarted and resubmitted
        assert snapshot["worker_restarts"] >= 1
    else:
        # the failure surfaced in the serving process: the retry budget paid
        assert snapshot["generation_failures"] >= 1


@pytest.mark.parametrize(
    "label", [label for label in CHAOS_POINTS if not label.startswith("worker:")]
)
def test_unsupervised_kill_recovers_through_retries(serve_env, tmp_path, label):
    """Without child workers, the admission retry budget alone recovers."""
    marker = tmp_path / "fired"
    with inject_faults(Fault(label, "kill", marker=marker)):
        window, snapshot = _run(
            serve_env, supervised=False, library_root=tmp_path / "library"
        )
    assert marker.exists(), f"fault at {label} never fired (dead point?)"
    assert window.ok, window.summary.error
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    assert snapshot["generation_failures"] >= 1
    assert snapshot["generation_retries"] >= 1


def test_delays_at_every_point_change_nothing(serve_env, tmp_path):
    """Slowness at every point at once is invisible to the client."""
    plan = FaultPlan(
        *[Fault(label, "delay", seconds=0.05) for label in CHAOS_POINTS]
    )
    with inject_faults(plan):
        window, snapshot = _run(serve_env, library_root=tmp_path / "library")
    assert window.ok
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    assert snapshot["worker_restarts"] == 0


def test_hard_exit_mid_advance_is_bit_identical(serve_env, tmp_path):
    """``os._exit`` with no unwinding at all — the hardest possible kill."""
    marker = tmp_path / "fired"
    with inject_faults(Fault("worker:advance", "exit", marker=marker)):
        window, snapshot = _run(serve_env)
    assert marker.exists()
    assert window.ok
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    assert snapshot["worker_restarts"] >= 1


def test_hung_worker_is_detected_and_restarted(serve_env, tmp_path):
    """A wedged advance trips the call budget, not the liveness check.

    The injected delay keeps heartbeats flowing (the child is alive, just
    stuck), so only ``advance_timeout`` can catch it; the restarted child
    finds the marker, recomputes the window, and the stream is unchanged.
    """
    marker = tmp_path / "fired"
    config = _fast_worker_config(advance_timeout=2.0)
    with inject_faults(Fault("worker:advance", "delay", seconds=60.0, marker=marker)):
        window, snapshot = _run(serve_env, worker_config=config)
    assert marker.exists()
    assert window.ok
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    assert snapshot["worker_restarts"] >= 1


def test_deterministic_child_error_retries_without_restart(serve_env):
    """An ``error`` fault is a failing dependency, not a dead process.

    The child reports it and stays alive; the admission layer retries the
    advance against the same worker — no restart, same bits.
    """
    with inject_faults(Fault("worker:advance", "error")):
        window, snapshot = _run(serve_env)
    assert window.ok
    _assert_same_patterns(_in_source_order([window]), serve_env.reference.patterns)
    assert snapshot["worker_restarts"] == 0
    assert snapshot["generation_failures"] >= 1
    assert snapshot["generation_retries"] >= 1


# --------------------------------------------------------------------------- #
# budget exhaustion and the circuit breaker
# --------------------------------------------------------------------------- #
def test_restart_budget_exhaustion_surfaces_typed_failure(serve_env):
    """No marker: every restarted child re-crashes, until budgets run out."""
    config = _fast_worker_config(max_restarts=1)
    with inject_faults(Fault("worker:advance", "kill")):
        window, snapshot = _run(serve_env, worker_config=config, retry_budget=0)
    assert not window.ok
    assert window.summary.error_code == "generation_failed"
    assert "worker failed" in window.summary.error
    assert snapshot["worker_restarts"] >= 1
    assert snapshot["generation_failures"] >= 1


def test_breaker_trips_serves_cache_and_recovers(serve_env):
    """The full degradation arc: trip, degrade, serve cached, half-open, heal."""

    def always_kill(label):
        if label == "serve:advance":
            raise InjectedCrash(label, 0)

    async def scenario():
        service = GenerationService(
            registry=_registry(),
            pipeline_factory=serve_env.factory,
            max_batch=NUM_REFERENCE,
            supervised=True,
            worker_config=_fast_worker_config(),
            retry_budget=0,
            breaker_threshold=1,
            breaker_reset_seconds=60.0,
        )
        await service.start()
        warm = await service.submit(
            GenerateRequest(scenario="serve-test", count=6)
        ).collect()

        install_fault_hook(always_kill)
        try:
            failed = await service.submit(
                GenerateRequest(scenario="serve-test", count=6)
            ).collect()
            state = service.state
            # fully cached windows keep being served while the breaker is open
            cached = await service.submit(
                GenerateRequest(scenario="serve-test", count=6, start=0)
            ).collect()
            with pytest.raises(ServiceDegradedError) as rejected:
                service.submit(GenerateRequest(scenario="serve-test", count=6))
        finally:
            install_fault_hook(None)
        snapshot_open = service.metrics.snapshot()

        # half-open trial: pretend the reset window elapsed; the next live
        # success closes the breaker
        service._breaker_open_until = time.monotonic() - 1.0
        healed = await service.submit(
            GenerateRequest(scenario="serve-test", count=6)
        ).collect()
        snapshot_closed = service.metrics.snapshot()
        final_state = service.state
        await service.stop()
        return (
            warm, failed, state, cached, rejected.value,
            snapshot_open, healed, snapshot_closed, final_state,
        )

    (
        warm, failed, state, cached, rejected,
        snapshot_open, healed, snapshot_closed, final_state,
    ) = asyncio.run(scenario())
    assert warm.ok
    assert not failed.ok
    assert failed.summary.error_code == "generation_failed"
    assert state == "degraded"
    assert cached.ok
    assert cached.summary.cached_samples == 6
    assert rejected.retry_after > 0
    assert snapshot_open["breaker_trips"] == 1
    assert snapshot_open["breaker_open"] is True
    assert healed.ok
    assert snapshot_closed["breaker_open"] is False
    assert final_state == "ok"


# --------------------------------------------------------------------------- #
# the wire-level contract
# --------------------------------------------------------------------------- #
async def _raw_ndjson(port: int, request: GenerateRequest) -> "list[bytes]":
    """POST a request and return the raw NDJSON lines the daemon streamed."""
    client = ServeClient(port=port)
    body = json.dumps(request.as_dict()).encode("utf-8")
    status, headers, reader, writer = await client._open("POST", "/generate", body)
    assert status == 200
    raw = await ServeClient._read_body(headers, reader)
    writer.close()
    return [line for line in raw.split(b"\n") if line.strip()]


def test_http_ndjson_is_bit_identical_through_a_worker_crash(serve_env, tmp_path):
    """The acceptance criterion, verbatim: client-visible NDJSON unchanged."""

    def run_server(faults):
        async def scenario():
            service = GenerationService(
                registry=_registry(),
                pipeline_factory=serve_env.factory,
                max_batch=6,
                supervised=True,
                worker_config=_fast_worker_config(),
            )
            server = ServeServer(service, port=0)
            await server.start()
            with inject_faults(*faults) if faults else _no_faults():
                lines = await _raw_ndjson(
                    server.port, GenerateRequest(scenario="serve-test", count=10)
                )
            await server.stop()
            return lines

        return asyncio.run(scenario())

    class _no_faults:
        def __enter__(self):
            return None

        def __exit__(self, *exc):
            return None

    baseline = run_server(())
    marker = tmp_path / "fired"
    faulted = run_server((Fault("worker:advance", "kill", marker=marker),))
    assert marker.exists()

    # every chunk line is byte-identical; the summary differs only in its
    # wall-clock field
    assert len(baseline) == len(faulted)
    assert baseline[:-1] == faulted[:-1]
    clean_summary, chaos_summary = (
        json.loads(lines[-1].decode("utf-8")) for lines in (baseline, faulted)
    )
    clean_summary.pop("elapsed_seconds")
    chaos_summary.pop("elapsed_seconds")
    assert clean_summary == chaos_summary


# --------------------------------------------------------------------------- #
# the child protocol, run in-process for reachability and coverage
# --------------------------------------------------------------------------- #
def test_worker_main_protocol_honesty(serve_env):
    """Drive ``_worker_main`` in a thread: the child code paths, observable.

    Subprocess bodies are invisible to in-process coverage; running the real
    loop over a real duplex pipe in a thread proves every verb — warmup,
    sync, advance, idempotent resend, desync, ping, error, stop — without a
    fork.
    """
    parent, child = multiprocessing.Pipe(duplex=True)
    thread = threading.Thread(
        target=_worker_main,
        args=(child, serve_env.plan, serve_env.factory, 0.05),
        daemon=True,
    )
    thread.start()

    def ask(message):
        parent.send(message)
        while True:
            reply = parent.recv()
            if not (isinstance(reply, tuple) and reply and reply[0] == "hb"):
                return reply

    try:
        kind, fingerprint = ask(("warmup", None))
        assert kind == "ready"
        assert isinstance(fingerprint, dict)
        # warmup is idempotent: the stream is opened once
        assert ask(("warmup", None))[0] == "ready"
        assert ask(("sync", (0, 0, 0))) == ("synced", (0, 0, 0))

        kind, chunk = ask(("advance", (6, 0)))
        assert kind == "chunk"
        assert isinstance(chunk, WorkerChunk)
        assert (chunk.start, chunk.size, chunk.end) == (0, 6, 6)
        assert chunk.chunk_patterns is chunk.patterns
        _assert_same_patterns(
            chunk.patterns,
            serve_env.reference.patterns[: len(chunk.patterns)],
        )

        # idempotent resend: a retried (start, size) returns the latched
        # chunk without recomputing
        kind, again = ask(("advance", (6, 0)))
        assert kind == "chunk"
        assert (again.start, again.size) == (0, 6)
        _assert_same_patterns(again.patterns, chunk.patterns)

        # a frontier mismatch is reported, never silently generated
        assert ask(("advance", (6, 3))) == ("desync", (6, 3))

        assert ask(("ping", None)) == ("pong", None)

        # deterministic exceptions are reported and the loop survives
        kind, message = ask(("advance", (-1, 6)))
        assert kind == "error"
        assert ask(("ping", None)) == ("pong", None)

        kind, message = ask(("frobnicate", None))
        assert kind == "error"
        assert "unknown command" in message

        assert ask(("stop", None)) == ("stopped", None)
    finally:
        parent.close()
        thread.join(timeout=5.0)
    assert not thread.is_alive()


def test_worker_chunk_projects_a_stream_chunk(serve_env):
    pipeline, gen = serve_env.factory(serve_env.plan)
    graph = pipeline.generation_graph(
        num_solutions=serve_env.plan.num_solutions, retain_topologies=False
    )
    stream = graph.open_stream(gen)
    raw = stream.advance(4)
    projected = WorkerChunk.from_stream_chunk(raw)
    assert (projected.chunk, projected.start, projected.size) == (
        raw.chunk, raw.start, raw.size,
    )
    assert projected.end == raw.start + raw.size
    assert projected.num_kept == raw.num_kept
    assert projected.pattern_sources == raw.pattern_sources
    _assert_same_patterns(projected.patterns, raw.patterns)

"""Multi-process concurrent-writer stress test for the v2 pattern library.

Several OS processes append overlapping pattern chunks to one library at
once (released together by a barrier to maximise lock contention).  The
library's claim is that lock-serialised appends make any concurrent
interleaving equivalent to the serial execution in recorded ``seq`` order —
so the test replays the committed records serially into a fresh library and
asserts the two are **bit-identical**: same per-writer ledger bytes, same
pattern sequence, same dedup decisions, same summary stats.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.library import ChunkRecord, PatternLibrary, pattern_hash
from repro.library.manifest import ledger_path
from repro.squish import SquishPattern

NUM_WRITERS = 3
CHUNKS_PER_WRITER = 4
PATTERNS_PER_CHUNK = 3


def make_pattern(fill: int, size: int = 4, step: int = 32) -> SquishPattern:
    topo = np.zeros((size, size), dtype=np.uint8)
    topo[1 : 1 + (fill % (size - 1)) + 0, 1:3] = 1
    topo[0, fill % size] = 1
    delta = np.full(size, step, dtype=np.int64)
    return SquishPattern(topo, delta, delta + fill)


def chunk_fills(writer_index: int, chunk: int) -> list[int]:
    """Deterministic, heavily overlapping fills: most patterns collide
    across writers, so cross-writer dedup is exercised under contention."""
    base = writer_index * 2 + chunk * 3
    return [(base + offset) % 7 for offset in range(PATTERNS_PER_CHUNK)]


def build_record(chunk: int, patterns: list[SquishPattern]) -> ChunkRecord:
    return ChunkRecord(
        chunk=chunk,
        start=chunk * PATTERNS_PER_CHUNK,
        num_sampled=PATTERNS_PER_CHUNK,
        num_kept=len(patterns),
        num_rejected=0,
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]],
    )


def writer_process(root, writer_index: int, barrier) -> None:
    library = PatternLibrary(root, dedup=True, writer=f"w{writer_index}")
    barrier.wait(timeout=60)
    for chunk in range(CHUNKS_PER_WRITER):
        patterns = [make_pattern(f) for f in chunk_fills(writer_index, chunk)]
        library.append_chunk(build_record(chunk, patterns), patterns)


@pytest.mark.parametrize("round_trip", range(2))  # two rounds: interleavings vary
def test_concurrent_writers_match_serial_replay(tmp_path, round_trip):
    concurrent_root = tmp_path / "concurrent"
    context = multiprocessing.get_context("spawn")
    barrier = context.Barrier(NUM_WRITERS)
    processes = [
        context.Process(
            target=writer_process, args=(concurrent_root, index, barrier)
        )
        for index in range(NUM_WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    merged = PatternLibrary(concurrent_root)
    records = merged.records_in_order()
    assert len(records) == NUM_WRITERS * CHUNKS_PER_WRITER

    # the lock hands out a gap-free global commit order
    assert [record.seq for record in records] == list(range(len(records)))

    # merged view is exactly the union of the per-writer ledgers
    assert merged.writers == [f"w{i}" for i in range(NUM_WRITERS)]
    for index in range(NUM_WRITERS):
        own = [r for r in records if r.writer == f"w{index}"]
        assert [r.chunk for r in own] == list(range(CHUNKS_PER_WRITER))

    # Replay the committed interleaving serially (one process, seq order)
    # into a fresh library: everything must come out bit-identical.
    serial_root = tmp_path / "serial"
    serial_writers = {
        f"w{i}": PatternLibrary(serial_root, dedup=True, writer=f"w{i}")
        for i in range(NUM_WRITERS)
    }
    for record in records:
        writer_index = int(record.writer[1:])
        patterns = [make_pattern(f) for f in chunk_fills(writer_index, record.chunk)]
        serial_writers[record.writer].append_chunk(
            build_record(record.chunk, patterns), patterns
        )

    for index in range(NUM_WRITERS):
        concurrent_bytes = ledger_path(concurrent_root, f"w{index}").read_bytes()
        serial_bytes = ledger_path(serial_root, f"w{index}").read_bytes()
        assert concurrent_bytes == serial_bytes

    serial = PatternLibrary(serial_root)
    assert [pattern_hash(p) for p in merged.load_patterns()] == [
        pattern_hash(p) for p in serial.load_patterns()
    ]
    assert merged.summary() == serial.summary()

    # every distinct pattern is stored exactly once despite the collisions
    hashes = [pattern_hash(p) for p in merged.load_patterns()]
    assert len(hashes) == len(set(hashes)) == 7
    assert (
        sum(r.duplicates_skipped for r in records)
        == NUM_WRITERS * CHUNKS_PER_WRITER * PATTERNS_PER_CHUNK - 7
    )

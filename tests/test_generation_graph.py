"""Streaming-vs-batch parity suite for the generation stage graph.

The contract under test: a streamed run is *element-wise identical* to the
monolithic batch run for the same seed — same patterns, same diversity H bit
for bit, same legality — at every chunk size, and a killed-and-resumed run
reproduces the uninterrupted run from the library manifest.

Most cases drive the graph with a deterministic dataset-backed sampler stub
(per-index seeded like the real engine, so chunk invariance is preserved)
because real patterns must reach the legaliser/DRC/library stages; a smaller
set of cases runs the real trained sampling engine end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.drc import DesignRuleChecker
from repro.legalization import LegalizationEngine
from repro.library import LibraryError, PatternLibrary
from repro.pipeline import (
    DiffPatternConfig,
    DiffPatternPipeline,
    GenerationGraph,
    compare_complexity_distributions,
    compare_complexity_histograms,
    measure_streamed_generation,
)
from repro.pipeline.sampling_engine import SamplingReport
from repro.prefilter import TopologyPrefilter
from repro.utils import resolve_seed

NUM_SAMPLES = 18
CHUNK_SIZES = (1, 7, 64)


class DatasetSamplingEngine:
    """Deterministic stand-in for :class:`SamplingEngine`.

    "Samples" by drawing real dataset tensors with one independent stream per
    sample index (``default_rng([seed, index])``), so it honours the same
    chunk-invariance contract as the real engine while guaranteeing the
    prefilter keeps (most of) the output.
    """

    #: Part of the engine contract fingerprinted by the graph (full chain).
    steps = None

    def __init__(self, tensors: np.ndarray) -> None:
        self.tensors = np.asarray(tensors)

    def sample_with_report(
        self, num_samples: int, seed=0, first_index: int = 0, **_kwargs
    ) -> tuple[np.ndarray, SamplingReport]:
        base = resolve_seed(seed)
        picks = [
            int(np.random.default_rng([base, first_index + i]).integers(0, len(self.tensors)))
            for i in range(num_samples)
        ]
        report = SamplingReport(
            num_samples=num_samples, num_steps=0, batch_size=num_samples, num_chunks=1
        )
        return self.tensors[picks], report


@pytest.fixture(scope="module")
def graph_parts(tiny_dataset, rules):
    sampler = DatasetSamplingEngine(tiny_dataset.topology_tensors("train"))
    references = tiny_dataset.reference_geometries("train")
    return sampler, references


def build_graph(graph_parts, rules, chunk_size, num_solutions=2, library=None, retain=True):
    sampler, references = graph_parts
    return GenerationGraph(
        sampler,
        TopologyPrefilter(),
        LegalizationEngine(rules, reference_geometries=references),
        DesignRuleChecker(rules),
        chunk_size=chunk_size,
        num_solutions=num_solutions,
        retain_topologies=retain,
        library=library,
    )


def assert_results_identical(a, b, compare_topologies=True):
    """Element-wise identity of two GenerationResults (the parity contract)."""
    if compare_topologies:
        np.testing.assert_array_equal(a.topologies, b.topologies)
        assert len(a.kept_topologies) == len(b.kept_topologies)
        for ka, kb in zip(a.kept_topologies, b.kept_topologies):
            np.testing.assert_array_equal(ka, kb)
    assert a.num_patterns == b.num_patterns
    for pa, pb in zip(a.patterns, b.patterns):
        np.testing.assert_array_equal(pa.topology, pb.topology)
        np.testing.assert_array_equal(pa.delta_x, pb.delta_x)
        np.testing.assert_array_equal(pa.delta_y, pb.delta_y)
    assert a.prefilter_reject_rate == b.prefilter_reject_rate
    assert a.unsolved == b.unsolved
    assert a.topology_diversity == b.topology_diversity
    assert a.pattern_diversity == b.pattern_diversity
    assert a.legality == b.legality


class TestChunkSizeParity:
    @pytest.fixture(scope="class")
    def batch_result(self, graph_parts, rules):
        # One chunk spanning the run == the monolithic barrier path.
        return build_graph(graph_parts, rules, chunk_size=NUM_SAMPLES).run(NUM_SAMPLES, seed=11)

    def test_batch_run_produces_patterns(self, batch_result):
        # Guard: the parity assertions below are vacuous on an empty library.
        assert batch_result.num_patterns > 0
        assert batch_result.legality == 1.0
        assert batch_result.pattern_diversity > 0

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streamed_equals_batch(self, graph_parts, rules, batch_result, chunk_size):
        streamed = build_graph(graph_parts, rules, chunk_size=chunk_size).run(
            NUM_SAMPLES, seed=11
        )
        assert_results_identical(batch_result, streamed)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_report_structure_matches(self, graph_parts, rules, batch_result, chunk_size):
        streamed = build_graph(graph_parts, rules, chunk_size=chunk_size).run(
            NUM_SAMPLES, seed=11
        )
        assert streamed.sampling_report.num_samples == NUM_SAMPLES
        batch_stats = batch_result.legalization_report.stats
        stream_stats = streamed.legalization_report.stats
        assert stream_stats.attempted == batch_stats.attempted
        assert stream_stats.solved == batch_stats.solved
        assert stream_stats.solutions == batch_stats.solutions
        assert stream_stats.total_iterations == batch_stats.total_iterations
        assert (
            streamed.legalization_report.num_topologies
            == batch_result.legalization_report.num_topologies
        )

    def test_worker_count_invariance(self, graph_parts, rules, batch_result):
        # first_index must survive the process-pool shard path unchanged.
        sampler, references = graph_parts
        streamed = GenerationGraph(
            sampler,
            TopologyPrefilter(),
            LegalizationEngine(rules, reference_geometries=references, workers=2),
            DesignRuleChecker(rules),
            chunk_size=7,
            num_solutions=2,
        ).run(NUM_SAMPLES, seed=11)
        assert_results_identical(batch_result, streamed)

    def test_retain_topologies_off_keeps_metrics(self, graph_parts, rules, batch_result):
        streamed = build_graph(graph_parts, rules, chunk_size=7, retain=False).run(
            NUM_SAMPLES, seed=11
        )
        assert streamed.topologies.size == 0
        assert streamed.kept_topologies == []
        assert_results_identical(batch_result, streamed, compare_topologies=False)

    def test_streamed_metrics_match_batch_formulas(self, graph_parts, rules, batch_result):
        # Diversity from the streaming accumulator must equal the batch
        # metric recomputed from the materialised library, bit for bit.
        from repro.metrics import pattern_diversity, topology_diversity

        assert batch_result.pattern_diversity == pattern_diversity(batch_result.patterns)
        assert batch_result.topology_diversity == topology_diversity(
            list(batch_result.topologies)
        )

    def test_histogram_figure_matches_pattern_figure(self, graph_parts, rules):
        graph = build_graph(graph_parts, rules, chunk_size=5)
        result = graph.run(NUM_SAMPLES, seed=11)
        # Fig. 9 built from streaming accumulators == built from patterns.
        from repro.metrics import ComplexityHistogram, pattern_complexity

        real_hist = ComplexityHistogram([pattern_complexity(p) for p in result.patterns])
        via_hist = compare_complexity_histograms(real_hist, real_hist)
        via_patterns = compare_complexity_distributions(result.patterns, result.patterns)
        np.testing.assert_array_equal(
            via_hist.real_distribution, via_patterns.real_distribution
        )
        assert via_hist.overlap() == via_patterns.overlap() == 1.0


class TestLibraryResume:
    def test_resume_after_kill_reproduces_uninterrupted_run(
        self, graph_parts, rules, tmp_path
    ):
        uninterrupted = build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "full")
        ).run(NUM_SAMPLES, seed=11)

        # "Kill" the second run after 2 of 4 chunks ...
        partial = build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "killed")
        ).run(NUM_SAMPLES, seed=11, stop_after_chunks=2)
        assert partial.num_patterns < uninterrupted.num_patterns

        # ... and resume it from the manifest with a fresh graph/library object.
        resumed_graph = build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "killed")
        )
        resumed = resumed_graph.run(NUM_SAMPLES, seed=11, resume=True)
        assert resumed_graph.last_report.chunks_resumed == 2
        assert resumed_graph.last_report.chunks_live == 2
        assert "2 generated, 2 resumed" in resumed_graph.last_report.format()
        # Resumed chunks never persisted their raw matrices, so the result
        # deliberately carries none rather than a misleading partial array.
        assert resumed.topologies.size == 0
        assert resumed.kept_topologies == []
        assert_results_identical(uninterrupted, resumed, compare_topologies=False)
        stats = resumed.legalization_report.stats
        assert stats.attempted == uninterrupted.legalization_report.stats.attempted
        assert stats.solutions == uninterrupted.legalization_report.stats.solutions

        # Both libraries hold identical pattern sequences on disk.
        full = PatternLibrary(tmp_path / "full").load_patterns()
        killed = PatternLibrary(tmp_path / "killed").load_patterns()
        assert len(full) == len(killed) == uninterrupted.num_patterns
        for pa, pb in zip(full, killed):
            np.testing.assert_array_equal(pa.topology, pb.topology)
            np.testing.assert_array_equal(pa.delta_x, pb.delta_x)
            np.testing.assert_array_equal(pa.delta_y, pb.delta_y)

    def test_library_accounting_matches_result(self, graph_parts, rules, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        result = build_graph(graph_parts, rules, chunk_size=7, library=library).run(
            NUM_SAMPLES, seed=11
        )
        assert library.num_patterns == result.num_patterns
        assert library.diversity() == result.pattern_diversity
        assert library.legality() == result.legality
        assert library.num_unique_topologies <= result.num_patterns
        reopened = PatternLibrary(tmp_path / "lib")
        assert reopened.summary() == library.summary()

    def test_fingerprint_mismatch_is_rejected(self, graph_parts, rules, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        build_graph(graph_parts, rules, chunk_size=5, library=library).run(
            NUM_SAMPLES, seed=11, stop_after_chunks=1
        )
        other_seed = build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "lib")
        )
        with pytest.raises(LibraryError, match="fingerprint"):
            other_seed.run(NUM_SAMPLES, seed=12, resume=True)

    def test_changed_rules_are_rejected_on_resume(self, graph_parts, rules, tmp_path):
        from repro.legalization import DesignRules

        build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "lib")
        ).run(NUM_SAMPLES, seed=11, stop_after_chunks=1)
        sampler, references = graph_parts
        other_rules = DesignRules(space_min=rules.space_min + 1)
        changed = GenerationGraph(
            sampler,
            TopologyPrefilter(),
            LegalizationEngine(other_rules, reference_geometries=references),
            DesignRuleChecker(other_rules),
            chunk_size=5,
            num_solutions=2,
            library=PatternLibrary(tmp_path / "lib"),
        )
        with pytest.raises(LibraryError, match="fingerprint"):
            changed.run(NUM_SAMPLES, seed=11, resume=True)

    def test_dedup_library_metrics_describe_returned_patterns(
        self, graph_parts, rules, tmp_path
    ):
        from repro.metrics import pattern_diversity

        library = PatternLibrary(tmp_path / "lib", dedup=True)
        result = build_graph(graph_parts, rules, chunk_size=7, library=library).run(
            NUM_SAMPLES, seed=11
        )
        assert result.num_patterns == library.num_patterns
        assert result.pattern_diversity == pattern_diversity(result.patterns)
        assert result.legality in (0.0, 1.0)
        assert library.diversity() == result.pattern_diversity
        assert library.legality() == result.legality

    def test_populated_library_requires_resume_flag(self, graph_parts, rules, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        build_graph(graph_parts, rules, chunk_size=5, library=library).run(
            NUM_SAMPLES, seed=11, stop_after_chunks=1
        )
        again = build_graph(
            graph_parts, rules, chunk_size=5, library=PatternLibrary(tmp_path / "lib")
        )
        with pytest.raises(LibraryError, match="resume"):
            again.run(NUM_SAMPLES, seed=11)


class TestPipelineIntegration:
    """The real trained engine end to end (quality-independent assertions)."""

    @pytest.fixture(scope="class")
    def streamed_and_batch(self, tiny_dataset):
        def run(stream, chunk_size=None):
            pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
            pipeline.prepare_data(dataset=tiny_dataset)
            pipeline.train(iterations=10, rng=0)
            return pipeline.generate_and_legalize(
                9, rng=3, stream=stream, chunk_size=chunk_size
            )

        return run(False), run(True, chunk_size=4)

    def test_run_stream_matches_batch(self, streamed_and_batch):
        batch, streamed = streamed_and_batch
        assert_results_identical(batch, streamed)

    def test_sampling_report_is_carried(self, streamed_and_batch):
        batch, streamed = streamed_and_batch
        for result in (batch, streamed):
            assert result.sampling_report is not None
            assert result.sampling_report.num_samples == 9
            assert result.legalization_report is not None

    def test_last_sampling_report_aggregates_streamed_chunks(self, tiny_dataset):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        pipeline.prepare_data(dataset=tiny_dataset)
        pipeline.train(iterations=10, rng=0)
        pipeline.generate_and_legalize(9, rng=3, stream=True, chunk_size=4)
        # The merged report covers every chunk, not just the last one.
        assert pipeline.last_sampling_report.num_samples == 9
        # A plain generate call still reports that call alone.
        pipeline.generate_topologies(2, rng=0)
        assert pipeline.last_sampling_report.num_samples == 2

    def test_legalize_leaves_sampling_report_empty(self, tiny_dataset, rules):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        pipeline.prepare_data(dataset=tiny_dataset)
        result = pipeline.legalize(tiny_dataset.topology_matrices("test")[:2], rng=0)
        assert result.sampling_report is None

    def test_measure_streamed_generation(self, tiny_dataset):
        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        pipeline.prepare_data(dataset=tiny_dataset)
        pipeline.train(iterations=10, rng=0)
        measured = measure_streamed_generation(pipeline, 4, chunk_size=2, rng=0)
        assert measured.seconds > 0
        assert measured.peak_bytes > 0
        assert measured.result.sampling_report.num_samples == 4


class TestGraphValidation:
    def test_rejects_bad_chunk_size(self, graph_parts, rules):
        with pytest.raises(ValueError):
            build_graph(graph_parts, rules, chunk_size=0)

    def test_rejects_bad_num_samples(self, graph_parts, rules):
        with pytest.raises(ValueError):
            build_graph(graph_parts, rules, chunk_size=4).run(0, seed=1)


class TestGenerationStream:
    """The incremental pull handle behind `repro serve` (PR 7)."""

    @pytest.fixture(scope="class")
    def batch_result(self, graph_parts, rules):
        return build_graph(graph_parts, rules, chunk_size=NUM_SAMPLES).run(NUM_SAMPLES, seed=11)

    @pytest.mark.parametrize("sizes", [(18,), (1,) * 18, (7, 7, 4), (5, 9, 4)])
    def test_any_advance_chunking_matches_batch(
        self, graph_parts, rules, batch_result, sizes
    ):
        stream = build_graph(graph_parts, rules, chunk_size=4).open_stream(seed=11)
        patterns, sources = [], []
        for size in sizes:
            chunk = stream.advance(size)
            assert chunk.end == chunk.start + size
            assert len(chunk.pattern_sources) == len(chunk.patterns)
            patterns.extend(chunk.patterns)
            sources.extend(chunk.pattern_sources)
        assert stream.next_start == NUM_SAMPLES
        assert len(patterns) == batch_result.num_patterns
        for ours, theirs in zip(patterns, batch_result.patterns):
            np.testing.assert_array_equal(ours.topology, theirs.topology)
            np.testing.assert_array_equal(ours.delta_x, theirs.delta_x)
            np.testing.assert_array_equal(ours.delta_y, theirs.delta_y)
        # Source indices are absolute sample positions, strictly grouped.
        assert sources == sorted(sources)
        assert all(0 <= s < NUM_SAMPLES for s in sources)

    def test_kept_indices_align_with_prefilter(self, graph_parts, rules):
        stream = build_graph(graph_parts, rules, chunk_size=4).open_stream(seed=11)
        chunk = stream.advance(NUM_SAMPLES)
        assert len(chunk.kept) == len(chunk.kept_indices)
        assert len(chunk.kept) + chunk.num_rejected == NUM_SAMPLES
        for index, matrix in zip(chunk.kept_indices, chunk.kept):
            np.testing.assert_array_equal(matrix, chunk.matrices[index - chunk.start])
        # Every pattern's source survived the prefilter.
        assert set(chunk.pattern_sources) <= set(chunk.kept_indices)
        assert chunk.num_clean == int(chunk.clean_mask.sum())

    def test_on_chunk_hook_sees_every_live_chunk(self, graph_parts, rules, batch_result):
        seen = []
        graph = build_graph(graph_parts, rules, chunk_size=7)
        graph.on_chunk = seen.append
        result = graph.run(NUM_SAMPLES, seed=11)
        assert [c.chunk for c in seen] == [0, 1, 2]
        assert [c.start for c in seen] == [0, 7, 14]
        assert sum(c.size for c in seen) == NUM_SAMPLES
        hook_patterns = [p for c in seen for p in c.patterns]
        assert len(hook_patterns) == result.num_patterns == batch_result.num_patterns
        for ours, theirs in zip(hook_patterns, result.patterns):
            np.testing.assert_array_equal(ours.delta_x, theirs.delta_x)

    def test_on_chunk_not_fired_for_resumed_chunks(self, graph_parts, rules, tmp_path):
        library = PatternLibrary(tmp_path / "lib")
        graph = build_graph(graph_parts, rules, chunk_size=6, library=library)
        graph.run(NUM_SAMPLES, seed=11, stop_after_chunks=2)

        seen = []
        resumed_library = PatternLibrary(tmp_path / "lib")
        graph2 = build_graph(graph_parts, rules, chunk_size=6, library=resumed_library)
        graph2.on_chunk = seen.append
        result = graph2.run(NUM_SAMPLES, seed=11, resume=True)
        # Two chunks came from the manifest; only the third was live.
        assert [c.chunk for c in seen] == [2]
        assert graph2.last_report.chunks_resumed == 2
        assert result.num_patterns > 0

    def test_stream_rejects_bad_size(self, graph_parts, rules):
        stream = build_graph(graph_parts, rules, chunk_size=4).open_stream(seed=11)
        with pytest.raises(ValueError):
            stream.advance(0)

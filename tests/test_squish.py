"""Unit tests for the squish pattern representation and padding."""

import numpy as np
import pytest

from repro.geometry import Layout, Rect, RectilinearPolygon
from repro.squish import (
    PaddingError,
    SquishPattern,
    canonicalize,
    empty_pattern,
    pad_to_size,
    squish,
    unsquish,
    window_of,
)


def _sample_layout() -> Layout:
    window = Rect(0, 0, 1000, 1000)
    polys = [
        RectilinearPolygon([Rect(100, 100, 300, 200)]),
        RectilinearPolygon([Rect(500, 400, 600, 900)]),
    ]
    return Layout(window, polys)


class TestSquishPattern:
    def test_validation_shape_mismatch(self):
        with pytest.raises(ValueError):
            SquishPattern(np.zeros((2, 3), dtype=np.uint8), [1, 2], [1, 2])

    def test_validation_nonpositive_delta(self):
        with pytest.raises(ValueError):
            SquishPattern(np.zeros((1, 1), dtype=np.uint8), [0], [1])

    def test_validation_non_binary_topology(self):
        with pytest.raises(ValueError):
            SquishPattern(np.full((1, 1), 3), [1], [1])

    def test_width_height(self):
        pattern = SquishPattern(np.zeros((2, 3), dtype=np.uint8), [10, 20, 30], [5, 5])
        assert pattern.width == 60
        assert pattern.height == 10
        assert window_of(pattern) == Rect(0, 0, 60, 10)

    def test_empty_pattern_helper(self):
        pattern = empty_pattern(size_nm=512, cells=8)
        assert pattern.width == 512
        assert pattern.topology.sum() == 0

    def test_empty_pattern_helper_rejects_nondivisible(self):
        with pytest.raises(ValueError):
            empty_pattern(size_nm=100, cells=3)


class TestSquishPersistence:
    def _pattern(self) -> SquishPattern:
        topo = np.zeros((3, 4), dtype=np.uint8)
        topo[0, 1:3] = 1
        topo[2, 0] = 1
        return SquishPattern(topo, [10, 20, 30, 40], [7, 8, 9], origin=(100, -50))

    def test_npz_roundtrip_is_exact(self, tmp_path):
        pattern = self._pattern()
        path = tmp_path / "pattern.npz"
        pattern.save(path)
        loaded = SquishPattern.load(path)
        np.testing.assert_array_equal(loaded.topology, pattern.topology)
        np.testing.assert_array_equal(loaded.delta_x, pattern.delta_x)
        np.testing.assert_array_equal(loaded.delta_y, pattern.delta_y)
        assert loaded.origin == pattern.origin
        assert loaded.delta_x.dtype == np.int64

    def test_load_rejects_shape_mismatch_with_file_context(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            topology=np.zeros((2, 2), dtype=np.uint8),
            delta_x=np.asarray([1, 2, 3], dtype=np.int64),
            delta_y=np.asarray([1, 2], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="bad.npz"):
            SquishPattern.load(path)

    def test_load_rejects_missing_arrays(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, topology=np.zeros((1, 1), dtype=np.uint8))
        with pytest.raises(ValueError, match="missing"):
            SquishPattern.load(path)

    def test_load_rejects_malformed_origin(self, tmp_path):
        path = tmp_path / "origin.npz"
        np.savez(
            path,
            topology=np.zeros((1, 1), dtype=np.uint8),
            delta_x=np.asarray([5], dtype=np.int64),
            delta_y=np.asarray([5], dtype=np.int64),
            origin=np.asarray([1, 2, 3], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="origin"):
            SquishPattern.load(path)

    def test_load_defaults_origin(self, tmp_path):
        path = tmp_path / "no_origin.npz"
        np.savez(
            path,
            topology=np.zeros((1, 1), dtype=np.uint8),
            delta_x=np.asarray([5], dtype=np.int64),
            delta_y=np.asarray([5], dtype=np.int64),
        )
        assert SquishPattern.load(path).origin == (0, 0)


class TestSquishRoundtrip:
    def test_encode_decode_is_lossless(self):
        layout = _sample_layout()
        pattern = squish(layout)
        decoded = unsquish(pattern)
        original = sorted((r.x1, r.y1, r.x2, r.y2) for r in layout.all_rects())
        recovered = sorted((r.x1, r.y1, r.x2, r.y2) for r in decoded.all_rects())
        assert original == recovered

    def test_window_preserved(self):
        layout = _sample_layout()
        pattern = squish(layout)
        assert pattern.width == layout.window.width
        assert pattern.height == layout.window.height

    def test_with_geometry_keeps_topology(self):
        layout = _sample_layout()
        pattern = squish(layout)
        new = pattern.with_geometry(pattern.delta_x + 0, pattern.delta_y + 0)
        assert np.array_equal(new.topology, pattern.topology)
        assert new.is_equivalent_to(pattern)

    def test_equivalence_detects_difference(self):
        layout = _sample_layout()
        pattern = squish(layout)
        other_topo = pattern.topology.copy()
        other_topo[0, 0] ^= 1
        other = SquishPattern(other_topo, pattern.delta_x, pattern.delta_y)
        assert not pattern.is_equivalent_to(other)


class TestPadding:
    def test_pad_preserves_geometry(self):
        layout = _sample_layout()
        pattern = squish(layout)
        padded = pad_to_size(pattern, 16)
        assert padded.topology.shape == (16, 16)
        assert padded.is_equivalent_to(pattern)

    def test_pad_preserves_total_size(self):
        pattern = squish(_sample_layout())
        padded = pad_to_size(pattern, 12)
        assert padded.width == pattern.width
        assert padded.height == pattern.height

    def test_pad_impossible_when_too_many_scanlines(self):
        topo = np.eye(6, dtype=np.uint8)
        # use interval length 1 so no further split is possible
        pattern = SquishPattern(topo, np.ones(6, dtype=np.int64), np.ones(6, dtype=np.int64))
        with pytest.raises(PaddingError):
            pad_to_size(pattern, 8)

    def test_lossless_reduction_merges_identical_columns(self):
        topo = np.array([[1, 1, 0, 0]], dtype=np.uint8)
        pattern = SquishPattern(topo, np.array([5, 5, 5, 5]), np.array([10]))
        reduced = pad_to_size(pattern, 2)
        assert reduced.topology.shape[1] == 2
        assert reduced.is_equivalent_to(pattern)

    def test_impossible_reduction_raises(self):
        topo = np.array([[1, 0, 1, 0]], dtype=np.uint8)
        pattern = SquishPattern(topo, np.array([5, 5, 5, 5]), np.array([10]))
        with pytest.raises(PaddingError):
            pad_to_size(pattern, 2)

    def test_invalid_size(self):
        pattern = empty_pattern(64, 4)
        with pytest.raises(ValueError):
            pad_to_size(pattern, 0)


class TestCanonicalize:
    def test_removes_redundant_scanlines(self):
        pattern = squish(_sample_layout())
        padded = pad_to_size(pattern, 16)
        canonical = canonicalize(padded)
        assert canonical.topology.shape == canonicalize(pattern).topology.shape
        assert canonical.is_equivalent_to(pattern)

    def test_canonical_form_is_fixed_point(self):
        pattern = squish(_sample_layout())
        canonical = canonicalize(pattern)
        again = canonicalize(canonical)
        assert np.array_equal(canonical.topology, again.topology)

    def test_canonicalize_uniform_pattern(self):
        pattern = empty_pattern(64, 4)
        canonical = canonicalize(pattern)
        assert canonical.topology.shape == (1, 1)
        assert canonical.width == 64

"""Parity and correctness suite for the compiled constraint kernels.

Three contracts are asserted here:

1. the compiled ``fun``/``jac`` kernels match the historical per-constraint
   lambda formulation **bit for bit** at arbitrary evaluation points,
2. ``solver_mode="slsqp"`` reproduces the historical solver's output
   bit-identically (a faithful re-implementation of the pre-kernel solver
   lives in this file as the reference), and
3. ``solver_mode="auto"`` always returns solutions that pass the exact
   integer verification *and* the DRC, deterministically per seed.
"""

import numpy as np
import pytest
from scipy import optimize

from repro.data import SyntheticLayoutGenerator
from repro.drc import DesignRuleChecker
from repro.legalization import (
    DesignRules,
    SolverOptions,
    compile_constraints,
    compiled_for_topology,
    extract_constraints,
    solve_geometry,
    solve_topology,
)
from repro.legalization.compiled import (
    clear_compilation_cache,
    compilation_cache_info,
)
from repro.legalization.constraints import polygon_area
from repro.legalization.solver import _round_preserving_sum, _verify_integer_solution
from repro.utils import as_rng


@pytest.fixture(scope="module")
def rules():
    return DesignRules()


@pytest.fixture(scope="module")
def random_topologies():
    """A spread of realistic squish topologies (varied shapes and densities)."""
    patterns = SyntheticLayoutGenerator().generate_library(24, rng=99)
    return [p.topology for p in patterns]


# --------------------------------------------------------------------------- #
# the historical (pre-kernel) formulation, kept as the parity reference
# --------------------------------------------------------------------------- #
def legacy_constraint_dicts(constraints, rules, opts):
    """The per-constraint lambda list the seed solver handed to SLSQP."""
    rows, cols = constraints.shape
    total = float(rules.pattern_size)
    n_vars = cols + rows
    cons = []
    sum_x_jac = np.concatenate([np.ones(cols), np.zeros(rows)])
    sum_y_jac = np.concatenate([np.zeros(cols), np.ones(rows)])
    cons.append({"type": "eq", "fun": lambda v: v[:cols].sum() - total, "jac": lambda v: sum_x_jac})
    cons.append({"type": "eq", "fun": lambda v: v[cols:].sum() - total, "jac": lambda v: sum_y_jac})
    for constraint in constraints.all_interval_constraints:
        jac = np.zeros(n_vars)
        if constraint.axis == "x":
            idx = constraint.indices()
        else:
            idx = constraint.indices() + cols
        jac[idx] = 1.0
        minimum = constraint.minimum + opts.margin

        def fun(v, idx=idx, minimum=minimum):
            return float(v[idx].sum() - minimum)

        cons.append({"type": "ineq", "fun": fun, "jac": lambda v, jac=jac: jac})
    area_margin = 2.0 * total + rows * cols
    if rules.area_max - rules.area_min <= 2.0 * area_margin:
        area_margin = max(0.0, (rules.area_max - rules.area_min) / 4.0)
    for cells in constraints.polygon_cells:
        rows_idx = np.asarray([r for r, _ in cells])
        cols_idx = np.asarray([c for _, c in cells])

        def area_fun(v, rows_idx=rows_idx, cols_idx=cols_idx):
            return float((v[cols_idx] * v[cols + rows_idx]).sum())

        def area_jac(v, rows_idx=rows_idx, cols_idx=cols_idx):
            grad = np.zeros(n_vars)
            np.add.at(grad, cols_idx, v[cols + rows_idx])
            np.add.at(grad, cols + rows_idx, v[cols_idx])
            return grad

        cons.append(
            {
                "type": "ineq",
                "fun": lambda v, f=area_fun: f(v) - (rules.area_min + area_margin),
                "jac": lambda v, j=area_jac: j(v),
            }
        )
        cons.append(
            {
                "type": "ineq",
                "fun": lambda v, f=area_fun: (rules.area_max - area_margin) - f(v),
                "jac": lambda v, j=area_jac: -j(v),
            }
        )
    return cons


def legacy_solve_geometry(constraints, rules, rng=None, options=None):
    """Faithful re-implementation of the pre-kernel ``solve_geometry``."""
    opts = options or SolverOptions()
    gen = as_rng(rng)
    rows, cols = constraints.shape
    total = rules.pattern_size
    n_vars = cols + rows
    attempts = 0
    total_iterations = 0
    while attempts < opts.max_attempts:
        attempts += 1
        tx = gen.dirichlet(np.full(cols, 2.0)) * float(total)
        ty = gen.dirichlet(np.full(rows, 2.0)) * float(total)
        target = np.concatenate([tx, ty])
        scale = 1.0 / float(total)

        def objective(v):
            diff = v - target
            return float(diff @ diff) * scale

        def objective_grad(v):
            return 2.0 * (v - target) * scale

        cons = legacy_constraint_dicts(constraints, rules, opts)
        x0 = np.empty(n_vars)
        x0[:cols] = float(total) / cols
        x0[cols:] = float(total) / rows
        result = optimize.minimize(
            objective,
            x0,
            jac=objective_grad,
            bounds=[(opts.lower_bound, float(total))] * n_vars,
            constraints=cons,
            method="SLSQP",
            options={"maxiter": opts.max_iterations, "ftol": opts.tolerance},
        )
        total_iterations += int(result.nit)
        if result.success:
            dx = _round_preserving_sum(result.x[:cols], total)
            dy = _round_preserving_sum(result.x[cols:], total)
            if _verify_integer_solution(constraints, rules, dx, dy):
                return True, dx, dy, total_iterations, attempts
    return False, None, None, total_iterations, attempts


def evaluate_dicts(cons, v):
    """Concatenated (eq, ineq) values and jacobian rows, dict order —
    exactly the arrays scipy's SLSQP assembles internally."""
    eq, ineq, eq_jac, ineq_jac = [], [], [], []
    for con in cons:
        values = np.atleast_1d(con["fun"](v)).ravel()
        jac = np.atleast_2d(con["jac"](v))
        (eq if con["type"] == "eq" else ineq).append(values)
        (eq_jac if con["type"] == "eq" else ineq_jac).append(jac)
    return (
        np.concatenate(eq) if eq else np.empty(0),
        np.concatenate(ineq) if ineq else np.empty(0),
        np.vstack(eq_jac) if eq_jac else np.empty((0, v.size)),
        np.vstack(ineq_jac) if ineq_jac else np.empty((0, v.size)),
    )


# --------------------------------------------------------------------------- #
# 1. kernel evaluation parity
# --------------------------------------------------------------------------- #
class TestKernelParity:
    def test_fun_and_jac_bit_identical_to_lambda_formulation(self, rules, random_topologies):
        opts = SolverOptions()
        rng = np.random.default_rng(3)
        for topology in random_topologies:
            constraints = extract_constraints(topology, rules.width_min, rules.space_min)
            compiled = compile_constraints(constraints, rules)
            legacy = legacy_constraint_dicts(constraints, rules, opts)
            new = compiled.slsqp_constraints(opts.margin)
            for _ in range(3):
                v = rng.uniform(1.0, rules.pattern_size / 2, size=compiled.n_vars)
                for a, b in zip(evaluate_dicts(legacy, v), evaluate_dicts(new, v)):
                    np.testing.assert_array_equal(a, b)

    def test_interval_values_match_slice_sums(self, rules, random_topologies):
        rng = np.random.default_rng(4)
        topology = random_topologies[0]
        constraints = extract_constraints(topology, rules.width_min, rules.space_min)
        compiled = compile_constraints(constraints, rules)
        cols = constraints.shape[1]
        v = rng.uniform(0.5, 300.0, size=compiled.n_vars)
        values = compiled.interval_values(v)
        for i, constraint in enumerate(constraints.all_interval_constraints):
            idx = constraint.indices() + (0 if constraint.axis == "x" else cols)
            assert values[i] == v[idx].sum()

    def test_polygon_areas_match_polygon_area(self, rules, random_topologies):
        rng = np.random.default_rng(5)
        for topology in random_topologies[:6]:
            constraints = extract_constraints(topology, rules.width_min, rules.space_min)
            compiled = compile_constraints(constraints, rules)
            cols = constraints.shape[1]
            v = rng.uniform(0.5, 300.0, size=compiled.n_vars)
            areas = compiled.polygon_areas(v)
            for i, cells in enumerate(constraints.polygon_cells):
                assert areas[i] == polygon_area(cells, v[:cols], v[cols:])

    def test_verify_integer_matches_reference_verifier(self, rules, random_topologies):
        rng = np.random.default_rng(6)
        for topology in random_topologies[:8]:
            constraints = extract_constraints(topology, rules.width_min, rules.space_min)
            compiled = compile_constraints(constraints, rules)
            rows, cols = constraints.shape
            for _ in range(4):
                # A mix of legal-ish and clearly illegal integer vectors.
                dx = rng.integers(1, 2 * rules.pattern_size // cols, size=cols)
                dx = _round_preserving_sum(dx.astype(float), rules.pattern_size)
                dy = rng.integers(1, 2 * rules.pattern_size // rows, size=rows)
                dy = _round_preserving_sum(dy.astype(float), rules.pattern_size)
                assert compiled.verify_integer(dx, dy) == _verify_integer_solution(
                    constraints, rules, dx, dy
                )


# --------------------------------------------------------------------------- #
# 2. solver_mode="slsqp" bit-identity
# --------------------------------------------------------------------------- #
class TestSlsqpBitIdentity:
    def test_solutions_bit_identical_to_legacy_solver(self, rules, random_topologies):
        opts = SolverOptions(solver_mode="slsqp")
        for seed, topology in enumerate(random_topologies):
            constraints = extract_constraints(topology, rules.width_min, rules.space_min)
            ok, dx, dy, iterations, attempts = legacy_solve_geometry(
                constraints, rules, rng=seed, options=opts
            )
            solution = solve_geometry(constraints, rules, rng=seed, options=opts)
            assert solution.success == ok
            assert solution.iterations == iterations
            assert solution.attempts == attempts
            if ok:
                np.testing.assert_array_equal(solution.delta_x, dx)
                np.testing.assert_array_equal(solution.delta_y, dy)

    def test_slsqp_mode_never_uses_fast_path(self, rules, two_shape_topology):
        solution = solve_topology(
            two_shape_topology, rules, rng=0, options=SolverOptions(solver_mode="slsqp")
        )
        assert solution.success
        assert solution.method == "slsqp"
        assert solution.iterations > 0


# --------------------------------------------------------------------------- #
# 3. solver_mode="auto" correctness
# --------------------------------------------------------------------------- #
class TestAutoMode:
    def test_outputs_verify_and_pass_drc(self, rules, random_topologies):
        checker = DesignRuleChecker(rules)
        options = SolverOptions(solver_mode="auto")
        fast = 0
        for seed, topology in enumerate(random_topologies):
            constraints = extract_constraints(topology, rules.width_min, rules.space_min)
            solution = solve_geometry(constraints, rules, rng=seed, options=options)
            assert solution.success
            assert _verify_integer_solution(
                constraints, rules, solution.delta_x, solution.delta_y
            )
            from repro.squish import SquishPattern

            pattern = SquishPattern(
                topology.astype(np.uint8), solution.delta_x, solution.delta_y
            )
            assert checker.is_legal(pattern)
            fast += solution.method == "repair"
        # The fast path must actually fire on this workload, not just fall
        # back to SLSQP everywhere.
        assert fast > len(random_topologies) // 2

    def test_deterministic_per_seed(self, rules, random_topologies):
        options = SolverOptions(solver_mode="auto")
        topology = random_topologies[0]
        a = solve_topology(topology, rules, rng=123, options=options)
        b = solve_topology(topology, rules, rng=123, options=options)
        np.testing.assert_array_equal(a.delta_x, b.delta_x)
        np.testing.assert_array_equal(a.delta_y, b.delta_y)
        assert a.method == b.method

    def test_distinct_seeds_give_distinct_geometries(self, rules, two_shape_topology):
        options = SolverOptions(solver_mode="auto")
        a = solve_topology(two_shape_topology, rules, rng=1, options=options)
        b = solve_topology(two_shape_topology, rules, rng=2, options=options)
        assert a.success and b.success
        assert not np.array_equal(a.delta_x, b.delta_x)

    def test_fast_path_solution_reports_repair_metadata(self, two_shape_topology):
        # A generous area window so the projection verifies outright (the
        # dense 8x8 fixture sits near the default area_max, where repair
        # legitimately falls back for many targets).
        wide_rules = DesignRules(area_max=1_200_000)
        solution = solve_topology(
            two_shape_topology, wide_rules, rng=0, options=SolverOptions(solver_mode="auto")
        )
        assert solution.success
        assert solution.method == "repair"
        assert solution.iterations == 0
        assert solution.message == "repaired"

    def test_falls_back_to_slsqp_when_projection_cannot_verify(self):
        # A tight area window the proportional projection overshoots: the
        # exact verifier rejects the repaired vectors and the full solve runs.
        rules = DesignRules(area_min=3_000, area_max=9_000, pattern_size=2_048)
        topology = np.zeros((8, 8), dtype=np.uint8)
        topology[3:5, 3:5] = 1
        auto = solve_topology(topology, rules, rng=0, options=SolverOptions(solver_mode="auto"))
        pinned = solve_topology(topology, rules, rng=0, options=SolverOptions(solver_mode="slsqp"))
        assert auto.method == "slsqp"
        assert auto.success == pinned.success
        if auto.success:
            np.testing.assert_array_equal(auto.delta_x, pinned.delta_x)

    def test_infeasible_topology_still_fails_cleanly(self):
        rules = DesignRules(area_max=10_000)
        solution = solve_topology(
            np.ones((4, 4), dtype=np.uint8), rules, rng=0,
            options=SolverOptions(solver_mode="auto"),
        )
        assert not solution.success
        assert solution.delta_x is None

    def test_unknown_mode_rejected(self, rules, two_shape_topology):
        with pytest.raises(ValueError, match="solver_mode"):
            solve_topology(
                two_shape_topology, rules, rng=0,
                options=SolverOptions(solver_mode="newton"),
            )


# --------------------------------------------------------------------------- #
# compilation cache
# --------------------------------------------------------------------------- #
class TestCompilationCache:
    def test_repeated_topologies_hit_the_cache(self, rules, two_shape_topology):
        clear_compilation_cache()
        first = compiled_for_topology(two_shape_topology, rules)
        second = compiled_for_topology(np.array(two_shape_topology), rules)
        assert second is first
        info = compilation_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_rules_compile_separately(self, rules, two_shape_topology):
        clear_compilation_cache()
        a = compiled_for_topology(two_shape_topology, rules)
        b = compiled_for_topology(two_shape_topology, rules.with_space_min(96))
        assert a is not b

    def test_cache_rejects_invalid_grids(self, rules):
        with pytest.raises(ValueError):
            compiled_for_topology(np.array([[0, 2], [1, 0]]), rules)

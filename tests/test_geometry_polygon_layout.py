"""Unit tests for repro.geometry.polygon and repro.geometry.layout."""

import numpy as np
import pytest

from repro.geometry import Layout, Rect, RectilinearPolygon, polygons_from_grid


class TestRectilinearPolygon:
    def test_requires_rectangles(self):
        with pytest.raises(ValueError):
            RectilinearPolygon([])

    def test_area_and_bbox_of_l_shape(self):
        poly = RectilinearPolygon([Rect(0, 0, 10, 30), Rect(10, 0, 30, 10)])
        assert poly.area == 300 + 200
        assert poly.bbox == Rect(0, 0, 30, 30)

    def test_translation(self):
        poly = RectilinearPolygon([Rect(0, 0, 10, 10)]).translated(5, 5)
        assert poly.bbox == Rect(5, 5, 15, 15)

    def test_contains_point(self):
        poly = RectilinearPolygon([Rect(0, 0, 10, 10)])
        assert poly.contains_point(5, 5)
        assert not poly.contains_point(15, 5)

    def test_min_feature_width(self):
        poly = RectilinearPolygon([Rect(0, 0, 100, 8), Rect(0, 8, 12, 40)])
        assert poly.min_feature_width() == 8

    def test_vertices_of_rectangle(self):
        poly = RectilinearPolygon([Rect(0, 0, 10, 20)])
        assert sorted(poly.vertices()) == [(0, 0), (0, 20), (10, 0), (10, 20)]

    def test_vertices_of_l_shape_count(self):
        poly = RectilinearPolygon([Rect(0, 0, 10, 30), Rect(10, 0, 30, 10)])
        assert len(poly.vertices()) == 6


class TestPolygonsFromGrid:
    def test_two_components(self):
        grid = np.zeros((4, 4), dtype=np.uint8)
        grid[0, 0] = 1
        grid[2:4, 2:4] = 1
        polys = polygons_from_grid(grid, [10] * 4, [10] * 4)
        assert len(polys) == 2
        assert sorted(p.area for p in polys) == [100, 400]

    def test_component_rectangles_merge_rows(self):
        grid = np.array([[1, 1, 1]], dtype=np.uint8)
        polys = polygons_from_grid(grid, [10, 10, 10], [10])
        assert len(polys) == 1
        assert len(polys[0].rects) == 1
        assert polys[0].rects[0].width == 30


class TestLayout:
    def test_from_grid_roundtrip(self):
        grid = np.zeros((3, 3), dtype=np.uint8)
        grid[0, 0] = 1
        grid[2, 1:3] = 1
        dx = np.array([100, 200, 100])
        dy = np.array([50, 100, 50])
        layout = Layout.from_grid(grid, dx, dy)
        assert layout.window == Rect(0, 0, 400, 200)
        assert layout.num_polygons == 2
        back_grid, back_dx, back_dy = layout.occupancy_grid()
        rebuilt = Layout.from_grid(back_grid, back_dx, back_dy)
        assert sorted((r.x1, r.y1, r.x2, r.y2) for r in rebuilt.all_rects()) == sorted(
            (r.x1, r.y1, r.x2, r.y2) for r in layout.all_rects()
        )

    def test_polygon_outside_window_rejected(self):
        window = Rect(0, 0, 100, 100)
        poly = RectilinearPolygon([Rect(50, 50, 150, 150)])
        with pytest.raises(ValueError):
            Layout(window, [poly])

    def test_add_polygon_validates(self):
        layout = Layout(Rect(0, 0, 100, 100))
        layout.add_polygon(RectilinearPolygon([Rect(10, 10, 20, 20)]))
        assert layout.num_polygons == 1
        with pytest.raises(ValueError):
            layout.add_polygon(RectilinearPolygon([Rect(90, 90, 120, 120)]))

    def test_density(self):
        layout = Layout(Rect(0, 0, 100, 100), [RectilinearPolygon([Rect(0, 0, 50, 50)])])
        assert layout.density == pytest.approx(0.25)

    def test_scanline_coordinates_include_window(self):
        layout = Layout(Rect(0, 0, 100, 100), [RectilinearPolygon([Rect(10, 20, 30, 40)])])
        xs, ys = layout.scanline_coordinates()
        assert list(xs) == [0, 10, 30, 100]
        assert list(ys) == [0, 20, 40, 100]

    def test_empty_layout_occupancy_grid(self):
        layout = Layout(Rect(0, 0, 100, 100))
        grid, dx, dy = layout.occupancy_grid()
        assert grid.shape == (1, 1)
        assert grid.sum() == 0
        assert dx.sum() == 100

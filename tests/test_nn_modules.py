"""Unit tests for the module system, layers, optimisers and serialisation."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Conv2d,
    Dropout,
    Embedding,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    SiLU,
    Tensor,
    clip_grad_norm,
    load_checkpoint,
    save_checkpoint,
)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.act = SiLU()
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestModuleSystem:
    def test_parameter_registration_recursive(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Linear(2, 2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((3, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net = TinyNet()
        state = net.state_dict()
        other = TinyNet()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_rejects_missing_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_checkpoint_roundtrip(self, tmp_path):
        net = TinyNet()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(net, path)
        other = TinyNet()
        load_checkpoint(other, path)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        np.testing.assert_allclose(net(x).numpy(), other(x).numpy())


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((7, 5), dtype=np.float32)))
        assert out.shape == (7, 3)

    def test_linear_without_bias(self):
        layer = Linear(5, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_conv2d_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_groupnorm_validates_divisibility(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 8)

    def test_groupnorm_identity_stats(self):
        layer = GroupNorm(2, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 3, 3)).astype(np.float32))
        out = layer(x).numpy()
        assert abs(out.mean()) < 0.1

    def test_layernorm_shape(self):
        layer = LayerNorm(6)
        out = layer(Tensor(np.ones((2, 5, 6), dtype=np.float32)))
        assert out.shape == (2, 5, 6)

    def test_identity_passthrough(self):
        x = Tensor(np.arange(4, dtype=np.float32))
        assert np.array_equal(Identity()(x).numpy(), x.numpy())

    def test_embedding_lookup_and_range_check(self):
        layer = Embedding(10, 4, rng=np.random.default_rng(0))
        out = layer(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        with pytest.raises(IndexError):
            layer(np.array([10]))

    def test_dropout_respects_training_flag(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,), dtype=np.float32))
        layer.eval()
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())
        layer.train()
        assert (layer(x).numpy() == 0.0).any()


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0], dtype=np.float32)
        param = Parameter(np.zeros(2, dtype=np.float32))

        def loss_fn():
            diff = param - Tensor(target)
            return (diff * diff).sum()

        return param, target, loss_fn

    def test_sgd_converges_on_quadratic(self):
        param, target, loss_fn = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_sgd_momentum_converges(self):
        param, target, loss_fn = self._quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        param, target, loss_fn = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=5e-2)

    def test_adam_weight_decay_shrinks_weights(self):
        param = Parameter(np.full(4, 10.0, dtype=np.float32))
        opt = Adam([param], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            loss = (param * 0.0).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data).max() < 10.0

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_clip_grad_norm_scales_down(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        param.grad = np.array([3.0, 4.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-4)

    def test_clip_grad_norm_no_scale_when_small(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, [0.3, 0.4])


class TestTraining:
    def test_small_network_fits_nonlinear_regression(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        y = np.tanh(x[:, :1] * 2.0 - x[:, 1:2]).astype(np.float32)
        net = Sequential(
            Linear(4, 16, rng=rng), SiLU(), Linear(16, 1, rng=rng)
        )
        opt = Adam(net.parameters(), lr=1e-2)
        first_loss = None
        for _ in range(300):
            pred = net(Tensor(x))
            diff = pred - Tensor(y)
            loss = (diff * diff).mean()
            if first_loss is None:
                first_loss = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.2

"""Unit tests for the topology pre-filter."""

import numpy as np
import pytest

from repro.prefilter import PrefilterConfig, TopologyPrefilter


@pytest.fixture
def prefilter():
    return TopologyPrefilter()


class TestRejectReasons:
    def test_accepts_valid_topology(self, prefilter, two_shape_topology):
        assert prefilter.accepts(two_shape_topology)
        assert prefilter.reject_reason(two_shape_topology) is None

    def test_rejects_empty(self, prefilter):
        assert prefilter.reject_reason(np.zeros((4, 4), dtype=np.uint8)) == "empty"

    def test_rejects_full(self, prefilter):
        assert prefilter.reject_reason(np.ones((4, 4), dtype=np.uint8)) == "full"

    def test_rejects_bowtie(self, prefilter):
        topo = np.zeros((4, 4), dtype=np.uint8)
        topo[1, 1] = 1
        topo[2, 2] = 1
        assert prefilter.reject_reason(topo) == "bowtie"

    def test_checks_can_be_disabled(self):
        relaxed = TopologyPrefilter(
            PrefilterConfig(reject_bowties=False, reject_empty=False, reject_full=False)
        )
        assert relaxed.accepts(np.zeros((4, 4), dtype=np.uint8))
        assert relaxed.accepts(np.ones((4, 4), dtype=np.uint8))

    def test_max_polygons_limit(self):
        limited = TopologyPrefilter(PrefilterConfig(max_polygons=1))
        topo = np.zeros((5, 5), dtype=np.uint8)
        topo[0, 0] = 1
        topo[4, 4] = 1
        assert limited.reject_reason(topo) == "too_many_polygons"

    def test_single_cell_polygon_rejection_opt_in(self, two_shape_topology):
        topo = two_shape_topology.copy()
        topo[0, 7] = 0
        topo[7, 0] = 1  # isolated single cell, not corner-adjacent to others
        default = TopologyPrefilter()
        strict = TopologyPrefilter(PrefilterConfig(reject_single_cell_polygons=True))
        assert default.accepts(topo)
        assert strict.reject_reason(topo) == "single_cell_polygon"

    def test_rejects_invalid_grid(self, prefilter):
        with pytest.raises(ValueError):
            prefilter.accepts(np.full((2, 2), 3))


class TestBatchFiltering:
    def test_filter_splits_kept_and_rejected(self, prefilter, two_shape_topology):
        bowtie = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        result = prefilter.filter([two_shape_topology, bowtie, np.zeros((3, 3), dtype=np.uint8)])
        assert len(result.kept) == 1
        assert len(result.rejected) == 2
        assert sorted(result.reasons) == ["bowtie", "empty"]

    def test_keep_and_reject_rates(self, prefilter, two_shape_topology):
        result = prefilter.filter([two_shape_topology, np.zeros((2, 2), dtype=np.uint8)])
        assert result.keep_rate == pytest.approx(0.5)
        assert result.reject_rate == pytest.approx(0.5)

    def test_empty_batch(self, prefilter):
        result = prefilter.filter([])
        assert result.keep_rate == 0.0
        assert result.kept == [] and result.rejected == []

"""Parity and behaviour tests for the parallel legalization engine.

The engine's contract mirrors the sampling engine's: for a fixed seed, the
legalised patterns, solver iteration counts and merged statistics are
*element-wise identical* no matter how the batch is sharded — serially
in-process, across 2 or 4 worker processes, with any chunk size.  Every
topology index owns an independent ``SeedSequence``-spawned stream, so a
topology's result depends only on ``(seed, index)``, never on the batch
around it.
"""

import numpy as np
import pytest

from repro.legalization import (
    LegalizationEngine,
    LegalizationStats,
    Legalizer,
    ReferenceIndex,
)


@pytest.fixture(scope="module")
def topology_batch(two_shape_topology):
    """Six small topologies (two distinct shapes, repeated)."""
    other = np.zeros((8, 8), dtype=np.uint8)
    other[2:5, 3:6] = 1
    return [two_shape_topology, other] * 3


@pytest.fixture(scope="module")
def references(rules):
    """A tiny warm-start library matching the 8x8 constraint shapes."""
    rng = np.random.default_rng(0)
    refs = []
    for cols, rows in ((8, 8), (8, 8), (6, 7)):
        dx = rng.dirichlet(np.full(cols, 2.0)) * rules.pattern_size
        dy = rng.dirichlet(np.full(rows, 2.0)) * rules.pattern_size
        refs.append((dx, dy))
    return refs


def signatures(results):
    """Hashable per-topology outcome: geometry vectors + iteration counts."""
    out = []
    for result in results:
        out.append(
            (
                tuple(tuple(p.delta_x.tolist()) for p in result.patterns),
                tuple(tuple(p.delta_y.tolist()) for p in result.patterns),
                tuple(s.iterations for s in result.solutions),
            )
        )
    return out


class TestShardInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_equals_serial(self, rules, topology_batch, workers):
        serial = LegalizationEngine(rules, workers=1)
        parallel = LegalizationEngine(rules, workers=workers)
        a, report_a = serial.legalize_batch_with_report(topology_batch, num_solutions=2, seed=3)
        b, report_b = parallel.legalize_batch_with_report(topology_batch, num_solutions=2, seed=3)
        assert signatures(a) == signatures(b)
        assert report_a.stats == report_b.stats or (
            # solver wall-clock differs across runs; everything else must match
            report_a.stats.attempted == report_b.stats.attempted
            and report_a.stats.solved == report_b.stats.solved
            and report_a.stats.failed == report_b.stats.failed
            and report_a.stats.solutions == report_b.stats.solutions
            and report_a.stats.total_iterations == report_b.stats.total_iterations
        )

    @pytest.mark.parametrize("chunk", [1, 2, 3, 4, 6])
    def test_chunk_size_does_not_change_output(self, rules, topology_batch, chunk):
        engine = LegalizationEngine(rules, workers=1)
        reference = engine.legalize_batch(topology_batch, num_solutions=2, seed=5)
        chunked = engine.legalize_batch(topology_batch, num_solutions=2, seed=5, chunk_size=chunk)
        assert signatures(reference) == signatures(chunked)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_first_index_offsets_the_streams(self, rules, topology_batch, workers):
        # Windowed legalisation equals the same window of one monolithic
        # call — the streaming graph legalises consecutive kept-windows
        # through exactly this offset (including across the process pool).
        engine = LegalizationEngine(rules, workers=workers)
        full = engine.legalize_batch(topology_batch, num_solutions=2, seed=9)
        window = engine.legalize_batch(
            topology_batch[2:5], num_solutions=2, seed=9, first_index=2
        )
        assert signatures(full[2:5]) == signatures(window)

    def test_persistent_pool_matches_per_call_pools(self, rules, topology_batch):
        # The streaming graph holds one pool across all its chunk calls;
        # the output must equal fresh-pool-per-call runs exactly.
        engine = LegalizationEngine(rules, workers=2)
        reference = signatures(engine.legalize_batch(topology_batch, num_solutions=2, seed=9))
        with engine.pool():
            first = engine.legalize_batch(topology_batch[:3], num_solutions=2, seed=9)
            second = engine.legalize_batch(
                topology_batch[3:], num_solutions=2, seed=9, first_index=3
            )
            # Re-entering is a no-op, not a second pool.
            with engine.pool():
                assert engine._pool is not None
        assert engine._pool is None
        assert signatures(first + second) == reference

    def test_pool_is_noop_for_serial_engine(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        with engine.pool():
            assert engine._pool is None
            results = engine.legalize_batch(topology_batch, seed=2)
        assert signatures(results) == signatures(engine.legalize_batch(topology_batch, seed=2))

    def test_first_index_rejects_negative(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        with pytest.raises(ValueError):
            engine.legalize_batch(topology_batch, seed=0, first_index=-1)

    def test_parallel_chunking_matrix(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        reference = signatures(engine.legalize_batch(topology_batch, seed=11))
        for workers in (2, 4):
            for chunk in (1, 3):
                engine = LegalizationEngine(rules, workers=workers, chunk_size=chunk)
                assert signatures(engine.legalize_batch(topology_batch, seed=11)) == reference

    def test_warm_start_references_preserved_across_workers(
        self, rules, topology_batch, references
    ):
        serial = LegalizationEngine(rules, reference_geometries=references, workers=1)
        parallel = LegalizationEngine(rules, reference_geometries=references, workers=2)
        a = serial.legalize_batch(topology_batch, num_solutions=2, seed=0)
        b = parallel.legalize_batch(topology_batch, num_solutions=2, seed=0, chunk_size=1)
        assert signatures(a) == signatures(b)

    def test_engine_reference_update_respected_serially(
        self, rules, references, topology_batch
    ):
        # The serial path must not cache a legaliser across calls: updating
        # the warm-start library changes the next run, same as workers>1.
        engine = LegalizationEngine(rules, workers=1)
        cold = engine.legalize_batch(topology_batch[:2], num_solutions=1, seed=0)
        engine.reference_geometries = references
        warm = engine.legalize_batch(topology_batch[:2], num_solutions=1, seed=0)
        assert signatures(cold) != signatures(warm)
        parallel = LegalizationEngine(rules, reference_geometries=references, workers=2)
        warm_parallel = parallel.legalize_batch(
            topology_batch[:2], num_solutions=1, seed=0, chunk_size=1
        )
        assert signatures(warm) == signatures(warm_parallel)

    def test_prefix_stability(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        many = engine.legalize_batch(topology_batch, seed=7)
        few = engine.legalize_batch(topology_batch[:2], seed=7)
        assert signatures(many)[:2] == signatures(few)

    def test_single_topology_rerun_reproduces_batch_element(self, rules, topology_batch):
        # Per-index streams: element i is reproducible on its own at the same
        # index, independent of batch composition (the RNG-accounting fix).
        engine = LegalizationEngine(rules, workers=1)
        batch = engine.legalize_batch(topology_batch, seed=9)
        legalizer = Legalizer(rules)
        lone = legalizer.legalize_batch(
            [topology_batch[3]], num_solutions=1, rng=9, first_index=3
        )
        assert signatures([batch[3]]) == signatures(lone)

    def test_batch_composition_does_not_leak_between_elements(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        original = engine.legalize_batch(topology_batch, seed=2)
        swapped = list(topology_batch)
        swapped[5] = np.ones((4, 4), dtype=np.uint8)  # change only the last element
        perturbed = engine.legalize_batch(swapped, seed=2)
        assert signatures(original)[:5] == signatures(perturbed)[:5]


class TestLegalizerBatchSeeding:
    def test_engine_serial_matches_legalizer_batch(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        legalizer = Legalizer(rules)
        a = engine.legalize_batch(topology_batch, num_solutions=2, seed=4)
        b = legalizer.legalize_batch(topology_batch, num_solutions=2, rng=4)
        assert signatures(a) == signatures(b)

    def test_int_seed_reproducible(self, rules, topology_batch):
        legalizer = Legalizer(rules)
        a = legalizer.legalize_batch(topology_batch, rng=6)
        b = legalizer.legalize_batch(topology_batch, rng=6)
        assert signatures(a) == signatures(b)

    def test_generator_seed_draws_once(self, rules, topology_batch):
        legalizer = Legalizer(rules)
        a = legalizer.legalize_batch(topology_batch, rng=np.random.default_rng(1))
        b = legalizer.legalize_batch(topology_batch, rng=np.random.default_rng(1))
        assert signatures(a) == signatures(b)


class TestStatsAndReport:
    def test_stats_merge_is_additive(self):
        a = LegalizationStats(attempted=2, solved=1, failed=1, total_solver_time=0.5,
                              total_iterations=10, solutions=3)
        b = LegalizationStats(attempted=3, solved=3, failed=0, total_solver_time=1.5,
                              total_iterations=20, solutions=4)
        a.merge(b)
        assert a.attempted == 5 and a.solved == 4 and a.failed == 1
        assert a.total_solver_time == 2.0
        assert a.total_iterations == 30 and a.solutions == 7

    def test_report_counts_and_throughput(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        results, report = engine.legalize_batch_with_report(topology_batch, seed=0)
        assert report.num_topologies == len(topology_batch)
        assert report.stats.attempted == len(topology_batch)
        assert report.total_seconds > 0
        assert report.topologies_per_second > 0
        assert report.solver_seconds == report.stats.total_solver_time
        assert 0.0 <= report.success_rate <= 1.0
        assert report.stats.solutions == sum(len(r.patterns) for r in results)
        assert "topologies/s" in report.format()

    def test_merged_stats_match_monolithic_run(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=2)
        _, sharded = engine.legalize_batch_with_report(topology_batch, seed=1, chunk_size=1)
        legalizer = Legalizer(rules)
        legalizer.legalize_batch(topology_batch, rng=1)
        mono = legalizer.stats
        assert sharded.stats.attempted == mono.attempted
        assert sharded.stats.solved == mono.solved
        assert sharded.stats.failed == mono.failed
        assert sharded.stats.solutions == mono.solutions
        assert sharded.stats.total_iterations == mono.total_iterations

    def test_last_report_retained(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        assert engine.last_report is None
        engine.legalize_batch(topology_batch[:2], seed=0)
        assert engine.last_report is not None
        assert engine.last_report.num_topologies == 2
        assert engine.stats.attempted == 2

    def test_empty_batch(self, rules):
        engine = LegalizationEngine(rules, workers=2)
        results, report = engine.legalize_batch_with_report([], seed=0)
        assert results == []
        assert report.num_topologies == 0
        assert report.stats.attempted == 0

    def test_legal_patterns_flattens(self, rules, topology_batch):
        engine = LegalizationEngine(rules, workers=1)
        patterns = engine.legal_patterns(topology_batch, num_solutions=2, seed=0)
        results = engine.legalize_batch(topology_batch, num_solutions=2, seed=0)
        assert len(patterns) == sum(len(r.patterns) for r in results)


class TestArguments:
    def test_rejects_bad_workers(self, rules):
        with pytest.raises(ValueError):
            LegalizationEngine(rules, workers=0)

    def test_rejects_bad_chunk_size(self, rules):
        with pytest.raises(ValueError):
            LegalizationEngine(rules, chunk_size=0)
        engine = LegalizationEngine(rules, workers=1)
        with pytest.raises(ValueError):
            engine.legalize_batch([np.ones((2, 2), dtype=np.uint8)], chunk_size=0)

    def test_workers_none_uses_host_default(self, rules):
        from repro.legalization import default_workers

        engine = LegalizationEngine(rules, workers=None)
        assert engine.workers == default_workers() >= 1


class TestReferenceIndex:
    def test_buckets_match_linear_scan(self, references):
        index = ReferenceIndex(references)
        assert len(index) == 3
        # (rows, cols) = (8, 8) bucket holds the two 8x8 pairs, in order.
        candidates = index.candidates((8, 8))
        assert len(candidates) == 2
        np.testing.assert_allclose(candidates[0][0], references[0][0])
        np.testing.assert_allclose(candidates[1][0], references[1][0])
        assert len(index.candidates((7, 6))) == 1
        assert index.candidates((3, 3)) == []

    def test_pick_matches_legacy_draw(self, references):
        # The bucketed pick must draw the same pair the old O(library) scan
        # drew: uniform over matching candidates in insertion order.
        index = ReferenceIndex(references)
        shape = (8, 8)
        rows, cols = shape
        legacy_candidates = [
            (dx, dy) for dx, dy in references if len(dx) == cols and len(dy) == rows
        ]
        for seed in range(5):
            rng_new = np.random.default_rng(seed)
            rng_old = np.random.default_rng(seed)
            dx, dy = index.pick(shape, rng_new)
            expected_dx, expected_dy = legacy_candidates[
                int(rng_old.integers(0, len(legacy_candidates)))
            ]
            np.testing.assert_allclose(dx, expected_dx)
            np.testing.assert_allclose(dy, expected_dy)

    def test_pick_empty_returns_none_without_drawing(self):
        index = ReferenceIndex([])
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert index.pick((4, 4), rng) == (None, None)
        assert rng.bit_generator.state == before

    def test_legalizer_uses_index(self, rules, references, two_shape_topology):
        legalizer = Legalizer(rules, reference_geometries=references)
        assert len(legalizer.reference_index) == len(references)
        result = legalizer.legalize_topology(two_shape_topology, num_solutions=1, rng=0)
        assert result.solved

    def test_reassigning_references_rebuilds_index(self, rules, references):
        legalizer = Legalizer(rules)
        assert len(legalizer.reference_index) == 0
        legalizer.reference_geometries = references
        assert len(legalizer.reference_index) == len(references)
        assert len(legalizer.reference_index.candidates((8, 8))) == 2

    def test_in_place_append_is_picked_up(self, rules, references):
        legalizer = Legalizer(rules, reference_geometries=references[:1])
        legalizer.reference_geometries.append(references[1])
        dx, dy = legalizer._pick_targets((8, 8), np.random.default_rng(0))
        assert dx is not None and dy is not None
        assert len(legalizer.reference_index) == 2


class TestPipelineIntegration:
    def test_pipeline_legalize_worker_invariant(self, trained_tiny_pipeline, tiny_dataset):
        topologies = tiny_dataset.topology_matrices("test")[:4]
        serial = trained_tiny_pipeline.legalize(topologies, num_solutions=1, rng=0, workers=1)
        parallel = trained_tiny_pipeline.legalize(
            topologies, num_solutions=1, rng=0, workers=2, chunk_size=1
        )
        assert len(serial.patterns) == len(parallel.patterns)
        for a, b in zip(serial.patterns, parallel.patterns):
            np.testing.assert_array_equal(a.delta_x, b.delta_x)
            np.testing.assert_array_equal(a.delta_y, b.delta_y)
        assert serial.legality == parallel.legality

    def test_pipeline_records_legalization_report(self, trained_tiny_pipeline, tiny_dataset):
        topologies = tiny_dataset.topology_matrices("test")[:2]
        result = trained_tiny_pipeline.legalize(topologies, num_solutions=1, rng=0)
        assert result.legalization_report is not None
        assert trained_tiny_pipeline.last_legalization_report is result.legalization_report
        assert result.legalization_report.num_topologies == len(result.kept_topologies)

    def test_pipeline_engine_uses_config_knobs(self, trained_tiny_pipeline):
        config = trained_tiny_pipeline.config
        original = (config.workers, config.legalize_chunk_size)
        try:
            config.workers = 3
            config.legalize_chunk_size = 2
            engine = trained_tiny_pipeline.legalization_engine()
            assert engine.workers == 3
            assert engine.chunk_size == 2
        finally:
            config.workers, config.legalize_chunk_size = original

    def test_measure_batch_legalization(self, tiny_dataset, rules):
        from repro.pipeline import measure_batch_legalization

        topologies = list(tiny_dataset.topology_matrices("test")[:3])
        report = measure_batch_legalization(topologies, rules, workers=1, seed=0)
        assert report.num_topologies == 3
        assert report.total_seconds > 0

"""Tests for the ``repro serve`` generation service.

The central claim under test is the serving determinism contract: any
window ``[a, b)`` the service answers — across concurrent clients, any
submission interleaving, any coalesced batch size, cached or live, in
process or over HTTP — is bit-identical to samples ``[a, b)`` of a
one-shot ``repro generate`` run of the same scenario/seed.

No pytest-asyncio in the toolchain: every async test body runs through a
plain ``asyncio.run``.  One pipeline is trained per module; the service's
``pipeline_factory`` hook re-enters generation from a snapshot of the
post-training RNG state, exactly as the CLI's warmup would leave it.
"""

from __future__ import annotations

import asyncio
import json
import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.pipeline import DiffPatternPipeline
from repro.scenarios import ScenarioError, ScenarioRegistry
from repro.serve import (
    ChunkPayload,
    GenerateRequest,
    GenerationService,
    ProtocolError,
    RequestSummary,
    ServeClient,
    ServeHTTPError,
    ServeMetrics,
    ServeServer,
    ServiceBusyError,
    ServiceClosedError,
    WorkerConfig,
    pattern_from_json,
    pattern_to_json,
    stream_key,
)
from repro.utils import as_rng

#: Samples covered by the one-shot reference run; windows tile this range.
NUM_REFERENCE = 18


def _registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register_dict(
        "serve-test",
        {
            "description": "tiny regime for serving tests",
            "preset": "tiny",
            "training": {"iterations": 150, "num_patterns": 48},
            "engine": {"sample_batch_size": 8, "workers": 1},
            "run": {"num_generated": 10, "seed": 7},
        },
    )
    return registry


@pytest.fixture(scope="module")
def serve_env():
    """Trained pipeline + RNG snapshot + the one-shot reference window."""
    registry = _registry()
    plan = registry.resolve("serve-test").lower()
    pipeline = DiffPatternPipeline(plan.config)
    gen = as_rng(plan.seed)
    pipeline.prepare_data(plan.num_training_patterns, rng=gen)
    pipeline.train(rng=gen)
    state = gen.bit_generator.state

    ref_gen = as_rng(0)
    ref_gen.bit_generator.state = state
    reference = pipeline.generate_and_legalize(
        NUM_REFERENCE,
        num_solutions=plan.num_solutions,
        rng=ref_gen,
        stream=plan.stream,
        retain_topologies=False,
    )

    def factory(_plan):
        restored = as_rng(0)
        restored.bit_generator.state = state
        return pipeline, restored

    return SimpleNamespace(
        registry=registry, plan=plan, factory=factory, reference=reference
    )


def _service(env, **kwargs) -> GenerationService:
    kwargs.setdefault("registry", _registry())
    kwargs.setdefault("pipeline_factory", env.factory)
    return GenerationService(**kwargs)


def _assert_same_patterns(served, reference_patterns) -> None:
    assert len(served) == len(reference_patterns)
    for ours, theirs in zip(served, reference_patterns):
        assert np.array_equal(ours.topology, theirs.topology)
        assert np.array_equal(ours.delta_x, theirs.delta_x)
        assert np.array_equal(ours.delta_y, theirs.delta_y)


def _in_source_order(windows):
    patterns, sources = [], []
    for window in windows:
        patterns.extend(window.patterns)
        sources.extend(window.sources)
    order = np.argsort(np.asarray(sources), kind="stable")
    return [patterns[i] for i in order]


# --------------------------------------------------------------------------- #
# coalescing bit-identity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("max_batch", [1, 7, 64])
def test_interleaved_clients_bit_identical_to_one_shot(serve_env, max_batch):
    """Three clients, staggered submissions, every batch size: same bits."""

    async def scenario():
        service = _service(serve_env, max_batch=max_batch)
        # Two clients queue before the worker even starts...
        first = service.submit(GenerateRequest(scenario="serve-test", count=5))
        second = service.submit(GenerateRequest(scenario="serve-test", count=9))
        await service.start()

        async def late_client():
            # ...and a third interleaves once generation is mid-stream.
            while service.metrics.snapshot()["samples_generated"] == 0:
                await asyncio.sleep(0.001)
            return service.submit(GenerateRequest(scenario="serve-test", count=4))

        third = await late_client()
        windows = await asyncio.gather(
            first.collect(), second.collect(), third.collect()
        )
        await service.stop()
        return service, windows

    service, windows = asyncio.run(scenario())
    assert all(window.ok for window in windows)
    # Windows tile [0, 18) in submission order regardless of interleaving.
    spans = sorted((w.summary.start, w.summary.end) for w in windows)
    assert spans == [(0, 5), (5, 14), (14, 18)]
    # Splice every served pattern back together by source index: the union
    # must be the one-shot run, bit for bit.
    _assert_same_patterns(_in_source_order(windows), serve_env.reference.patterns)
    assert (
        sum(w.summary.num_clean for w in windows)
        == round(serve_env.reference.legality * len(serve_env.reference.patterns))
    )


def test_single_client_parity_and_occupancy(serve_env):
    async def scenario():
        service = _service(serve_env, max_batch=7)
        ticket_a = service.submit(GenerateRequest(scenario="serve-test", count=10))
        ticket_b = service.submit(GenerateRequest(scenario="serve-test", count=8))
        await service.start()
        windows = await asyncio.gather(ticket_a.collect(), ticket_b.collect())
        snapshot = service.metrics.snapshot()
        await service.stop()
        return windows, snapshot

    windows, snapshot = asyncio.run(scenario())
    assert all(window.ok for window in windows)
    _assert_same_patterns(_in_source_order(windows), serve_env.reference.patterns)
    # Both clients drained in one coalesced sweep: the batch straddling the
    # window boundary at sample 10 served both requests.
    assert snapshot["batch_occupancy_mean"] > 1.0
    assert snapshot["samples_generated"] == NUM_REFERENCE
    assert snapshot["requests_completed"] == 2


# --------------------------------------------------------------------------- #
# backpressure
# --------------------------------------------------------------------------- #
def test_backpressure_rejects_beyond_max_pending(serve_env):
    async def scenario():
        service = _service(serve_env, max_pending=2)
        # Worker not started: submits stack up against the pending bound.
        t1 = service.submit(GenerateRequest(scenario="serve-test", count=2))
        t2 = service.submit(GenerateRequest(scenario="serve-test", count=2))
        with pytest.raises(ServiceBusyError):
            service.submit(GenerateRequest(scenario="serve-test", count=2))
        assert service.metrics.snapshot()["requests_rejected"] == 1
        # Shutdown resolves the queued tickets with explicit failures.
        await service.start()
        await service.stop()
        return await asyncio.gather(t1.collect(), t2.collect())

    windows = asyncio.run(scenario())
    for window in windows:
        assert not window.ok
        assert "stopped" in window.summary.error


def test_submit_after_stop_is_refused(serve_env):
    async def scenario():
        service = _service(serve_env)
        await service.start()
        await service.stop()
        with pytest.raises(ServiceClosedError):
            service.submit(GenerateRequest(scenario="serve-test", count=1))

    asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# cache
# --------------------------------------------------------------------------- #
def test_repeat_window_is_served_from_cache(serve_env):
    async def scenario():
        service = _service(serve_env, max_batch=6)
        live = service.submit(GenerateRequest(scenario="serve-test", count=12))
        await service.start()
        first = await live.collect()
        # Same window again: answered at submit time, no pending slot, no
        # new generation.
        repeat_ticket = service.submit(
            GenerateRequest(scenario="serve-test", count=12, start=0)
        )
        assert service.pending == 0
        repeat = await repeat_ticket.collect()
        snapshot = service.metrics.snapshot()
        await service.stop()
        return first, repeat, snapshot

    first, repeat, snapshot = asyncio.run(scenario())
    assert first.ok and repeat.ok
    assert repeat.summary.cached_samples == 12
    assert repeat.summary.live_chunks == 0
    _assert_same_patterns(repeat.patterns, first.patterns)
    assert snapshot["samples_cached"] == 12
    assert snapshot["samples_generated"] == 12
    assert snapshot["cache_hit_rate"] == pytest.approx(0.5)


def test_partial_overlap_reuses_cached_prefix(serve_env):
    async def scenario():
        service = _service(serve_env, max_batch=64)
        head = service.submit(GenerateRequest(scenario="serve-test", count=8))
        await service.start()
        await head.collect()
        # Overlapping window [4, 16): the first half replays from cache,
        # only [8, 16) is newly generated.
        overlap = service.submit(
            GenerateRequest(scenario="serve-test", count=12, start=4)
        )
        window = await overlap.collect()
        await service.stop()
        return window

    window = asyncio.run(scenario())
    assert window.ok
    assert window.summary.cached_samples == 4
    assert window.summary.live_chunks >= 1
    reference = [
        p
        for p, s in zip(
            serve_env.reference.patterns,
            _reference_sources(serve_env),
        )
        if 4 <= s < 16
    ]
    _assert_same_patterns(window.patterns, reference)


def _reference_sources(env):
    """Absolute source sample index per reference pattern (via a stream)."""
    pipeline, gen = env.factory(env.plan)
    graph = pipeline.generation_graph(
        num_solutions=env.plan.num_solutions, retain_topologies=False
    )
    stream = graph.open_stream(gen)
    sources = []
    while stream.next_start < NUM_REFERENCE:
        chunk = stream.advance(min(6, NUM_REFERENCE - stream.next_start))
        sources.extend(chunk.pattern_sources)
    return sources


def test_streams_are_keyed_by_scenario_identity(serve_env):
    async def scenario():
        service = _service(serve_env)
        service.submit(GenerateRequest(scenario="serve-test", count=2))
        service.submit(
            GenerateRequest(
                scenario="serve-test", count=2, overrides={"run": {"seed": 99}}
            )
        )
        n_batchers = len(service._batchers)
        await service.start()
        await service.stop()
        return n_batchers

    assert asyncio.run(scenario()) == 2
    plan_a = serve_env.registry.resolve("serve-test").lower()
    plan_b = serve_env.registry.resolve("serve-test").with_overrides(
        {"run": {"num_generated": 999}}
    ).lower()
    # Window-shaping knobs are not part of the stream identity...
    assert stream_key(plan_a) == stream_key(plan_b)
    plan_c = serve_env.registry.resolve("serve-test").with_overrides(
        {"run": {"seed": 99}}
    ).lower()
    # ...but the seed is.
    assert stream_key(plan_a) != stream_key(plan_c)


# --------------------------------------------------------------------------- #
# shutdown mid-stream
# --------------------------------------------------------------------------- #
def test_clean_shutdown_mid_stream(serve_env):
    async def scenario():
        service = _service(serve_env, max_batch=1)
        ticket = service.submit(GenerateRequest(scenario="serve-test", count=18))
        await service.start()
        # Wait for generation to be demonstrably underway, then stop.
        first_event = await ticket._events.get()
        await service.stop()
        window = await ticket.collect()
        return first_event, window

    first_event, window = asyncio.run(scenario())
    assert isinstance(first_event, ChunkPayload)
    assert not window.ok
    assert "stopped" in window.summary.error
    # Whatever arrived before the stop is still the real prefix of the run.
    served = first_event.patterns + window.patterns
    sources = first_event.sources + window.sources
    by_source = dict(zip(_reference_sources(serve_env), serve_env.reference.patterns))
    assert len(served) < len(serve_env.reference.patterns)
    for pattern, source in zip(served, sources):
        reference = by_source[source]
        assert np.array_equal(pattern.topology, reference.topology)
        assert np.array_equal(pattern.delta_x, reference.delta_x)


# --------------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------------- #
def test_http_end_to_end(serve_env):
    async def scenario():
        service = _service(serve_env, max_batch=4)
        server = ServeServer(service, port=0)
        await server.start()
        client = ServeClient(port=server.port)

        health = await client.healthz()
        window = await client.generate(GenerateRequest(scenario="serve-test", count=6))
        metrics = await client.metrics()
        scenarios = await client.scenarios()
        with pytest.raises(ServeHTTPError) as unknown:
            await client.generate(GenerateRequest(scenario="nope", count=1))
        with pytest.raises(ServeHTTPError) as bad_path:
            await client.get_json("/nope")

        await server.stop()
        closed_health = ServeClient(port=server.port)
        with pytest.raises(OSError):
            await closed_health.healthz()
        return health, window, metrics, scenarios, unknown.value, bad_path.value

    health, window, metrics, scenarios, unknown, bad_path = asyncio.run(scenario())
    assert health["status"] == "ok"
    assert window.ok
    reference = [
        p
        for p, s in zip(serve_env.reference.patterns, _reference_sources(serve_env))
        if s < 6
    ]
    _assert_same_patterns(window.patterns, reference)
    assert metrics["samples_generated"] == 6
    names = [entry["name"] for entry in scenarios["scenarios"]]
    assert "serve-test" in names
    assert all("servable" in entry["servable"] for entry in scenarios["scenarios"])
    assert unknown.status == 400
    assert bad_path.status == 404


def test_http_malformed_requests(serve_env):
    async def scenario():
        service = _service(serve_env)
        server = ServeServer(service, port=0)
        await server.start()
        results = []
        for body in (b"{not json", b'{"count": 3}', b'{"scenario": "serve-test", "count": 0}'):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(
                b"POST /generate HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
            status = (await reader.readline()).decode().split()[1]
            results.append(int(status))
            writer.close()
        await server.stop()
        return results

    assert asyncio.run(scenario()) == [400, 400, 400]


def test_http_backpressure_maps_to_429(serve_env):
    async def scenario():
        service = _service(serve_env, max_pending=1)
        server = ServeServer(service, port=0)
        # Worker deliberately not started: the first submit occupies the
        # single pending slot, the second must be rejected with 429.
        service.submit(GenerateRequest(scenario="serve-test", count=1))
        server._server = await asyncio.start_server(
            server._handle, server.host, 0
        )
        server.port = server._server.sockets[0].getsockname()[1]
        client = ServeClient(port=server.port)
        with pytest.raises(ServeHTTPError) as rejected:
            await client.generate(GenerateRequest(scenario="serve-test", count=1))
        await server.stop()
        return rejected.value

    assert asyncio.run(scenario()).status == 429


# --------------------------------------------------------------------------- #
# protocol codecs
# --------------------------------------------------------------------------- #
def test_pattern_json_round_trip_is_lossless(serve_env):
    for pattern in serve_env.reference.patterns:
        decoded = pattern_from_json(pattern_to_json(pattern))
        assert np.array_equal(decoded.topology, pattern.topology)
        assert np.array_equal(decoded.delta_x, pattern.delta_x)
        assert np.array_equal(decoded.delta_y, pattern.delta_y)
        assert decoded.topology.dtype == pattern.topology.dtype
        assert decoded.delta_x.dtype == pattern.delta_x.dtype


def test_generate_request_validation():
    request = GenerateRequest.from_dict(
        {"scenario": "smoke", "count": 3, "start": 1, "overrides": {"run": {"seed": 1}}}
    )
    assert GenerateRequest.from_dict(request.as_dict()) == request
    for bad in (
        "not a mapping",
        {},
        {"scenario": ""},
        {"scenario": "smoke", "count": 0},
        {"scenario": "smoke", "count": True},
        {"scenario": "smoke", "start": -1},
        {"scenario": "smoke", "overrides": []},
        {"scenario": "smoke", "bogus": 1},
    ):
        with pytest.raises(ProtocolError):
            GenerateRequest.from_dict(bad)


def test_event_payload_round_trips(serve_env):
    payload = ChunkPayload(
        start=3,
        end=7,
        patterns=serve_env.reference.patterns[:2],
        sources=[3, 5],
        clean=[True, False],
        cached=True,
    )
    decoded = ChunkPayload.from_dict(payload.as_dict())
    assert (decoded.start, decoded.end, decoded.sources, decoded.clean, decoded.cached) == (
        3, 7, [3, 5], [True, False], True,
    )
    _assert_same_patterns(decoded.patterns, payload.patterns)

    summary = RequestSummary(
        ok=False, scenario="s", start=0, end=4, num_patterns=2,
        cached_samples=1, live_chunks=3, elapsed_seconds=0.5, error="boom",
    )
    assert RequestSummary.from_dict(summary.as_dict()) == summary
    with pytest.raises(ProtocolError):
        ChunkPayload.from_dict({"kind": "summary"})
    with pytest.raises(ProtocolError):
        RequestSummary.from_dict({"kind": "chunk"})


def test_unknown_scenario_raises_scenario_error(serve_env):
    service = _service(serve_env)
    with pytest.raises(ScenarioError):
        service.submit(GenerateRequest(scenario="no-such-scenario", count=1))


def test_metrics_snapshot_shape():
    metrics = ServeMetrics()
    metrics.record_admitted(1)
    metrics.record_batch(8, 3)
    metrics.record_cached(4)
    metrics.record_finished(0.25, ok=True, queue_depth=0)
    metrics.record_rejected()
    snapshot = metrics.snapshot()
    assert snapshot["requests_admitted"] == 1
    assert snapshot["requests_rejected"] == 1
    assert snapshot["batch_occupancy_mean"] == 3.0
    assert snapshot["cache_hit_rate"] == pytest.approx(4 / 12)
    assert snapshot["request_latency_p50_seconds"] == pytest.approx(0.25)
    assert snapshot["request_latency_p95_seconds"] == pytest.approx(0.25)


# --------------------------------------------------------------------------- #
# persistent library backing (PR 9)
# --------------------------------------------------------------------------- #
def _run_window(env, root, count=12, start=None):
    async def scenario():
        service = _service(env, max_batch=6, library_root=root)
        await service.start()
        ticket = service.submit(
            GenerateRequest(scenario="serve-test", count=count, start=start)
        )
        window = await ticket.collect()
        snapshot = service.metrics.snapshot()
        await service.stop()
        return window, snapshot

    return asyncio.run(scenario())


def test_library_persists_generated_chunks(serve_env, tmp_path):
    root = tmp_path / "library"
    window, snapshot = _run_window(serve_env, root)
    assert window.ok
    assert snapshot["library_persisted_chunks"] >= 1
    assert snapshot["library_persisted_patterns"] == len(window.patterns)
    assert snapshot["library_restored_samples"] == 0

    from repro.library import PatternLibrary

    library = PatternLibrary(root)
    assert library.writers and library.writers[0].startswith("serve-")
    stored = library.load_patterns()
    _assert_same_patterns(stored, window.patterns)
    # the attribution needed for restart-restore rides along in the ledger
    for record in library.records_in_order():
        assert len(record.pattern_sources) == record.num_stored
        assert len(record.pattern_clean) == record.num_stored


def test_restart_restores_cache_from_library(serve_env, tmp_path):
    root = tmp_path / "library"
    first, first_snapshot = _run_window(serve_env, root)
    assert first_snapshot["library_persisted_chunks"] >= 1

    # A brand-new service over the same library answers the same window
    # entirely from the restored cache: no generation, no new persistence.
    second, second_snapshot = _run_window(serve_env, root, start=0)
    assert second.ok
    assert second.summary.cached_samples == 12
    assert second.summary.live_chunks == 0
    assert second_snapshot["library_restored_samples"] >= 12
    assert second_snapshot["library_persisted_chunks"] == 0
    assert second_snapshot["samples_generated"] == 0
    _assert_same_patterns(second.patterns, first.patterns)


def test_restored_stream_extends_past_restored_windows(serve_env, tmp_path):
    root = tmp_path / "library"
    _run_window(serve_env, root, count=6)
    # restart and ask beyond the persisted frontier: the stream resumes at
    # the right sample index, so the tail is bit-identical to the one-shot
    # reference run of the same scenario/seed.
    window, snapshot = _run_window(serve_env, root, count=12, start=0)
    assert window.ok
    assert window.summary.cached_samples >= 6
    assert snapshot["library_persisted_chunks"] >= 1
    # splicing restored + freshly generated samples must equal the one-shot
    # reference run, bit for bit (reference patterns are in source order, so
    # window [0, 12) is exactly its prefix)
    served = _in_source_order([window])
    _assert_same_patterns(served, serve_env.reference.patterns[: len(served)])


def test_serve_metrics_snapshot_has_library_counters():
    metrics = ServeMetrics()
    metrics.record_library_restored(5)
    metrics.record_library_persisted(3)
    metrics.record_library_persisted(2)
    snapshot = metrics.snapshot()
    assert snapshot["library_restored_samples"] == 5
    assert snapshot["library_persisted_chunks"] == 2
    assert snapshot["library_persisted_patterns"] == 5


# --------------------------------------------------------------------------- #
# fault tolerance (PR 10): supervision, deadlines, cancellation, degradation
# --------------------------------------------------------------------------- #
def test_supervised_service_parity(serve_env):
    """Child-process workers, no faults: same bits, no restarts."""

    async def scenario():
        service = _service(
            serve_env,
            supervised=True,
            max_batch=7,
            worker_config=WorkerConfig(heartbeat_interval=0.05, restart_backoff=0.01),
        )
        ticket_a = service.submit(GenerateRequest(scenario="serve-test", count=10))
        ticket_b = service.submit(GenerateRequest(scenario="serve-test", count=8))
        await service.start()
        windows = await asyncio.gather(ticket_a.collect(), ticket_b.collect())
        snapshot = service.metrics.snapshot()
        await service.stop()
        return windows, snapshot

    windows, snapshot = asyncio.run(scenario())
    assert all(window.ok for window in windows)
    _assert_same_patterns(_in_source_order(windows), serve_env.reference.patterns)
    assert snapshot["worker_restarts"] == 0
    assert snapshot["batch_occupancy_mean"] > 1.0


def test_deadline_exceeded_cancels_cleanly(serve_env):
    async def scenario():
        # Worker deliberately not started: the deadlines fire while queued.
        service = _service(serve_env, deadline_seconds=10.0)
        explicit = service.submit(
            GenerateRequest(scenario="serve-test", count=2, deadline=0.02)
        )
        window = await explicit.collect()
        pending_after = service.pending
        snapshot = service.metrics.snapshot()
        await service.start()
        await service.stop()
        return window, pending_after, snapshot

    window, pending_after, snapshot = asyncio.run(scenario())
    assert not window.ok
    assert window.summary.error_code == "deadline_exceeded"
    assert "deadline" in window.summary.error
    # the batch slot is released the moment the deadline fires
    assert pending_after == 0
    assert snapshot["requests_cancelled"] == 1
    assert snapshot["deadline_exceeded"] == 1


def test_submit_during_shutdown_gets_typed_error(serve_env):
    """The admission/shutdown race, both interleavings.

    A request admitted *before* ``stop()`` begins receives the typed
    ``service_stopped`` summary; a submit arriving *while* ``stop()`` is in
    flight is refused outright with :class:`ServiceClosedError`.
    """

    async def scenario():
        service = _service(serve_env)
        await service.start()
        admitted = service.submit(GenerateRequest(scenario="serve-test", count=4))
        stop_task = asyncio.get_running_loop().create_task(service.stop())
        # stop() has set the stopping flag but has not finished draining
        await asyncio.sleep(0)
        assert service.stopping
        with pytest.raises(ServiceClosedError):
            service.submit(GenerateRequest(scenario="serve-test", count=1))
        await stop_task
        return await admitted.collect()

    window = asyncio.run(scenario())
    assert not window.ok
    assert window.summary.error_code == "service_stopped"
    assert "stopped" in window.summary.error


def test_mid_stream_disconnect_cancels_and_releases_slot(serve_env):
    """A client hanging up mid-stream must not leak its batch slot."""

    async def scenario():
        service = _service(serve_env, max_batch=1, max_pending=1)
        server = ServeServer(service, port=0)
        await server.start()

        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        body = json.dumps({"scenario": "serve-test", "count": 18}).encode()
        writer.write(
            b"POST /generate HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        status = int((await reader.readline()).decode().split()[1])
        while (await reader.readline()) not in (b"\r\n", b"\n", b""):
            pass
        await reader.readline()  # first streamed bytes: generation underway
        writer.close()  # hang up mid-stream

        for _ in range(400):
            if service.pending == 0:
                break
            await asyncio.sleep(0.01)
        pending = service.pending
        snapshot = service.metrics.snapshot()

        # the slot is free and the cache is intact: the next request is
        # admitted and the already-generated prefix replays from cache
        follow_up = service.submit(
            GenerateRequest(scenario="serve-test", count=1, start=0)
        )
        window = await follow_up.collect()
        await server.stop()
        return status, pending, snapshot, window

    status, pending, snapshot, window = asyncio.run(scenario())
    assert status == 200
    assert pending == 0
    assert snapshot["requests_cancelled"] == 1
    assert snapshot["queue_depth"] == 0
    assert window.ok
    assert window.summary.cached_samples == 1


def test_healthz_split_liveness_vs_readiness(serve_env):
    async def scenario():
        service = _service(serve_env)
        server = ServeServer(service, port=0)
        await server.start()
        client = ServeClient(port=server.port)
        health = await client.healthz()
        live = await client.get_json("/healthz/live")
        ready = await client.get_json("/healthz/ready")
        # once stopping, readiness flips to 503 while liveness stays 200
        await service.stop()
        live_while_stopping = await client.get_json("/healthz/live")
        with pytest.raises(ServeHTTPError) as not_ready:
            await client.get_json("/healthz/ready")
        await server.stop()
        return health, live, ready, live_while_stopping, not_ready.value

    health, live, ready, live_while_stopping, not_ready = asyncio.run(scenario())
    assert health["status"] == "ok"
    assert health["live"] is True
    assert health["ready"] is True
    assert health["worker_restarts"] == 0
    assert live == {"live": True}
    assert ready["ready"] is True
    assert live_while_stopping == {"live": True}
    assert not_ready.status == 503


def test_http_429_carries_retry_after(serve_env):
    async def scenario():
        service = _service(serve_env, max_pending=1)
        server = ServeServer(service, port=0)
        service.submit(GenerateRequest(scenario="serve-test", count=1))
        server._server = await asyncio.start_server(server._handle, server.host, 0)
        server.port = server._server.sockets[0].getsockname()[1]
        client = ServeClient(port=server.port)
        with pytest.raises(ServeHTTPError) as rejected:
            await client.generate(GenerateRequest(scenario="serve-test", count=1))
        await server.stop()
        return rejected.value

    rejected = asyncio.run(scenario())
    assert rejected.status == 429
    assert rejected.retry_after is not None
    assert rejected.retry_after >= 1.0


def test_client_retries_transient_statuses():
    """429 then 503 then 200: an opted-in client retries through both."""

    responses = [
        (429, b'{"error": "busy"}', b"Retry-After: 0\r\n"),
        (503, b'{"error": "degraded"}', b"Retry-After: 0\r\n"),
        (200, b'{"ok": true}', b""),
    ]
    calls = []

    async def handle(reader, writer):
        while (await reader.readline()) not in (b"\r\n", b"\n", b""):
            pass
        status, body, extra = responses[min(len(calls), len(responses) - 1)]
        calls.append(status)
        writer.write(
            f"HTTP/1.1 {status} X\r\n".encode()
            + b"Content-Type: application/json\r\n"
            + extra
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        # fail-fast default: the 429 surfaces, with its Retry-After parsed
        with pytest.raises(ServeHTTPError) as fail_fast:
            await ServeClient(port=port).get_json("/healthz")
        calls.clear()
        client = ServeClient(
            port=port, max_retries=3, backoff_base=0.001, rng=random.Random(0)
        )
        result = await client.get_json("/healthz")
        server.close()
        await server.wait_closed()
        return fail_fast.value, result

    fail_fast, result = asyncio.run(scenario())
    assert fail_fast.status == 429
    assert fail_fast.retry_after == 0.0
    assert result == {"ok": True}
    assert calls == [429, 503, 200]


def test_client_does_not_retry_logic_errors():
    """A 400 is never transient: one call, one failure, regardless of budget."""
    calls = []

    async def handle(reader, writer):
        while (await reader.readline()) not in (b"\r\n", b"\n", b""):
            pass
        calls.append(400)
        body = b'{"error": "bad request"}'
        writer.write(
            b"HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        writer.close()

    async def scenario():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = ServeClient(port=port, max_retries=5, backoff_base=0.001)
        with pytest.raises(ServeHTTPError) as error:
            await client.get_json("/healthz")
        server.close()
        await server.wait_closed()
        return error.value

    assert asyncio.run(scenario()).status == 400
    assert calls == [400]


def test_service_from_args_wires_the_failure_knobs(serve_env):
    from repro.serve.server import build_parser, service_from_args

    args = build_parser().parse_args(
        [
            "--supervised",
            "--deadline", "5",
            "--retry-budget", "1",
            "--advance-timeout", "3",
            "--max-restarts", "4",
        ]
    )
    service = service_from_args(args, serve_env.registry)
    assert service.supervised is True
    assert service.deadline_seconds == 5.0
    assert service.retry_budget == 1
    assert service.worker_config.advance_timeout == 3.0
    assert service.worker_config.max_restarts == 4

    plain = service_from_args(build_parser().parse_args([]), serve_env.registry)
    assert plain.supervised is False
    assert plain.worker_config is None


def test_metrics_snapshot_has_failure_counters():
    metrics = ServeMetrics()
    metrics.record_cancelled()
    metrics.record_cancelled(deadline=True)
    metrics.record_generation_failure()
    metrics.record_generation_retry()
    metrics.record_worker_restart()
    metrics.record_breaker_state(True, tripped=True)
    snapshot = metrics.snapshot()
    assert snapshot["requests_cancelled"] == 2
    assert snapshot["deadline_exceeded"] == 1
    assert snapshot["generation_failures"] == 1
    assert snapshot["generation_retries"] == 1
    assert snapshot["worker_restarts"] == 1
    assert snapshot["breaker_trips"] == 1
    assert snapshot["breaker_open"] is True
    metrics.record_breaker_state(False)
    assert metrics.snapshot()["breaker_open"] is False
    assert metrics.snapshot()["breaker_trips"] == 1


def test_deadline_request_round_trips_and_validates():
    request = GenerateRequest.from_dict(
        {"scenario": "smoke", "count": 2, "deadline": 1.5}
    )
    assert request.deadline == 1.5
    assert GenerateRequest.from_dict(request.as_dict()) == request
    for bad in (
        {"scenario": "smoke", "deadline": 0},
        {"scenario": "smoke", "deadline": -1.0},
        {"scenario": "smoke", "deadline": True},
        {"scenario": "smoke", "deadline": "soon"},
    ):
        with pytest.raises(ProtocolError):
            GenerateRequest.from_dict(bad)


def test_summary_error_code_round_trips():
    summary = RequestSummary(
        ok=False, scenario="s", start=0, end=4,
        error="deadline of 2s exceeded", error_code="deadline_exceeded",
    )
    payload = summary.as_dict()
    assert payload["error_code"] == "deadline_exceeded"
    assert RequestSummary.from_dict(payload) == summary
    ok_payload = RequestSummary(ok=True, scenario="s", start=0, end=4).as_dict()
    assert "error_code" not in ok_payload

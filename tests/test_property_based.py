"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.diffusion import (
    DiscreteTransitionModel,
    binary_flip_probability,
    linear_schedule,
    one_hot,
    sample_categorical,
)
from repro.geometry import connected_components, has_bowtie
from repro.legalization import DesignRules, extract_constraints
from repro.legalization.solver import _round_preserving_sum
from repro.metrics import diversity_from_complexities, shannon_entropy, topology_complexity
from repro.squish import SquishPattern, canonicalize, fold, pad_to_size, unfold

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


binary_matrix = hnp.arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(2, 12), st.integers(2, 12)),
    elements=st.integers(0, 1),
)

square_binary_matrix_8 = hnp.arrays(
    dtype=np.uint8, shape=(8, 8), elements=st.integers(0, 1)
)


class TestSquishProperties:
    @SETTINGS
    @given(square_binary_matrix_8, st.sampled_from([1, 4, 16]))
    def test_fold_unfold_roundtrip(self, matrix, channels):
        assert np.array_equal(unfold(fold(matrix, channels)), matrix)

    @SETTINGS
    @given(square_binary_matrix_8, st.integers(9, 20))
    def test_padding_preserves_geometry(self, matrix, size):
        pattern = SquishPattern(matrix, np.full(8, 64, dtype=np.int64), np.full(8, 64, dtype=np.int64))
        padded = pad_to_size(pattern, size)
        assert padded.topology.shape == (size, size)
        assert padded.is_equivalent_to(pattern)
        assert padded.width == pattern.width
        assert padded.height == pattern.height

    @SETTINGS
    @given(square_binary_matrix_8)
    def test_canonicalize_is_idempotent_and_equivalent(self, matrix):
        pattern = SquishPattern(matrix, np.full(8, 10, dtype=np.int64), np.full(8, 10, dtype=np.int64))
        canonical = canonicalize(pattern)
        assert canonical.is_equivalent_to(pattern)
        again = canonicalize(canonical)
        assert np.array_equal(canonical.topology, again.topology)

    @SETTINGS
    @given(square_binary_matrix_8)
    def test_squish_layout_roundtrip(self, matrix):
        pattern = SquishPattern(matrix, np.full(8, 32, dtype=np.int64), np.full(8, 32, dtype=np.int64))
        rebuilt = SquishPattern.from_layout(pattern.to_layout())
        assert rebuilt.is_equivalent_to(pattern)

    @SETTINGS
    @given(square_binary_matrix_8)
    def test_complexity_bounded_by_matrix_size(self, matrix):
        cx, cy = topology_complexity(matrix)
        assert 0 <= cx < matrix.shape[1]
        assert 0 <= cy < matrix.shape[0]


class TestGridProperties:
    @SETTINGS
    @given(binary_matrix)
    def test_component_count_bounds(self, matrix):
        _, count = connected_components(matrix)
        assert 0 <= count <= int(matrix.sum())

    @SETTINGS
    @given(binary_matrix)
    def test_bowtie_invariant_under_transpose(self, matrix):
        assert has_bowtie(matrix) == has_bowtie(matrix.T)

    @SETTINGS
    @given(binary_matrix)
    def test_constraint_extraction_totals(self, matrix):
        constraints = extract_constraints(matrix, width_min=30, space_min=30)
        # every polygon cell count is positive and cells are unique
        total_cells = sum(len(cells) for cells in constraints.polygon_cells)
        assert total_cells == int(matrix.sum())
        for constraint in constraints.all_interval_constraints:
            assert 0 <= constraint.start <= constraint.end


class TestTransitionProperties:
    @SETTINGS
    @given(st.integers(2, 64), st.integers(0, 1))
    def test_cumulative_matrix_matches_closed_form(self, steps, state):
        schedule = linear_schedule(steps, 0.01, 0.5)
        model = DiscreteTransitionModel(schedule)
        for k in (0, steps // 2, steps):
            expected = binary_flip_probability(schedule, k)
            assert model.q_bar_matrix(k)[state, 1 - state] == pytest.approx(expected, abs=1e-12)

    @SETTINGS
    @given(
        hnp.arrays(dtype=np.int64, shape=(3, 5), elements=st.integers(0, 1)),
        st.integers(1, 16),
    )
    def test_posterior_rows_are_distributions(self, x0, k):
        model = DiscreteTransitionModel(linear_schedule(16, 0.02, 0.5))
        xk = model.sample_xk(x0, k, rng=0)
        post = model.posterior_probs(xk, x0, k)
        assert (post >= -1e-12).all()
        np.testing.assert_allclose(post.sum(axis=-1), np.ones_like(post.sum(axis=-1)), rtol=1e-9)

    @SETTINGS
    @given(hnp.arrays(dtype=np.int64, shape=(4, 4), elements=st.integers(0, 1)))
    def test_one_hot_inverse(self, states):
        encoded = one_hot(states, 2)
        np.testing.assert_array_equal(encoded.argmax(axis=-1), states)
        np.testing.assert_allclose(encoded.sum(axis=-1), np.ones_like(states, dtype=np.float32))

    @SETTINGS
    @given(st.integers(0, 2**31 - 1))
    def test_sample_categorical_outputs_valid_states(self, seed):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(4), size=(6,))
        samples = sample_categorical(probs, rng)
        assert ((samples >= 0) & (samples < 4)).all()


class TestMetricProperties:
    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=60))
    def test_diversity_bounds(self, complexities):
        diversity = diversity_from_complexities(complexities)
        distinct = len(set(complexities))
        assert 0.0 <= diversity <= np.log2(distinct) + 1e-9

    @SETTINGS
    @given(hnp.arrays(dtype=np.float64, shape=(8,), elements=st.floats(0.0, 10.0)))
    def test_entropy_non_negative(self, weights):
        assert shannon_entropy(weights) >= 0.0

    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=30))
    def test_diversity_invariant_to_duplication(self, complexities):
        # Duplicating the whole library does not change the distribution.
        assert diversity_from_complexities(complexities) == pytest.approx(
            diversity_from_complexities(complexities * 2)
        )


class TestSolverHelperProperties:
    @SETTINGS
    @given(
        hnp.arrays(dtype=np.float64, shape=st.integers(2, 16), elements=st.floats(0.1, 500.0)),
        st.integers(100, 4000),
    )
    def test_round_preserving_sum(self, values, total):
        if values.sum() <= 0:
            return
        scaled = values / values.sum() * total
        rounded = _round_preserving_sum(scaled, total)
        assert rounded.sum() == total
        assert (rounded >= 1).all()

    @SETTINGS
    @given(st.integers(10, 500), st.integers(10, 500), st.integers(100, 5000))
    def test_design_rules_validation_property(self, space, width, size):
        rules = DesignRules(space_min=space, width_min=width, pattern_size=size)
        assert rules.space_min == space
        assert rules.with_space_min(space + 1).space_min == space + 1

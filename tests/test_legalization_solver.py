"""Unit tests for the nonlinear legalisation solver and the Legalizer API."""

import numpy as np
import pytest

from repro.drc import DesignRuleChecker
from repro.legalization import (
    DesignRules,
    Legalizer,
    SolverOptions,
    extract_constraints,
    polygon_area,
    solve_geometry,
    solve_topology,
)
from repro.legalization.solver import _round_preserving_sum


@pytest.fixture(scope="module")
def rules():
    return DesignRules()


def _reference_round_preserving_sum(values: np.ndarray, total: int) -> np.ndarray:
    """The original per-unit loop, kept as the oracle for the vectorized form."""
    floors = np.floor(values).astype(np.int64)
    floors = np.maximum(floors, 1)
    deficit = int(total - floors.sum())
    if deficit > 0:
        remainders = values - np.floor(values)
        order = np.argsort(-remainders)
        for i in range(deficit):
            floors[order[i % len(order)]] += 1
    elif deficit < 0:
        order = np.argsort(-floors)
        i = 0
        while deficit < 0:
            idx = order[i % len(order)]
            if floors[idx] > 1:
                floors[idx] -= 1
                deficit += 1
            i += 1
    return floors


class TestRounding:
    def test_sum_preserved(self):
        values = np.array([10.4, 20.7, 68.9])
        rounded = _round_preserving_sum(values, 100)
        assert rounded.sum() == 100
        assert (rounded >= 1).all()

    def test_sum_preserved_with_deficit(self):
        values = np.array([0.2, 0.3, 99.4])
        rounded = _round_preserving_sum(values, 100)
        assert rounded.sum() == 100
        assert (rounded >= 1).all()

    def test_sum_preserved_when_overshooting(self):
        values = np.array([50.9, 50.9])
        rounded = _round_preserving_sum(values, 100)
        assert rounded.sum() == 100

    def test_vectorized_rounding_matches_reference_loop(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            n = int(rng.integers(1, 24))
            values = rng.uniform(0.01, 60.0, size=n)
            # Totals both above and below the floored sum exercise the
            # surplus and deficit redistribution paths.
            total = max(n, int(rng.integers(n, 4 * n * 30)))
            np.testing.assert_array_equal(
                _round_preserving_sum(values.copy(), total),
                _reference_round_preserving_sum(values.copy(), total),
            )

    def test_deficit_larger_than_length_wraps_the_order(self):
        # deficit = 97 over 3 entries: every entry gains 32 and the largest
        # remainder gains one more, exactly like the cycling loop.
        values = np.array([1.9, 1.2, 0.5])
        rounded = _round_preserving_sum(values, 100)
        np.testing.assert_array_equal(
            rounded, _reference_round_preserving_sum(values, 100)
        )
        assert rounded.sum() == 100


class TestPolygonArea:
    def test_vectorized_area_matches_per_cell_sum(self):
        rng = np.random.default_rng(12)
        for _ in range(50):
            rows, cols = int(rng.integers(1, 10)), int(rng.integers(1, 10))
            n_cells = int(rng.integers(1, rows * cols + 1))
            cells = [
                (int(r), int(c))
                for r, c in zip(rng.integers(0, rows, n_cells), rng.integers(0, cols, n_cells))
            ]
            dx = rng.integers(1, 300, size=cols).astype(np.int64)
            dy = rng.integers(1, 300, size=rows).astype(np.int64)
            expected = float(sum(int(dx[c]) * int(dy[r]) for r, c in cells))
            assert polygon_area(cells, dx, dy) == expected

    def test_empty_cell_list_has_zero_area(self):
        assert polygon_area([], np.array([1, 2]), np.array([3, 4])) == 0.0


class TestSolveTopology:
    def test_two_shape_topology_is_solvable(self, rules, two_shape_topology):
        solution = solve_topology(two_shape_topology, rules, rng=0)
        assert solution.success
        assert solution.delta_x.sum() == rules.pattern_size
        assert solution.delta_y.sum() == rules.pattern_size

    def test_solution_satisfies_every_constraint(self, rules, two_shape_topology):
        solution = solve_topology(two_shape_topology, rules, rng=1)
        constraints = extract_constraints(two_shape_topology, rules.width_min, rules.space_min)
        for constraint in constraints.all_interval_constraints:
            delta = solution.delta_x if constraint.axis == "x" else solution.delta_y
            assert delta[constraint.indices()].sum() >= constraint.minimum
        for cells in constraints.polygon_cells:
            area = polygon_area(cells, solution.delta_x, solution.delta_y)
            assert rules.area_min <= area <= rules.area_max

    def test_empty_topology_trivially_solvable(self, rules):
        solution = solve_topology(np.zeros((8, 8), dtype=np.uint8), rules, rng=0)
        assert solution.success

    def test_full_topology_infeasible_under_small_area_max(self):
        rules = DesignRules(area_max=10_000)
        solution = solve_topology(np.ones((4, 4), dtype=np.uint8), rules, rng=0)
        assert not solution.success
        assert solution.delta_x is None

    def test_target_vector_length_validated(self, rules, two_shape_topology):
        constraints = extract_constraints(two_shape_topology, rules.width_min, rules.space_min)
        with pytest.raises(ValueError):
            solve_geometry(constraints, rules, target_x=np.ones(3), target_y=np.ones(8), rng=0)

    def test_existing_target_accelerates_or_matches(self, rules, two_shape_topology):
        # Warm start from an already feasible geometry: uniform intervals.
        uniform = np.full(8, rules.pattern_size // 8, dtype=np.float64)
        warm = solve_topology(two_shape_topology, rules, target_x=uniform, target_y=uniform, rng=0)
        assert warm.success

    def test_different_seeds_give_different_geometries(self, rules, two_shape_topology):
        a = solve_topology(two_shape_topology, rules, rng=1)
        b = solve_topology(two_shape_topology, rules, rng=2)
        assert a.success and b.success
        assert not np.array_equal(a.delta_x, b.delta_x)


class TestLegalizer:
    def test_single_solution_mode(self, rules, two_shape_topology):
        legalizer = Legalizer(rules)
        result = legalizer.legalize_topology(two_shape_topology, num_solutions=1, rng=0)
        assert result.solved
        assert len(result.patterns) == 1

    def test_multi_solution_mode_produces_distinct_patterns(self, rules, two_shape_topology):
        legalizer = Legalizer(rules)
        result = legalizer.legalize_topology(two_shape_topology, num_solutions=4, rng=0)
        assert len(result.patterns) == 4
        signatures = {tuple(p.delta_x.tolist()) for p in result.patterns}
        assert len(signatures) > 1

    def test_all_solutions_are_drc_clean(self, rules, two_shape_topology):
        legalizer = Legalizer(rules)
        checker = DesignRuleChecker(rules)
        result = legalizer.legalize_topology(two_shape_topology, num_solutions=3, rng=0)
        assert all(checker.is_legal(p) for p in result.patterns)

    def test_reference_geometries_are_used_when_shapes_match(self, rules, two_shape_topology):
        uniform = np.full(8, rules.pattern_size // 8, dtype=np.int64)
        legalizer = Legalizer(rules, reference_geometries=[(uniform, uniform)])
        result = legalizer.legalize_topology(two_shape_topology, num_solutions=1, rng=0)
        assert result.solved

    def test_stats_accumulate(self, rules, two_shape_topology):
        legalizer = Legalizer(rules)
        legalizer.legalize_batch([two_shape_topology, two_shape_topology], rng=0)
        assert legalizer.stats.attempted == 2
        assert legalizer.stats.solved == 2
        assert legalizer.stats.solutions == 2
        assert legalizer.stats.average_time_per_solution > 0
        assert legalizer.stats.success_rate == 1.0

    def test_unsolvable_topology_reported_not_raised(self):
        rules = DesignRules(area_max=10_000)
        legalizer = Legalizer(rules)
        result = legalizer.legalize_topology(np.ones((4, 4), dtype=np.uint8), rng=0)
        assert not result.solved
        assert legalizer.stats.failed == 1

    def test_legal_patterns_flattens_batches(self, rules, two_shape_topology):
        legalizer = Legalizer(rules)
        patterns = legalizer.legal_patterns([two_shape_topology] * 2, num_solutions=2, rng=0)
        assert len(patterns) == 4

    def test_solver_options_respected(self, rules, two_shape_topology):
        options = SolverOptions(max_attempts=1, max_iterations=50)
        legalizer = Legalizer(rules, options=options)
        result = legalizer.legalize_topology(two_shape_topology, rng=0)
        assert result.solved
        assert result.solutions[0].attempts == 1

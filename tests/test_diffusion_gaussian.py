"""Tests for the continuous (Gaussian) diffusion ablation baseline."""

import numpy as np
import pytest

from repro.diffusion import (
    GaussianDiffusionConfig,
    GaussianTopologyDiffusion,
    gaussian_unet_config,
)
from repro.nn import UNet


def tiny_gaussian_model(num_steps=8):
    cfg = gaussian_unet_config(
        in_channels=4,
        image_size=8,
        model_channels=8,
        channel_mult=(1, 2),
        num_res_blocks=1,
        attention_resolutions=(),
        dropout=0.0,
        seed=0,
    )
    return GaussianTopologyDiffusion(UNet(cfg), GaussianDiffusionConfig(num_steps=num_steps))


class TestGaussianDiffusion:
    def test_requires_single_class_unet(self):
        from repro.nn import UNetConfig

        bad = UNet(
            UNetConfig(
                in_channels=4, num_classes=2, image_size=8, model_channels=8,
                channel_mult=(1, 2), num_res_blocks=1, attention_resolutions=(), dropout=0.0,
            )
        )
        with pytest.raises(ValueError):
            GaussianTopologyDiffusion(bad)

    def test_loss_is_finite(self):
        model = tiny_gaussian_model()
        x0 = np.random.default_rng(0).integers(0, 2, size=(4, 4, 8, 8))
        loss, metrics = model.loss(x0, rng=0)
        assert np.isfinite(loss.item())
        assert metrics["loss"] >= 0.0

    def test_fit_runs_and_returns_history(self):
        model = tiny_gaussian_model()
        x0 = np.random.default_rng(0).integers(0, 2, size=(8, 4, 8, 8))
        history = model.fit(x0, iterations=3, batch_size=4, rng=0)
        assert len(history) == 3

    def test_sample_is_binary(self):
        model = tiny_gaussian_model(num_steps=4)
        samples = model.sample(2, rng=0)
        assert samples.shape == (2, 4, 8, 8)
        assert set(np.unique(samples)).issubset({0, 1})

    def test_alpha_bars_monotonically_decreasing(self):
        model = tiny_gaussian_model(num_steps=16)
        assert (np.diff(model.alpha_bars) < 0).all()

    def test_continuous_mapping_roundtrip(self):
        x = np.array([[0, 1], [1, 0]])
        cont = GaussianTopologyDiffusion._to_continuous(x)
        np.testing.assert_array_equal(cont, [[-1.0, 1.0], [1.0, -1.0]])
        np.testing.assert_array_equal(GaussianTopologyDiffusion._to_binary(cont), x)

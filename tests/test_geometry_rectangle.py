"""Unit tests for repro.geometry.rectangle."""

import pytest

from repro.geometry import Rect, rect_min_distance


class TestRectConstruction:
    def test_basic_properties(self):
        rect = Rect(0, 0, 10, 20)
        assert rect.width == 10
        assert rect.height == 20
        assert rect.area == 200
        assert rect.center == (5.0, 10.0)

    def test_degenerate_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 5, 10)

    def test_degenerate_zero_height_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 3, 10, 3)

    def test_rect_is_hashable_and_comparable(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert len({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}) == 1


class TestRectRelations:
    def test_translation(self):
        rect = Rect(0, 0, 4, 4).translated(10, -2)
        assert (rect.x1, rect.y1, rect.x2, rect.y2) == (10, -2, 14, 2)

    def test_intersects_overlap(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(5, 5, 15, 15))

    def test_intersects_requires_positive_area(self):
        # Sharing only an edge is not an overlap.
        assert not Rect(0, 0, 10, 10).intersects(Rect(10, 0, 20, 10))

    def test_touches_edge(self):
        assert Rect(0, 0, 10, 10).touches(Rect(10, 0, 20, 10))

    def test_touches_corner_only_is_false(self):
        assert not Rect(0, 0, 10, 10).touches(Rect(10, 10, 20, 20))

    def test_touches_disjoint_is_false(self):
        assert not Rect(0, 0, 10, 10).touches(Rect(20, 20, 30, 30))

    def test_intersection_region(self):
        inter = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 15, 15))
        assert inter == Rect(5, 5, 10, 10)

    def test_intersection_none_when_disjoint(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 6, 6)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 2, 2).union_bbox(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_contains_point_boundary(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains_point(0, 0)
        assert rect.contains_point(10, 10)
        assert not rect.contains_point(10.1, 5)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 8, 8))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(2, 2, 12, 8))

    def test_clipped_inside_window(self):
        assert Rect(-5, -5, 5, 5).clipped(Rect(0, 0, 10, 10)) == Rect(0, 0, 5, 5)

    def test_clipped_outside_window(self):
        assert Rect(-5, -5, -1, -1).clipped(Rect(0, 0, 10, 10)) is None


class TestRectDistance:
    def test_distance_zero_when_touching(self):
        assert rect_min_distance(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10)) == 0.0

    def test_distance_axis_aligned_gap(self):
        assert rect_min_distance(Rect(0, 0, 10, 10), Rect(15, 0, 20, 10)) == 5.0

    def test_distance_diagonal_gap(self):
        dist = rect_min_distance(Rect(0, 0, 10, 10), Rect(13, 14, 20, 20))
        assert dist == pytest.approx(5.0)

"""Unit tests for the U-Net backbone."""

import numpy as np
import pytest

from repro.nn import Tensor, UNet, UNetConfig
from repro.nn import functional as F
from repro.nn.unet import ResidualBlock, SelfAttention2d, TimestepEmbedding, _norm_groups


def tiny_config(**overrides) -> UNetConfig:
    base = dict(
        in_channels=4,
        num_classes=2,
        image_size=8,
        model_channels=8,
        channel_mult=(1, 2),
        num_res_blocks=1,
        attention_resolutions=(4,),
        dropout=0.0,
        seed=0,
    )
    base.update(overrides)
    return UNetConfig(**base)


def one_hot_input(x, num_classes=2):
    n, c, h, w = x.shape
    encoded = np.zeros((n, c, num_classes, h, w), dtype=np.float32)
    for cls in range(num_classes):
        encoded[:, :, cls][x == cls] = 1.0
    return Tensor(encoded.reshape(n, c * num_classes, h, w))


class TestHelpers:
    def test_norm_groups_divides(self):
        assert _norm_groups(16) == 8
        assert _norm_groups(12) == 4
        assert _norm_groups(7) == 1

    def test_timestep_embedding_shape(self):
        emb = TimestepEmbedding(8, 32, np.random.default_rng(0))
        out = emb(np.array([1, 5, 9]))
        assert out.shape == (3, 32)

    def test_residual_block_preserves_spatial_shape(self):
        rng = np.random.default_rng(0)
        block = ResidualBlock(4, 8, 16, 0.0, rng)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)).astype(np.float32))
        t = Tensor(rng.normal(size=(2, 16)).astype(np.float32))
        assert block(x, t).shape == (2, 8, 6, 6)

    def test_attention_preserves_shape(self):
        rng = np.random.default_rng(0)
        attn = SelfAttention2d(8, rng)
        x = Tensor(rng.normal(size=(2, 8, 4, 4)).astype(np.float32))
        assert attn(x).shape == (2, 8, 4, 4)


class TestUNetConfig:
    def test_paper_defaults(self):
        cfg = UNetConfig(in_channels=16, image_size=32, paper_defaults=True)
        assert cfg.model_channels == 128
        assert cfg.channel_mult == (1, 2, 2, 2)

    def test_rejects_indivisible_image_size(self):
        with pytest.raises(ValueError):
            UNetConfig(in_channels=4, image_size=6, channel_mult=(1, 2, 2))


class TestUNetForwardBackward:
    def test_output_shape(self):
        net = UNet(tiny_config())
        x = np.random.default_rng(0).integers(0, 2, size=(2, 4, 8, 8))
        out = net(one_hot_input(x), np.array([1, 3]))
        assert out.shape == (2, 4, 2, 8, 8)

    def test_output_depends_on_timestep(self):
        net = UNet(tiny_config())
        net.eval()
        x = np.random.default_rng(0).integers(0, 2, size=(1, 4, 8, 8))
        out_a = net(one_hot_input(x), np.array([1])).numpy()
        out_b = net(one_hot_input(x), np.array([7])).numpy()
        assert not np.allclose(out_a, out_b)

    def test_gradients_reach_every_parameter(self):
        net = UNet(tiny_config())
        x = np.random.default_rng(0).integers(0, 2, size=(2, 4, 8, 8))
        logits = net(one_hot_input(x), np.array([2, 5]))
        target = np.zeros(logits.shape, dtype=np.float32)
        target[:, :, 0] = 1.0
        loss = F.cross_entropy_with_logits(logits, target, axis=2)
        loss.backward()
        missing = [name for name, p in net.named_parameters() if p.grad is None]
        assert missing == []

    def test_three_level_configuration_runs(self):
        net = UNet(tiny_config(image_size=16, channel_mult=(1, 2, 2), in_channels=1))
        x = np.random.default_rng(0).integers(0, 2, size=(1, 1, 16, 16))
        out = net(one_hot_input(x), np.array([1]))
        assert out.shape == (1, 1, 2, 16, 16)

    def test_deterministic_given_seed(self):
        cfg = tiny_config()
        net_a, net_b = UNet(cfg), UNet(cfg)
        x = np.random.default_rng(1).integers(0, 2, size=(1, 4, 8, 8))
        out_a = net_a(one_hot_input(x), np.array([3])).numpy()
        out_b = net_b(one_hot_input(x), np.array([3])).numpy()
        np.testing.assert_allclose(out_a, out_b)

    def test_parameter_count_grows_with_width(self):
        small = UNet(tiny_config(model_channels=8)).num_parameters()
        large = UNet(tiny_config(model_channels=16)).num_parameters()
        assert large > small * 2

"""Tests for the baseline topology generators (Table I competitors)."""

import numpy as np
import pytest

from repro.baselines import (
    CAEConfig,
    CAEGenerator,
    LayouTransformerConfig,
    LayouTransformerGenerator,
    LegalGANConfig,
    LegalGANPostProcessor,
    LegalizedGenerator,
    RuleBasedGenerator,
    VCAEConfig,
    VCAEGenerator,
    matrix_to_tokens,
    tokens_to_matrix,
    validate_matrices,
)


@pytest.fixture(scope="module")
def train_matrices(tiny_dataset):
    return tiny_dataset.topology_matrices("train")


class TestValidation:
    def test_validate_matrices_accepts_binary_stack(self, train_matrices):
        out = validate_matrices(train_matrices)
        assert out.dtype == np.uint8

    def test_validate_matrices_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            validate_matrices(np.zeros((4, 4)))

    def test_validate_matrices_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_matrices(np.zeros((0, 4, 4)))

    def test_validate_matrices_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_matrices(np.full((2, 4, 4), 2))


class TestRuleBased:
    def test_generate_shape_and_binary(self, train_matrices):
        generator = RuleBasedGenerator().fit(train_matrices, rng=0)
        out = generator.generate(5, rng=1)
        assert out.shape == (5,) + train_matrices.shape[1:]
        assert set(np.unique(out)).issubset({0, 1})

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RuleBasedGenerator().generate(2)

    def test_requires_even_square_matrices(self):
        with pytest.raises(ValueError):
            RuleBasedGenerator().fit(np.zeros((2, 5, 5), dtype=np.uint8))

    def test_output_reuses_training_quadrants(self, train_matrices):
        generator = RuleBasedGenerator(units_per_quadrant=8).fit(train_matrices, rng=0)
        out = generator.generate(3, rng=0)
        half = train_matrices.shape[1] // 2
        # every generated quadrant must exist in the unit library
        units = {u.tobytes() for u in generator._units}
        assert out[0, :half, :half].tobytes() in units


class TestCAEAndVCAE:
    def test_cae_generate_shapes(self, train_matrices):
        generator = CAEGenerator(CAEConfig(iterations=15, base_channels=8, latent_dim=8))
        out = generator.fit(train_matrices, rng=0).generate(4, rng=1)
        assert out.shape == (4,) + train_matrices.shape[1:]
        assert set(np.unique(out)).issubset({0, 1})

    def test_cae_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CAEGenerator().generate(1)

    def test_cae_reconstruction_improves_with_training(self, train_matrices):
        short = CAEGenerator(CAEConfig(iterations=2, base_channels=8, latent_dim=8, seed=0))
        long = CAEGenerator(CAEConfig(iterations=80, base_channels=8, latent_dim=8, seed=0))
        short.fit(train_matrices, rng=0)
        long.fit(train_matrices, rng=0)

        def reconstruction_error(generator):
            from repro.nn import Tensor

            x = train_matrices[:8, None].astype(np.float32)
            recon = generator.decoder(generator.encoder(Tensor(x))).numpy()
            return float(((recon - x) ** 2).mean())

        assert reconstruction_error(long) < reconstruction_error(short)

    def test_cae_requires_size_divisible_by_four(self):
        with pytest.raises(ValueError):
            CAEGenerator(CAEConfig(iterations=1)).fit(np.zeros((4, 6, 6), dtype=np.uint8))

    def test_vcae_generate_shapes(self, train_matrices):
        generator = VCAEGenerator(VCAEConfig(iterations=15, base_channels=8, latent_dim=8))
        out = generator.fit(train_matrices, rng=0).generate(4, rng=1)
        assert out.shape == (4,) + train_matrices.shape[1:]
        assert set(np.unique(out)).issubset({0, 1})

    def test_vcae_decoder_output_varies_with_latent(self, train_matrices):
        from repro.nn import Tensor

        generator = VCAEGenerator(VCAEConfig(iterations=15, base_channels=8, latent_dim=8))
        generator.fit(train_matrices, rng=0)
        rng = np.random.default_rng(0)
        z_a = rng.standard_normal((1, 8)).astype(np.float32)
        z_b = rng.standard_normal((1, 8)).astype(np.float32)
        probs_a = generator.decoder(Tensor(z_a)).numpy()
        probs_b = generator.decoder(Tensor(z_b)).numpy()
        assert not np.allclose(probs_a, probs_b)

    def test_vcae_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            VCAEGenerator().generate(1)


class TestLegalGAN:
    def test_postprocessor_learns_to_denoise(self, train_matrices):
        post = LegalGANPostProcessor(LegalGANConfig(iterations=120, base_channels=8, corruption_rate=0.08))
        post.fit(train_matrices, rng=0)
        rng = np.random.default_rng(0)
        clean = train_matrices[:8]
        flips = (rng.random(clean.shape) < 0.08).astype(np.uint8)
        corrupted = np.abs(clean.astype(np.int64) - flips).astype(np.uint8)
        repaired = post.legalize(corrupted)
        err_before = float((corrupted != clean).mean())
        err_after = float((repaired != clean).mean())
        assert err_after < err_before

    def test_legalize_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LegalGANPostProcessor().legalize(np.zeros((1, 8, 8), dtype=np.uint8))

    def test_legalized_generator_composes(self, train_matrices):
        combo = LegalizedGenerator(
            CAEGenerator(CAEConfig(iterations=10, base_channels=8, latent_dim=8)),
            LegalGANPostProcessor(LegalGANConfig(iterations=10, base_channels=8)),
        )
        combo.fit(train_matrices, rng=0)
        out = combo.generate(3, rng=0)
        assert out.shape == (3,) + train_matrices.shape[1:]
        assert combo.name == "CAE+LegalGAN"


class TestLayouTransformer:
    def test_tokenisation_roundtrip(self):
        matrix = np.zeros((8, 8), dtype=np.uint8)
        matrix[1, 2:5] = 1
        matrix[4:6, 6] = 1
        tokens = matrix_to_tokens(matrix, 8)
        assert tokens[0] == 8 and tokens[-1] == 9
        np.testing.assert_array_equal(tokens_to_matrix(tokens, 8), matrix)

    def test_tokens_to_matrix_skips_malformed_triples(self):
        # row index out of range and reversed run are both ignored
        tokens = [8, 20, 1, 2, 3, 5, 2, 9]
        matrix = tokens_to_matrix(tokens, 8)
        assert matrix.sum() == 0

    def test_fit_and_generate_shapes(self, train_matrices):
        generator = LayouTransformerGenerator(
            LayouTransformerConfig(iterations=10, dim=16, layers=1, max_runs=10)
        )
        out = generator.fit(train_matrices, rng=0).generate(2, rng=1)
        assert out.shape == (2,) + train_matrices.shape[1:]
        assert set(np.unique(out)).issubset({0, 1})

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LayouTransformerGenerator().generate(1)

    def test_training_reduces_sequence_loss(self, train_matrices):
        from repro.nn import functional as F

        config = LayouTransformerConfig(iterations=60, dim=16, layers=1, max_runs=10, seed=0)
        generator = LayouTransformerGenerator(config)
        generator.fit(train_matrices, rng=0)
        tokens = generator._encode_batch(train_matrices[:8])
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        logits = generator.model(inputs)
        one_hot_targets = np.zeros(logits.shape, dtype=np.float32)
        np.put_along_axis(one_hot_targets, targets[..., None], 1.0, axis=-1)
        trained_loss = F.cross_entropy_with_logits(logits, one_hot_targets, axis=-1).item()
        vocab = train_matrices.shape[1] + 2
        assert trained_loss < np.log(vocab)

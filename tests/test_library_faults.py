"""Crash-consistency tests: kill the library at every fault point, resume.

The library's durable writes call :func:`repro.library.fault_point` with a
stable label before executing (``append:shard``, ``manifest.json:replace``,
...).  These suites first record the full label sequence of an operation,
then replay the identical operation once per point with a hook that raises
:class:`InjectedCrash` there — simulating a ``kill -9`` between any two
filesystem steps — and assert the reopened library resumes losslessly:

* **v1 appends** (satellite: the PR 3 atomic manifest write): the recovered
  library's ``manifest.json`` is byte-identical to a never-crashed run's.
* **v2 appends**: every pattern lands exactly once, the ledger seq stays
  gap-free, and the dedup decisions match the serial run.
* **compaction**: the pattern multiset (in commit order) survives a crash
  at any point of the rewrite, including mid-migration of a v1 library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.library import (
    InjectedCrash,
    PatternLibrary,
    install_fault_hook,
    pattern_hash,
    record_fault_points,
)
from repro.library import ChunkRecord
from repro.squish import SquishPattern


def make_pattern(fill: int, size: int = 4, step: int = 32) -> SquishPattern:
    topo = np.zeros((size, size), dtype=np.uint8)
    topo[1 : 1 + (fill % (size - 1)) + 0, 1:3] = 1
    topo[0, fill % size] = 1
    delta = np.full(size, step, dtype=np.int64)
    return SquishPattern(topo, delta, delta + fill)


def make_record(chunk: int, patterns: list[SquishPattern], **overrides) -> ChunkRecord:
    defaults = dict(
        chunk=chunk,
        start=chunk * 4,
        num_sampled=4,
        num_kept=len(patterns),
        num_rejected=4 - min(4, len(patterns)),
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]] if patterns else [],
    )
    defaults.update(overrides)
    return ChunkRecord(**defaults)


class crash_at:
    """Fault hook raising :class:`InjectedCrash` at the n-th point hit."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.seen = 0

    def __call__(self, label: str) -> None:
        if self.seen == self.index:
            raise InjectedCrash(label, self.index)
        self.seen += 1


@pytest.fixture(autouse=True)
def _clear_hook():
    yield
    install_fault_hook(None)


CHUNK_FILLS = [[1, 2], [2, 3]]  # fill 2 repeats: exercises the dedup path


def run_appends(root, writer, dedup=True):
    """Append CHUNK_FILLS through one (re)opened library, skipping done chunks."""
    library = PatternLibrary(root, dedup=dedup, writer=writer)
    done = library.bind({"seed": 7}, resume=True)
    completed = {record.chunk for record in done}
    for chunk, fills in enumerate(CHUNK_FILLS):
        if chunk in completed:
            continue
        patterns = [make_pattern(f) for f in fills]
        library.append_chunk(make_record(chunk, patterns), patterns)
    return library


def enumerate_points(tmp_path, name, writer):
    with record_fault_points() as points:
        run_appends(tmp_path / name, writer)
    return list(points)


def assert_matches_serial(recovered: PatternLibrary, serial: PatternLibrary):
    assert [pattern_hash(p) for p in recovered.load_patterns()] == [
        pattern_hash(p) for p in serial.load_patterns()
    ]
    assert recovered.num_patterns == serial.num_patterns
    assert recovered.num_unique_topologies == serial.num_unique_topologies
    assert sum(r.duplicates_skipped for r in recovered.records_in_order()) == sum(
        r.duplicates_skipped for r in serial.records_in_order()
    )


class TestV1AppendCrashes:
    """Satellite: the v1 atomic manifest write, killed around every rename."""

    def test_covers_the_manifest_write_points(self, tmp_path):
        points = enumerate_points(tmp_path, "probe", None)
        assert "manifest.json:tmp-write" in points
        assert "manifest.json:replace" in points
        assert any(p.endswith(".npz:tmp-write") for p in points)
        assert any(p.endswith(".npz:replace") for p in points)

    def test_every_kill_point_resumes_to_identical_manifest(self, tmp_path):
        serial = run_appends(tmp_path / "serial", None)
        reference = (serial.root / "manifest.json").read_bytes()
        points = enumerate_points(tmp_path, "probe", None)
        assert points
        for index, label in enumerate(points):
            root = tmp_path / f"kill-{index}"
            install_fault_hook(crash_at(index))
            with pytest.raises(InjectedCrash):
                run_appends(root, None)
            install_fault_hook(None)
            recovered = run_appends(root, None)
            assert_matches_serial(recovered, serial)
            assert (root / "manifest.json").read_bytes() == reference, label
            # no temp-file litter survives recovery
            assert not list(root.glob("**/*.tmp")), label


class TestV2AppendCrashes:
    def test_covers_the_durability_points(self, tmp_path):
        points = enumerate_points(tmp_path, "probe", "alpha")
        assert "append:shard" in points
        assert "append:sidecar" in points
        assert "append:ledger" in points
        assert "alpha.json:replace" in points

    def test_every_kill_point_resumes_losslessly(self, tmp_path):
        serial = run_appends(tmp_path / "serial", "alpha")
        points = enumerate_points(tmp_path, "probe", "alpha")
        assert len(points) >= 8
        for index, label in enumerate(points):
            root = tmp_path / f"kill-{index}"
            install_fault_hook(crash_at(index))
            with pytest.raises(InjectedCrash):
                run_appends(root, "alpha")
            install_fault_hook(None)
            recovered = run_appends(root, "alpha")
            assert_matches_serial(recovered, serial)
            assert [r.seq for r in recovered.records_in_order()] == [0, 1], label
            assert not list(root.glob("**/*.tmp")), label

    def test_crashed_writer_leaves_library_readable(self, tmp_path):
        # A reader must cope with the torn leftovers of a mid-append crash
        # (orphan shard, no ledger entry) without resuming anything.
        points = enumerate_points(tmp_path, "probe", "alpha")
        # last occurrence: chunk 1's ledger commit (its shard is on disk)
        ledger_commit = len(points) - 1 - points[::-1].index("append:ledger")
        root = tmp_path / "torn"
        install_fault_hook(crash_at(ledger_commit))
        with pytest.raises(InjectedCrash):
            run_appends(root, "alpha")
        install_fault_hook(None)
        reader = PatternLibrary(root)
        # chunk 0 committed, chunk 1's shard is an orphan: only chunk 0 counts
        assert reader.num_patterns == 2
        assert len(reader.load_patterns()) == 2


def compact_fills(root, writer="alpha"):
    library = PatternLibrary(root, dedup=False, writer=writer)
    for chunk, fills in enumerate([[1, 2], [2, 3], [3, 4]]):
        patterns = [make_pattern(f) for f in fills]
        library.append_chunk(make_record(chunk, patterns), patterns)
    return library


class TestCompactionCrashes:
    def test_every_kill_point_preserves_patterns(self, tmp_path):
        reference = compact_fills(tmp_path / "serial")
        reference.compact(target_shard_patterns=4, drop_duplicates=True)
        expected = [pattern_hash(p) for p in reference.load_patterns()]

        probe = compact_fills(tmp_path / "probe")
        with record_fault_points() as points:
            probe.compact(target_shard_patterns=4, drop_duplicates=True)
        assert "compact:merged-shard" in points
        assert "compact:index-rebuild" in points

        for index, label in enumerate(points):
            root = tmp_path / f"kill-{index}"
            library = compact_fills(root)
            install_fault_hook(crash_at(index))
            with pytest.raises(InjectedCrash):
                library.compact(target_shard_patterns=4, drop_duplicates=True)
            install_fault_hook(None)
            # Crash mid-compaction: reopening must still see every pattern
            # (dropped duplicates may or may not have committed yet, so
            # compare the deduplicated multiset).
            recovered = PatternLibrary(root, dedup=False, writer="alpha")
            survivors = [pattern_hash(p) for p in recovered.load_patterns()]
            deduped = list(dict.fromkeys(survivors))
            assert deduped == expected, label
            # and a rerun converges to the reference state
            recovered.compact(target_shard_patterns=4, drop_duplicates=True)
            assert [
                pattern_hash(p) for p in recovered.load_patterns()
            ] == expected, label

    def test_v1_migration_survives_crashes(self, tmp_path):
        def build_v1(root):
            library = PatternLibrary(root, dedup=True)
            for chunk, fills in enumerate([[1, 2], [3, 4]]):
                patterns = [make_pattern(f) for f in fills]
                library.append_chunk(make_record(chunk, patterns), patterns)
            return library

        reference = build_v1(tmp_path / "serial")
        expected = [pattern_hash(p) for p in reference.load_patterns()]
        probe = build_v1(tmp_path / "probe")
        with record_fault_points() as points:
            probe.compact(target_shard_patterns=8)
        assert "compact:drop-manifest" in points

        for index, label in enumerate(points):
            root = tmp_path / f"kill-{index}"
            library = build_v1(root)
            install_fault_hook(crash_at(index))
            with pytest.raises(InjectedCrash):
                library.compact(target_shard_patterns=8)
            install_fault_hook(None)
            recovered = PatternLibrary(root)
            assert [
                pattern_hash(p) for p in recovered.load_patterns()
            ] == expected, label
            recovered.compact(target_shard_patterns=8)
            assert [
                pattern_hash(p) for p in PatternLibrary(root).load_patterns()
            ] == expected, label

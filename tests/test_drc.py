"""Unit tests for the design-rule checker."""

import numpy as np
import pytest

from repro.drc import DesignRuleChecker, DRCReport, Violation
from repro.legalization import DesignRules
from repro.squish import SquishPattern


@pytest.fixture(scope="module")
def checker():
    return DesignRuleChecker(
        DesignRules(space_min=30, width_min=30, area_min=1000, area_max=100_000, pattern_size=400)
    )


def pattern_from(topo, dx, dy):
    return SquishPattern(np.asarray(topo, dtype=np.uint8), np.asarray(dx), np.asarray(dy))


class TestCleanPatterns:
    def test_empty_pattern_is_clean(self, checker):
        pattern = pattern_from(np.zeros((2, 2)), [200, 200], [200, 200])
        assert checker.is_legal(pattern)

    def test_single_large_rectangle_is_clean(self, checker):
        pattern = pattern_from([[0, 0, 0], [0, 1, 0], [0, 0, 0]], [100, 200, 100], [100, 200, 100])
        report = checker.check_pattern(pattern)
        assert report.clean

    def test_two_spaced_shapes_clean(self, checker):
        topo = [[1, 0, 1]]
        pattern = pattern_from(topo, [150, 100, 150], [400])
        assert checker.is_legal(pattern)


class TestViolations:
    def test_width_violation_detected(self, checker):
        pattern = pattern_from([[1, 0]], [10, 390], [400])
        report = checker.check_pattern(pattern)
        assert report.count("width") >= 1
        assert not report.clean

    def test_space_violation_detected(self, checker):
        pattern = pattern_from([[1, 0, 1]], [180, 10, 210], [400])
        report = checker.check_pattern(pattern)
        assert report.count("space") >= 1

    def test_area_too_small_detected(self, checker):
        pattern = pattern_from([[1, 0], [0, 0]], [30, 370], [30, 370])
        report = checker.check_pattern(pattern)
        assert report.count("area") >= 1

    def test_area_too_large_detected(self, checker):
        pattern = pattern_from([[1]], [400], [400])
        report = checker.check_pattern(pattern)
        assert report.count("area") == 1

    def test_bowtie_detected(self, checker):
        pattern = pattern_from([[1, 0], [0, 1]], [200, 200], [200, 200])
        report = checker.check_pattern(pattern)
        assert report.count("bowtie") == 1

    def test_border_gap_not_a_space_violation(self, checker):
        # A single shape near the border: the gap to the window edge is not a
        # space constraint between two polygons.
        pattern = pattern_from([[1, 0]], [200, 200], [400])
        report = checker.check_pattern(pattern)
        assert report.count("space") == 0

    def test_violation_string_is_informative(self):
        violation = Violation("width", "x", (1, 2), 10.0, 30.0)
        text = str(violation)
        assert "width" in text and "10.0" in text and "30.0" in text

    def test_area_violation_reports_representative_cell(self, checker):
        # Two polygons; only the second is undersized, and its location must
        # name one of its own cells on the *canonical* grid (identical
        # columns 0-1 merge, so the bad cell lands at (2, 2)) — not the old
        # (index, index) placeholder, which would have claimed (1, 1).
        topo = [
            [0, 0, 0, 0, 0],
            [1, 1, 0, 0, 0],
            [1, 1, 0, 1, 0],
            [0, 0, 0, 0, 0],
        ]
        pattern = pattern_from(topo, [100, 100, 80, 20, 100], [100, 100, 20, 180])
        report = checker.check_pattern(pattern)
        areas = [v for v in report.violations if v.rule == "area"]
        assert len(areas) == 1
        assert areas[0].location == (2, 2)

    def test_area_violation_str_names_the_offending_cell(self, checker):
        pattern = pattern_from([[0, 1], [0, 0]], [370, 30], [30, 370])
        report = checker.check_pattern(pattern)
        areas = [v for v in report.violations if v.rule == "area"]
        assert len(areas) == 1
        text = str(areas[0])
        assert "(0, 1)" in text
        assert "area" in text and "900.0" in text and "1000.0" in text


class TestReportsAndRates:
    def test_report_count_by_rule(self, checker):
        pattern = pattern_from([[1, 0, 1]], [10, 10, 380], [400])
        report = checker.check_pattern(pattern)
        assert report.count() == report.count("width") + report.count("space") + report.count("area") + report.count("bowtie")

    def test_legality_rate(self, checker):
        clean = pattern_from([[0, 0], [0, 1]], [200, 200], [200, 200])
        dirty = pattern_from([[1, 0]], [5, 395], [400])
        assert checker.legality_rate([clean, dirty]) == pytest.approx(0.5)

    def test_legality_rate_empty_library(self, checker):
        assert checker.legality_rate([]) == 0.0

    def test_check_layout_equivalent_to_pattern(self, checker):
        pattern = pattern_from([[0, 1, 0]], [100, 200, 100], [400])
        layout = pattern.to_layout()
        assert checker.is_legal(layout) == checker.is_legal(pattern)

    def test_canonicalisation_prevents_false_width_violations(self, checker):
        # The same physical shape split across two adjacent identical columns
        # must not be flagged even though each split interval is narrow.
        topo = [[0, 1, 1, 0]]
        pattern = pattern_from(topo, [100, 20, 180, 100], [400])
        assert checker.is_legal(pattern)

    def test_drc_report_dataclass_defaults(self):
        report = DRCReport()
        assert report.clean
        assert report.count() == 0


class TestBatchChecking:
    def test_check_batch_matches_single_checks(self, checker):
        patterns = [
            pattern_from([[0, 0], [0, 1]], [200, 200], [200, 200]),
            pattern_from([[1, 0]], [5, 395], [400]),
            pattern_from([[1, 0, 1]], [150, 100, 150], [400]),
        ]
        reports = checker.check_batch(patterns)
        assert len(reports) == len(patterns)
        for pattern, report in zip(patterns, reports):
            assert report.clean == checker.is_legal(pattern)

    def test_check_batch_mixed_patterns_and_layouts(self, checker):
        pattern = pattern_from([[0, 1, 0]], [100, 200, 100], [400])
        reports = checker.check_batch([pattern, pattern.to_layout()])
        assert reports[0].clean == reports[1].clean

    def test_legality_mask_order_and_dtype(self, checker):
        clean = pattern_from([[0, 0], [0, 1]], [200, 200], [200, 200])
        dirty = pattern_from([[1, 0]], [5, 395], [400])
        mask = checker.legality_mask([clean, dirty, clean])
        assert mask.dtype == bool
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_legal_subset_preserves_order(self, checker):
        clean_a = pattern_from([[0, 0], [0, 1]], [200, 200], [200, 200])
        dirty = pattern_from([[1, 0]], [5, 395], [400])
        clean_b = pattern_from([[0, 1, 0]], [100, 200, 100], [400])
        subset = checker.legal_subset([clean_a, dirty, clean_b])
        assert [p is q for p, q in zip(subset, [clean_a, clean_b])] == [True, True]
        assert len(subset) == 2

    def test_batch_empty(self, checker):
        assert checker.check_batch([]) == []
        assert checker.legality_mask([]).shape == (0,)

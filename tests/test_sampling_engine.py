"""Parity and behaviour tests for the batched gradient-free sampling engine.

The engine's contract is strong: for a fixed seed, the generated topology
tensors are *element-wise identical* no matter how the samples are chunked —
one at a time (the sequential sampler), one big batch, or any chunk size in
between.  The gradient-free forward pass must also agree with the taped
forward pass to float32 tolerance, while building no autodiff tape at all.
"""

import numpy as np
import pytest

from repro.diffusion import DiffusionConfig, DiscreteDiffusion
from repro.nn import Tensor, UNet, UNetConfig, is_grad_enabled, no_grad
from repro.pipeline import SamplingEngine, resolve_seed


def tiny_unet(channels=4, size=8, classes=2, dropout=0.0):
    return UNet(
        UNetConfig(
            in_channels=channels,
            num_classes=classes,
            image_size=size,
            model_channels=8,
            channel_mult=(1, 2),
            num_res_blocks=1,
            attention_resolutions=(4,),
            dropout=dropout,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def diffusion():
    return DiscreteDiffusion(tiny_unet(), DiffusionConfig(num_steps=8, lambda_ce=0.05))


@pytest.fixture(scope="module")
def engine(diffusion):
    return SamplingEngine(diffusion, batch_size=8)


class TestNoGrad:
    def test_no_grad_builds_no_tape(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        with no_grad():
            out = (a * 2.0 + 1.0).sum()
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward_fn is None

    def test_no_grad_restores_state_on_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_no_grad_nests(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_taped_forward_unaffected_outside_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 3.0)


class TestInferenceForwardParity:
    def test_infer_matches_taped_forward(self):
        net = tiny_unet()
        net.eval()
        rng = np.random.default_rng(0)
        x = rng.random((3, 8, 8, 8), dtype=np.float64).astype(np.float32)
        timesteps = np.full(3, 5, dtype=np.int64)
        taped = net(Tensor(x), timesteps).numpy()
        inferred = net.infer(x, timesteps)
        np.testing.assert_allclose(taped, inferred, rtol=1e-4, atol=1e-4)

    def test_forward_inference_flag_matches_infer(self):
        net = tiny_unet()
        rng = np.random.default_rng(1)
        x = rng.random((2, 8, 8, 8)).astype(np.float32)
        timesteps = np.full(2, 3, dtype=np.int64)
        out = net(Tensor(x), timesteps, inference=True)
        assert not out.requires_grad
        np.testing.assert_array_equal(out.numpy(), net.infer(x, timesteps))

    def test_infer_is_batch_invariant(self):
        net = tiny_unet()
        rng = np.random.default_rng(2)
        x = rng.random((5, 8, 8, 8)).astype(np.float32)
        timesteps = np.full(5, 4, dtype=np.int64)
        batched = net.infer(x, timesteps)
        for i in range(5):
            single = net.infer(x[i : i + 1], timesteps[i : i + 1])
            np.testing.assert_array_equal(batched[i : i + 1], single)

    def test_group_norm_array_matches_taped_on_large_mean_inputs(self):
        # Regression: a two-moment variance (E[x²]−E[x]²) cancels in float32
        # once a feature map's mean dwarfs its spread; the array kernel must
        # use the centred variance, like the taped group_norm.
        from repro.nn import functional as F
        from repro.nn.modules import GroupNorm

        norm = GroupNorm(4, 8)
        rng = np.random.default_rng(0)
        x = (rng.normal(0.0, 0.01, size=(2, 8, 6, 6)) + 30.0).astype(np.float32)
        taped = norm(Tensor(x)).numpy()
        inferred = norm.infer(x)
        np.testing.assert_allclose(taped, inferred, rtol=1e-3, atol=1e-3)
        assert F.group_norm_array(x, 4, norm.weight.data, norm.bias.data).shape == x.shape

    def test_infer_skips_dropout(self):
        net = tiny_unet(dropout=0.5)
        net.train()
        rng = np.random.default_rng(3)
        x = rng.random((2, 8, 8, 8)).astype(np.float32)
        timesteps = np.full(2, 2, dtype=np.int64)
        np.testing.assert_array_equal(net.infer(x, timesteps), net.infer(x, timesteps))


class TestEngineParity:
    def test_batched_equals_sequential(self, engine):
        batched = engine.sample(6, seed=0)
        sequential = engine.sample(6, seed=0, batch_size=1)
        np.testing.assert_array_equal(batched, sequential)

    def test_chunking_does_not_change_samples(self, engine):
        reference = engine.sample(7, seed=11)
        for chunk in (2, 3, 5, 7):
            np.testing.assert_array_equal(reference, engine.sample(7, seed=11, batch_size=chunk))

    def test_prefix_stability(self, engine):
        many = engine.sample(6, seed=4)
        few = engine.sample(3, seed=4)
        np.testing.assert_array_equal(many[:3], few)

    def test_first_index_offsets_the_stream(self, engine):
        # A windowed pull equals the same window of one monolithic call:
        # the streaming graph's chunked sampling rests on this.
        full = engine.sample(6, seed=4)
        window = engine.sample(3, seed=4, first_index=2)
        np.testing.assert_array_equal(full[2:5], window)

    def test_first_index_rejects_negative(self, engine):
        with pytest.raises(ValueError):
            engine.sample(2, seed=0, first_index=-1)

    def test_inference_and_taped_paths_agree(self, diffusion):
        fast = SamplingEngine(diffusion, batch_size=4, inference=True)
        slow = SamplingEngine(diffusion, batch_size=4, inference=False)
        np.testing.assert_array_equal(fast.sample(4, seed=5), slow.sample(4, seed=5))

    def test_shapes_and_values(self, engine):
        samples = engine.sample(3, seed=0)
        assert samples.shape == (3, 4, 8, 8)
        assert set(np.unique(samples)).issubset({0, 1})

    def test_chain_parity_and_consistency(self, engine):
        samples, chain = engine.sample_chain(2, seed=0, chain_stride=2)
        _, chain_seq = engine.sample_chain(2, seed=0, chain_stride=2, batch_size=1)
        assert len(chain) == len(chain_seq) >= 2
        for batched_state, seq_state in zip(chain, chain_seq):
            np.testing.assert_array_equal(batched_state, seq_state)
        np.testing.assert_array_equal(chain[-1], samples)
        # the chain starts from (roughly uniform) noise
        assert 0.2 < chain[0].mean() < 0.8

    def test_model_left_in_train_mode(self, diffusion, engine):
        diffusion.model.train()
        engine.sample(1, seed=0)
        assert diffusion.model.training

    def test_model_eval_mode_preserved(self, diffusion, engine):
        # Sampling must restore the caller's mode, not force train mode.
        diffusion.model.eval()
        engine.sample(1, seed=0)
        assert not diffusion.model.training
        diffusion.sample(1, rng=0)
        assert not diffusion.model.training
        diffusion.model.train()

    def test_rejects_bad_arguments(self, diffusion, engine):
        with pytest.raises(ValueError):
            SamplingEngine(diffusion, batch_size=0)
        with pytest.raises(ValueError):
            engine.sample(0, seed=0)


class TestEngineReport:
    def test_report_phases_and_throughput(self, engine):
        samples, report = engine.sample_with_report(5, seed=0, batch_size=2)
        assert samples.shape[0] == 5
        assert report.num_samples == 5
        assert report.num_chunks == 3
        assert report.total_seconds > 0
        assert report.model_seconds > 0
        assert report.samples_per_second > 0
        assert 0.0 < report.model_fraction <= 1.0
        assert "samples/s" in report.format()

    def test_last_report_retained(self, engine):
        engine.sample(2, seed=0)
        assert engine.last_report is not None
        assert engine.last_report.num_samples == 2


class TestSeedResolution:
    def test_int_passthrough(self):
        assert resolve_seed(7) == 7

    def test_generator_draws_deterministically(self):
        a = resolve_seed(np.random.default_rng(0))
        b = resolve_seed(np.random.default_rng(0))
        assert a == b

    def test_none_gives_random_seed(self):
        assert isinstance(resolve_seed(None), int)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_seed("seed")


class TestPosteriorTables:
    def test_table_matches_direct_formula(self, diffusion):
        transition = diffusion.transition
        for k in (1, 3, transition.num_steps):
            table = transition.posterior_table(k)
            q_k = transition.q_matrix(k)
            q_bar_prev = transition.q_bar_matrix(k - 1)
            q_bar_k = transition.q_bar_matrix(k)
            size = transition.num_states
            for v in range(size):
                for i in range(size):
                    expected = q_k[:, v] * q_bar_prev[i, :] / q_bar_k[i, v]
                    np.testing.assert_allclose(table[v, i], expected)

    def test_gathered_posteriors_normalised(self, diffusion):
        transition = diffusion.transition
        rng = np.random.default_rng(0)
        xk = rng.integers(0, 2, size=(2, 4, 8, 8))
        probs = transition.posterior_probs_all_x0(xk, 3)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-12)

    def test_float32_table_cached_separately(self, diffusion):
        transition = diffusion.transition
        t64 = transition.posterior_table(2)
        t32 = transition.posterior_table(2, dtype=np.float32)
        assert t64.dtype == np.float64
        assert t32.dtype == np.float32
        np.testing.assert_allclose(t64, t32, atol=1e-6)

    def test_tables_are_immutable(self, diffusion):
        table = diffusion.transition.posterior_table(1)
        with pytest.raises(ValueError):
            table[0, 0, 0] = 0.5


class TestPipelineIntegration:
    def test_generate_topologies_deterministic(self, trained_tiny_pipeline):
        a = trained_tiny_pipeline.generate_topologies(3, rng=9)
        b = trained_tiny_pipeline.generate_topologies(3, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_generation_is_chunk_invariant(self, trained_tiny_pipeline):
        engine = trained_tiny_pipeline.sampling_engine()
        wide = engine.sample(5, seed=1)
        narrow = engine.sample(5, seed=1, batch_size=2)
        np.testing.assert_array_equal(wide, narrow)

    def test_last_sampling_report_populated(self, trained_tiny_pipeline):
        trained_tiny_pipeline.generate_topologies(2, rng=0)
        report = trained_tiny_pipeline.last_sampling_report
        assert report is not None
        assert report.num_samples == 2

    def test_engine_requires_model(self):
        from repro.pipeline import DiffPatternConfig, DiffPatternPipeline

        pipeline = DiffPatternPipeline(DiffPatternConfig.tiny())
        with pytest.raises(RuntimeError):
            pipeline.sampling_engine()

"""Unit and behaviour tests for the discrete diffusion generator."""

import numpy as np
import pytest

from repro.diffusion import DiffusionConfig, DiscreteDiffusion, linear_schedule
from repro.nn import UNet, UNetConfig


def tiny_unet(channels=4, size=8, classes=2):
    return UNet(
        UNetConfig(
            in_channels=channels,
            num_classes=classes,
            image_size=size,
            model_channels=8,
            channel_mult=(1, 2),
            num_res_blocks=1,
            attention_resolutions=(4,),
            dropout=0.0,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def model():
    return DiscreteDiffusion(tiny_unet(), DiffusionConfig(num_steps=8, lambda_ce=0.05))


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    base = np.zeros((12, 4, 8, 8), dtype=np.int64)
    # simple structured data: solid vertical bars of random position/width
    for i in range(12):
        start = rng.integers(0, 6)
        base[i, :, :, start : start + 2] = 1
    return base


class TestConstruction:
    def test_schedule_step_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDiffusion(
                tiny_unet(), DiffusionConfig(num_steps=8), schedule=linear_schedule(16)
            )

    def test_num_classes_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiscreteDiffusion(tiny_unet(classes=1), DiffusionConfig(num_steps=8))

    def test_from_unet_config(self):
        model = DiscreteDiffusion.from_unet_config(
            UNetConfig(
                in_channels=4, num_classes=2, image_size=8, model_channels=8,
                channel_mult=(1, 2), num_res_blocks=1, attention_resolutions=(), dropout=0.0,
            ),
            DiffusionConfig(num_steps=4),
        )
        assert model.config.num_steps == 4


class TestLoss:
    def test_loss_is_finite_and_positive(self, model, data):
        loss, metrics = model.loss(data[:4], rng=0)
        assert np.isfinite(loss.item())
        assert metrics["loss"] >= 0.0
        assert 1 <= metrics["step"] <= model.config.num_steps

    def test_loss_at_fixed_step_one_reduces_to_ce(self, model, data):
        _, metrics = model.loss(data[:2], rng=0, k=1)
        # at k=1 the KL term equals -log p(x0|x1) up to the entropy of a
        # delta distribution (zero), so kl ~= ce
        assert metrics["kl"] == pytest.approx(metrics["ce"], rel=1e-3, abs=1e-3)

    def test_loss_rejects_bad_shape(self, model):
        with pytest.raises(ValueError):
            model.loss(np.zeros((2, 8, 8), dtype=np.int64))

    def test_loss_backward_produces_gradients(self, model, data):
        loss, _ = model.loss(data[:2], rng=1)
        model.model.zero_grad()
        loss.backward()
        grads = [p.grad for p in model.model.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)


class TestTraining:
    def test_fit_decreases_loss_on_simple_data(self, data):
        model = DiscreteDiffusion(tiny_unet(), DiffusionConfig(num_steps=8, lambda_ce=0.1))
        # Evaluate at a fixed timestep and fixed corruption before/after
        # training so the comparison is not dominated by timestep noise.
        fixed_step = 4
        before, _ = model.loss(data[:6], rng=123, k=fixed_step)
        model.fit(data, iterations=60, batch_size=6, rng=0)
        after, _ = model.loss(data[:6], rng=123, k=fixed_step)
        assert after.item() < before.item()

    def test_fit_records_grad_norm(self, data):
        model = DiscreteDiffusion(tiny_unet(), DiffusionConfig(num_steps=4))
        history = model.fit(data, iterations=3, batch_size=4, rng=0)
        assert all("grad_norm" in h for h in history)

    def test_fit_rejects_bad_dataset_shape(self, model):
        with pytest.raises(ValueError):
            model.fit(np.zeros((4, 8, 8), dtype=np.int64), iterations=1)


class TestSampling:
    def test_sample_shape_and_binary_values(self, model):
        samples = model.sample(3, rng=0)
        assert samples.shape == (3, 4, 8, 8)
        assert set(np.unique(samples)).issubset({0, 1})

    def test_sample_reproducible_with_seed(self, model):
        a = model.sample(2, rng=42)
        b = model.sample(2, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_sample_chain_returned(self, model):
        final, chain = model.sample(1, rng=0, return_chain=True, chain_stride=2)
        assert len(chain) >= 2
        np.testing.assert_array_equal(chain[-1][0], final[0])
        # the chain starts from (roughly uniform) noise
        assert 0.2 < chain[0].mean() < 0.8

    def test_greedy_final_step_is_deterministic_given_chain(self, model):
        a = model.sample(1, rng=7, greedy_final=True)
        b = model.sample(1, rng=7, greedy_final=True)
        np.testing.assert_array_equal(a, b)

    def test_sampling_leaves_model_in_train_mode(self, model):
        model.model.train()
        model.sample(1, rng=0)
        assert model.model.training

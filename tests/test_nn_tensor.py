"""Unit tests for the autograd engine (repro.nn.tensor).

Gradient correctness is verified against central finite differences for every
primitive that participates in the U-Net: arithmetic, reductions, reshapes,
activations and matrix multiplication.
"""

import numpy as np

from repro.nn import Tensor, concatenate, ones, randn, stack, tensor, zeros


def numerical_grad(func, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued ``func``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(x.copy().reshape(x.shape))
        flat[i] = original - eps
        minus = func(x.copy().reshape(x.shape))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-2) -> None:
    """Compare autograd gradient with finite differences for ``build(x)``."""
    t = Tensor(x.astype(np.float32), requires_grad=True)
    out = build(t)
    out.backward()
    expected = numerical_grad(lambda arr: float(build(Tensor(arr.astype(np.float32))).data.sum()), x.astype(np.float64))
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-2)


class TestConstructors:
    def test_tensor_shape_and_dtype(self):
        t = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float32

    def test_zeros_ones(self):
        assert zeros((2, 3)).data.sum() == 0
        assert ones((2, 3)).data.sum() == 6

    def test_randn_seeded(self):
        rng = np.random.default_rng(0)
        a = randn((4,), rng=rng)
        rng = np.random.default_rng(0)
        b = randn((4,), rng=rng)
        np.testing.assert_array_equal(a.data, b.data)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad


class TestBasicArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum(), np.random.default_rng(0).normal(size=(3, 4)))

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum(), np.random.default_rng(1).normal(size=(3, 4)))

    def test_div(self):
        x = np.random.default_rng(2).uniform(0.5, 2.0, size=(3, 3))
        check_gradient(lambda t: (1.0 / t).sum(), x)

    def test_sub_and_neg(self):
        check_gradient(lambda t: (5.0 - t).sum() + (-t).sum(), np.random.default_rng(3).normal(size=(4,)))

    def test_pow(self):
        x = np.random.default_rng(4).uniform(0.5, 2.0, size=(5,))
        check_gradient(lambda t: (t**3).sum(), x)

    def test_matmul(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(3, 4))
        b_const = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        check_gradient(lambda t: (t @ b_const).sum(), a)

    def test_matmul_batched(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(2, 3, 4))
        b_const = Tensor(rng.normal(size=(2, 4, 3)).astype(np.float32))
        check_gradient(lambda t: (t @ b_const).sum(), a)

    def test_broadcast_add_gradient_shape(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3,), dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_gradient_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        out = t * 3.0 + t * 4.0
        out.backward()
        np.testing.assert_allclose(t.grad, [7.0])


class TestActivationsGradients:
    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), np.random.default_rng(7).normal(size=(3, 3)))

    def test_log(self):
        x = np.random.default_rng(8).uniform(0.5, 3.0, size=(6,))
        check_gradient(lambda t: t.log().sum(), x)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), np.random.default_rng(9).normal(size=(4, 2)))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), np.random.default_rng(10).normal(size=(4,)))

    def test_relu(self):
        x = np.array([-1.0, -0.5, 0.5, 2.0])
        check_gradient(lambda t: t.relu().sum(), x)

    def test_silu(self):
        check_gradient(lambda t: t.silu().sum(), np.random.default_rng(11).normal(size=(5,)))

    def test_clip_gradient_mask(self):
        t = Tensor(np.array([-2.0, 0.0, 2.0], dtype=np.float32), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductionAndShapeGradients:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), np.random.default_rng(12).normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_gradient(
            lambda t: (t - t.sum(axis=1, keepdims=True)).sum() + (t * t).sum(),
            np.random.default_rng(13).normal(size=(2, 3)),
        )

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=(0, 1)) * 3.0).sum(), np.random.default_rng(14).normal(size=(3, 4)))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), np.random.default_rng(15).normal(size=(2, 3)))

    def test_transpose(self):
        rng = np.random.default_rng(16)
        weight = Tensor(rng.normal(size=(3, 2)).astype(np.float32))
        check_gradient(lambda t: (t.transpose(1, 0) * weight).sum(), rng.normal(size=(2, 3)))

    def test_getitem_slice(self):
        check_gradient(lambda t: (t[1:, :2] ** 2).sum(), np.random.default_rng(17).normal(size=(3, 3)))

    def test_getitem_integer_array(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: (t[idx] ** 2).sum(), np.random.default_rng(18).normal(size=(4, 2)))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_gradient(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestBackwardMechanics:
    def test_backward_on_nonscalar_requires_matching_grad(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = t * 2.0
        out.backward(np.full((2, 2), 0.5, dtype=np.float32))
        np.testing.assert_allclose(t.grad, np.ones((2, 2)))

    def test_no_grad_tracking_without_requires_grad(self):
        t = Tensor(np.ones(3))
        out = (t * 2.0).sum()
        out.backward()
        assert t.grad is None

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_gradient(self):
        t = Tensor(np.array([1.5], dtype=np.float32), requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        out = (a * b).sum()  # 6 t^2 -> grad 12 t
        out.backward()
        np.testing.assert_allclose(t.grad, [18.0], rtol=1e-5)

"""Tests for the sharded v2 pattern library: ledgers, index, query, compaction."""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro.library import (
    LEGACY_WRITER,
    MANIFEST_DIR,
    BloomFilter,
    ChunkRecord,
    LibraryError,
    LibraryLock,
    PatternLibrary,
    pattern_hash,
    topology_hash,
)
from repro.library.manifest import (
    ledger_path,
    load_ledger,
    scan_ledgers,
    validate_writer_id,
)
from repro.squish import SquishPattern


def make_pattern(fill: int, size: int = 4, step: int = 32) -> SquishPattern:
    topo = np.zeros((size, size), dtype=np.uint8)
    topo[1 : 1 + (fill % (size - 1)) + 0, 1:3] = 1
    topo[0, fill % size] = 1
    delta = np.full(size, step, dtype=np.int64)
    return SquishPattern(topo, delta, delta + fill)


def make_record(chunk: int, patterns: list[SquishPattern], **overrides) -> ChunkRecord:
    defaults = dict(
        chunk=chunk,
        start=chunk * 4,
        num_sampled=4,
        num_kept=len(patterns),
        num_rejected=4 - min(4, len(patterns)),
        unsolved=0,
        num_patterns=len(patterns),
        num_stored=0,
        duplicates_skipped=0,
        num_clean=len(patterns),
        shard=None,
        pattern_complexity_counts=[[2, 2, len(patterns)]] if patterns else [],
    )
    defaults.update(overrides)
    return ChunkRecord(**defaults)


def fill_writer(root, writer: str, fills, dedup: bool = False, chunk_size: int = 2):
    """Append ``fills`` as patterns through one writer, chunk_size at a time."""
    library = PatternLibrary(root, dedup=dedup, writer=writer)
    patterns = [make_pattern(f) for f in fills]
    for chunk, start in enumerate(range(0, len(patterns), chunk_size)):
        batch = patterns[start : start + chunk_size]
        library.append_chunk(make_record(chunk, batch), batch)
    return library


class TestWriterLedgers:
    def test_writer_opens_v2_layout(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [1, 2, 3])
        assert (tmp_path / MANIFEST_DIR / "alpha.json").exists()
        assert not (tmp_path / "manifest.json").exists()
        assert library.writers == ["alpha"]

    def test_ledger_records_carry_seq_and_writer(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2, 3, 4])
        ledger = load_ledger(ledger_path(tmp_path, "alpha"))
        assert [record.seq for record in ledger.chunks] == [0, 1]
        assert all(record.writer == "alpha" for record in ledger.chunks)

    def test_v2_records_store_counts_not_hash_lists(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2])
        payload = json.loads((tmp_path / MANIFEST_DIR / "alpha.json").read_text())
        (record,) = payload["chunks"]
        assert "new_pattern_hashes" not in record
        assert "new_topology_hashes" not in record
        assert record["num_new_patterns"] == 2

    def test_scan_skips_temp_files(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2])
        (tmp_path / MANIFEST_DIR / "beta.json.tmp").write_text("{not json")
        assert sorted(scan_ledgers(tmp_path)) == ["alpha"]

    def test_writer_id_validation(self, tmp_path):
        for bad in ("", "a/b", "..", ".hidden", "a b"):
            with pytest.raises(ValueError):
                validate_writer_id(bad)
        validate_writer_id("serve-0a1b2c3d4e5f")

    def test_duplicate_chunk_for_same_writer_rejected(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [1, 2])
        patterns = [make_pattern(9)]
        with pytest.raises(LibraryError, match="already recorded"):
            library.append_chunk(make_record(0, patterns), patterns)

    def test_lock_is_exclusive(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        import os

        with LibraryLock(tmp_path) as lock:
            fd = os.open(lock.path, os.O_RDWR)
            try:
                with pytest.raises(OSError):
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            finally:
                os.close(fd)
        fd = os.open(tmp_path / "library.lock", os.O_RDWR)
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)  # released on exit
        os.close(fd)


class TestMultiWriter:
    def test_merged_view_is_union_of_ledgers(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2, 3])
        fill_writer(tmp_path, "beta", [4, 5])
        merged = PatternLibrary(tmp_path)
        assert merged.writers == ["alpha", "beta"]
        assert merged.num_patterns == 5
        hashes = {pattern_hash(p) for p in merged.load_patterns()}
        expected = {pattern_hash(make_pattern(f)) for f in [1, 2, 3, 4, 5]}
        assert hashes == expected

    def test_seq_is_gap_free_across_writers(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2, 3, 4])
        fill_writer(tmp_path, "beta", [5, 6])
        merged = PatternLibrary(tmp_path)
        assert [r.seq for r in merged.records_in_order()] == [0, 1, 2]

    def test_dedup_crosses_writer_boundaries(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2], dedup=True)
        second = fill_writer(tmp_path, "beta", [2, 3], dedup=True)
        assert second.num_patterns == 3  # pattern 2 deduplicated across writers
        records = second.own_records()
        assert sum(r.duplicates_skipped for r in records) == 1

    def test_interleaved_appends_match_serial_pattern_set(self, tmp_path):
        serial_root = tmp_path / "serial"
        alpha = PatternLibrary(tmp_path / "inter", dedup=True, writer="alpha")
        beta = PatternLibrary(tmp_path / "inter", dedup=True, writer="beta")
        serial = PatternLibrary(serial_root, dedup=True, writer="solo")
        fills = [[1, 2], [2, 3], [3, 4], [1, 5]]
        for chunk, fill in enumerate(fills):
            patterns = [make_pattern(f) for f in fill]
            owner = alpha if chunk % 2 == 0 else beta
            owner.append_chunk(make_record(chunk // 2, patterns), patterns)
            serial.append_chunk(make_record(chunk, patterns), patterns)
        merged = PatternLibrary(tmp_path / "inter")
        assert merged.num_patterns == serial.num_patterns
        assert [pattern_hash(p) for p in merged.load_patterns()] == [
            pattern_hash(p) for p in serial.load_patterns()
        ]
        assert sum(r.duplicates_skipped for r in merged.records_in_order()) == sum(
            r.duplicates_skipped for r in serial.records_in_order()
        )

    def test_merged_view_rejects_append_without_writer(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1])
        merged = PatternLibrary(tmp_path)
        patterns = [make_pattern(7)]
        with pytest.raises(LibraryError, match="writer"):
            merged.append_chunk(make_record(9, patterns), patterns)

    def test_histogram_and_summary_cover_all_writers(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2])
        fill_writer(tmp_path, "beta", [3])
        merged = PatternLibrary(tmp_path)
        assert merged.pattern_histogram().total == 3
        assert merged.summary()["chunks"] == 2


class TestV1Compat:
    def test_v1_output_is_unchanged_without_writer(self, tmp_path):
        patterns = [make_pattern(i) for i in range(3)]
        library = PatternLibrary(tmp_path, dedup=True)
        library.append_chunk(make_record(0, patterns), patterns)
        assert not (tmp_path / MANIFEST_DIR).exists()
        payload = json.loads((tmp_path / "manifest.json").read_text())
        assert payload["version"] == 1
        (record,) = payload["chunks"]
        # byte-compatible v1 schema: no v2-only keys leak into the manifest
        assert "seq" not in record and "writer" not in record
        assert record["new_pattern_hashes"]  # v1 keeps inline hash lists

    def test_v1_library_readable_as_merged_view(self, tmp_path):
        patterns = [make_pattern(i) for i in range(4)]
        v1 = PatternLibrary(tmp_path, dedup=True)
        v1.append_chunk(make_record(0, patterns[:2]), patterns[:2])
        v1.append_chunk(make_record(1, patterns[2:]), patterns[2:])
        reread = PatternLibrary(tmp_path)
        assert reread.num_patterns == 4
        assert reread.load_patterns()  # loads through the v1 shard names

    def test_v1_library_joined_by_new_writer(self, tmp_path):
        patterns = [make_pattern(i) for i in range(2)]
        v1 = PatternLibrary(tmp_path, dedup=True)
        v1.append_chunk(make_record(0, patterns), patterns)
        joined = fill_writer(tmp_path, "late", [1, 7], dedup=True)
        # pattern 1 already exists in the legacy manifest -> deduplicated
        assert joined.num_patterns == 3
        merged = PatternLibrary(tmp_path)
        assert {r.writer for r in merged.records_in_order()} == {LEGACY_WRITER, "late"}
        # joining never rewrites the legacy manifest itself
        assert (tmp_path / "manifest.json").exists()

    def test_legacy_records_keep_seq_order_before_new_writers(self, tmp_path):
        patterns = [make_pattern(i) for i in range(2)]
        v1 = PatternLibrary(tmp_path)
        v1.append_chunk(make_record(0, patterns[:1]), patterns[:1])
        v1.append_chunk(make_record(1, patterns[1:]), patterns[1:])
        fill_writer(tmp_path, "late", [7])
        merged = PatternLibrary(tmp_path)
        order = [(r.writer, r.seq) for r in merged.records_in_order()]
        assert order == [(LEGACY_WRITER, 0), (LEGACY_WRITER, 1), ("late", 2)]


class TestQuery:
    def test_band_filter_is_inclusive(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [0, 1, 2, 3])
        totals = sorted(h.cx + h.cy for h in library.query())
        lo, hi = totals[1], totals[-2]
        band = library.query(complexity_band=(lo, hi))
        assert all(lo <= h.cx + h.cy <= hi for h in band)
        assert len(band) == sum(1 for t in totals if lo <= t <= hi)
        assert len(library.query(complexity_band=(None, None))) == 4

    def test_topology_filter_uses_index_fast_miss(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [1, 2, 3])
        digest = topology_hash(make_pattern(2).topology)
        matches = library.query(topology_hash=digest)
        assert matches and all(h.topology_hash == digest for h in matches)
        assert library.query(topology_hash="f" * 40) == []

    def test_writer_filter(self, tmp_path):
        fill_writer(tmp_path, "alpha", [1, 2])
        fill_writer(tmp_path, "beta", [3])
        merged = PatternLibrary(tmp_path)
        assert len(merged.query(writer="alpha")) == 2
        assert len(merged.query(writer="beta")) == 1
        assert merged.query(writer="nobody") == []

    def test_regime_filter_matches_fingerprint_substring(self, tmp_path):
        library = PatternLibrary(tmp_path, writer="alpha")
        library.bind({"rules": "space_min=32"})
        patterns = [make_pattern(f) for f in (1, 2)]
        library.append_chunk(make_record(0, patterns), patterns)
        reread = PatternLibrary(tmp_path, writer="alpha")
        assert len(reread.query(rule_regime="space_min=32")) == 2
        assert reread.query(rule_regime="space_min=99") == []

    def test_handles_load_lazily_and_exactly(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [1, 2, 3, 4], chunk_size=2)
        for handle in library.query():
            pattern = handle.load()
            assert pattern_hash(pattern) == handle.pattern_hash
            assert topology_hash(pattern.topology) == handle.topology_hash

    def test_query_on_v1_library(self, tmp_path):
        patterns = [make_pattern(i) for i in range(3)]
        v1 = PatternLibrary(tmp_path)
        v1.append_chunk(make_record(0, patterns), patterns)
        handles = v1.query(topology_hash=topology_hash(patterns[1].topology))
        assert [h.pattern_hash for h in handles] == [pattern_hash(patterns[1])]


class TestIndex:
    def test_bloom_has_no_false_negatives(self):
        digests = [pattern_hash(make_pattern(i)) for i in range(200)]
        bloom = BloomFilter.from_capacity(len(digests))
        bloom.add_many(digests)
        assert all(bloom.might_contain(d) for d in digests)
        absent = [topology_hash(make_pattern(i).topology) for i in range(50)]
        false_positives = sum(bloom.might_contain(d) for d in absent)
        assert false_positives <= 10  # ~1% target rate, generous bound

    def test_probe_agrees_with_disk_after_flush(self, tmp_path):
        # 9 chunks crosses the flush threshold, so probes mix the merged
        # mmap arrays, the bloom filter and the unflushed delta sets.
        library = fill_writer(tmp_path, "alpha", list(range(18)), chunk_size=2)
        stats = library.index_stats()
        assert stats["covered_seq"] >= 0
        assert stats["merged_patterns"] > 0
        for fill in range(18):
            assert library.has_pattern(pattern_hash(make_pattern(fill)))
        assert not library.has_pattern("0" * 40)

    def test_deleted_index_is_rebuilt_not_trusted(self, tmp_path):
        import shutil

        library = fill_writer(tmp_path, "alpha", list(range(18)), chunk_size=2)
        shutil.rmtree(library.index_dir)
        reread = PatternLibrary(tmp_path, dedup=True, writer="alpha")
        for fill in range(18):
            assert reread.has_pattern(pattern_hash(make_pattern(fill)))
        stats = reread.rebuild_index()
        assert stats["merged_patterns"] == reread.num_patterns

    def test_rebuild_index_refuses_pure_v1(self, tmp_path):
        patterns = [make_pattern(0)]
        v1 = PatternLibrary(tmp_path)
        v1.append_chunk(make_record(0, patterns), patterns)
        with pytest.raises(LibraryError, match="v1"):
            v1.rebuild_index()

    def test_second_process_sees_new_appends(self, tmp_path):
        first = fill_writer(tmp_path, "alpha", [1, 2], dedup=True)
        fill_writer(tmp_path, "beta", [3, 4], dedup=True)
        # first's next append re-reads ledgers under the lock: the dedup
        # probe must see beta's patterns even though they arrived after
        # first's index snapshot was taken.
        patterns = [make_pattern(3), make_pattern(9)]
        record = make_record(1, patterns)
        first.append_chunk(record, patterns)
        assert record.num_stored == 1
        assert record.duplicates_skipped == 1


class TestCompaction:
    def test_merges_small_shards(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", list(range(8)), chunk_size=2)
        shards_before = len(list(library.shard_dir.glob("*.npz")))
        report = library.compact(target_shard_patterns=8)
        assert report.shards_before == shards_before == 4
        assert report.shards_after == 1
        assert report.merged_shards_written == 1
        assert library.num_patterns == 8
        assert len(library.load_patterns()) == 8

    def test_preserves_pattern_order_and_content(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [5, 1, 4, 2], chunk_size=2)
        before = [pattern_hash(p) for p in library.load_patterns()]
        library.compact(target_shard_patterns=3)
        after = [pattern_hash(p) for p in library.load_patterns()]
        assert after == before

    def test_drops_superseded_duplicates(self, tmp_path):
        # dedup off at append time: duplicates land on disk; a dedup
        # compaction removes every pattern hash seen earlier in seq order.
        library = fill_writer(tmp_path, "alpha", [1, 2, 1, 2, 3], chunk_size=2)
        assert library.num_patterns == 5
        report = library.compact(target_shard_patterns=8, drop_duplicates=True)
        assert report.patterns_dropped == 2
        assert library.num_patterns == 3
        hashes = [pattern_hash(p) for p in library.load_patterns()]
        assert hashes == [pattern_hash(make_pattern(f)) for f in [1, 2, 3]]

    def test_migrates_v1_library(self, tmp_path):
        patterns = [make_pattern(i) for i in range(4)]
        v1 = PatternLibrary(tmp_path, dedup=True)
        v1.append_chunk(make_record(0, patterns[:2]), patterns[:2])
        v1.append_chunk(make_record(1, patterns[2:]), patterns[2:])
        before = [pattern_hash(p) for p in v1.load_patterns()]
        report = PatternLibrary(tmp_path).compact(target_shard_patterns=16)
        assert report.migrated == 2
        assert not (tmp_path / "manifest.json").exists()
        assert (tmp_path / MANIFEST_DIR / f"{LEGACY_WRITER}.json").exists()
        migrated = PatternLibrary(tmp_path)
        assert [pattern_hash(p) for p in migrated.load_patterns()] == before
        assert migrated.num_unique_topologies == v1.num_unique_topologies

    def test_keeps_big_exclusive_shards_in_place(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", list(range(6)), chunk_size=6)
        (shard_before,) = library.shard_dir.glob("*.npz")
        report = library.compact(target_shard_patterns=4)
        assert report.merged_shards_written == 0
        assert shard_before.exists()

    def test_compact_is_idempotent(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", list(range(8)), chunk_size=2)
        library.compact(target_shard_patterns=8)
        before = [pattern_hash(p) for p in library.load_patterns()]
        report = library.compact(target_shard_patterns=8)
        assert report.merged_shards_written == 0
        assert report.patterns_dropped == 0
        assert [pattern_hash(p) for p in library.load_patterns()] == before

    def test_query_and_dedup_survive_compaction(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", [1, 2, 3, 4], dedup=True)
        library.compact(target_shard_patterns=2)
        assert len(library.query(complexity_band=(0, None))) == 4
        patterns = [make_pattern(2)]
        record = make_record(9, patterns)
        library.append_chunk(record, patterns)
        assert record.duplicates_skipped == 1


class TestResumeValidation:
    def _library_with_chunks(self, tmp_path, writer=None):
        library = PatternLibrary(tmp_path, dedup=True, writer=writer)
        library.bind({"seed": 7})
        for chunk in range(2):
            patterns = [make_pattern(chunk * 2 + i) for i in range(2)]
            library.append_chunk(make_record(chunk, patterns), patterns)
        return library

    @pytest.mark.parametrize("writer", [None, "alpha"])
    def test_missing_shard_names_offending_chunk(self, tmp_path, writer):
        library = self._library_with_chunks(tmp_path, writer)
        shard = library.shard_dir / library.own_records()[1].shard
        shard.unlink()
        reopened = PatternLibrary(tmp_path, dedup=True, writer=writer)
        with pytest.raises(LibraryError, match=r"chunk 1: shard .* is\s+missing"):
            reopened.bind({"seed": 7}, resume=True)

    @pytest.mark.parametrize("writer", [None, "alpha"])
    def test_truncated_shard_names_offending_chunk(self, tmp_path, writer):
        library = self._library_with_chunks(tmp_path, writer)
        shard = library.shard_dir / library.own_records()[0].shard
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        reopened = PatternLibrary(tmp_path, dedup=True, writer=writer)
        with pytest.raises(LibraryError, match="chunk 0"):
            reopened.bind({"seed": 7}, resume=True)

    @pytest.mark.parametrize("writer", [None, "alpha"])
    def test_intact_library_resumes(self, tmp_path, writer):
        self._library_with_chunks(tmp_path, writer)
        reopened = PatternLibrary(tmp_path, dedup=True, writer=writer)
        records = reopened.bind({"seed": 7}, resume=True)
        assert [r.chunk for r in records] == [0, 1]


class TestStreaming:
    def test_iter_patterns_holds_one_shard_at_a_time(self, tmp_path):
        # 24 chunks x 8 patterns of 64x64 topology: walking the library must
        # not materialise all shards at once.  The bound is generous (3x one
        # shard's footprint plus bookkeeping) but fails hard if iteration
        # regresses to load_patterns()-style accumulation.
        library = PatternLibrary(tmp_path, writer="alpha")
        per_chunk = 8
        for chunk in range(24):
            patterns = [
                make_pattern(chunk * per_chunk + i, size=64) for i in range(per_chunk)
            ]
            library.append_chunk(make_record(chunk, patterns), patterns)
        shard_bytes = sum(
            path.stat().st_size for path in library.shard_dir.glob("*.npz")
        )
        one_shard = shard_bytes / 24
        tracemalloc.start()
        count = 0
        for pattern in library.iter_patterns():
            count += 1
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 24 * per_chunk
        assert peak < max(3 * one_shard * 4, 512 * 1024)  # npz inflates ~4x

    def test_pattern_histogram_never_touches_shards(self, tmp_path):
        library = fill_writer(tmp_path, "alpha", list(range(6)), chunk_size=2)
        for path in library.shard_dir.glob("*.npz"):
            path.unlink()  # histogram must not notice
        assert library.pattern_histogram().total == 6

"""Unit tests for the discrete transition model (Eq. 5-7, 10-12)."""

import numpy as np
import pytest

from repro.diffusion import (
    DiscreteTransitionModel,
    binary_flip_probability,
    linear_schedule,
    one_hot,
    sample_categorical,
)


@pytest.fixture(scope="module")
def schedule():
    return linear_schedule(16, 0.02, 0.5)


@pytest.fixture(scope="module")
def binary_model(schedule):
    return DiscreteTransitionModel(schedule, num_states=2, kind="binary")


class TestConstruction:
    def test_binary_matrix_matches_paper(self, binary_model, schedule):
        q1 = binary_model.q_matrix(1)
        beta = schedule.beta(1)
        np.testing.assert_allclose(q1, [[1 - beta, beta], [beta, 1 - beta]])

    def test_matrices_are_row_stochastic(self, binary_model):
        for k in range(1, binary_model.num_steps + 1):
            np.testing.assert_allclose(binary_model.q_matrix(k).sum(axis=1), [1.0, 1.0])
            np.testing.assert_allclose(binary_model.q_bar_matrix(k).sum(axis=1), [1.0, 1.0])

    def test_binary_matrix_is_doubly_stochastic(self, binary_model):
        for k in range(1, binary_model.num_steps + 1):
            np.testing.assert_allclose(binary_model.q_matrix(k).sum(axis=0), [1.0, 1.0])

    def test_cumulative_matches_closed_form(self, binary_model, schedule):
        for k in (0, 1, 8, 16):
            flip = binary_flip_probability(schedule, k)
            np.testing.assert_allclose(binary_model.q_bar_matrix(k)[0, 1], flip, atol=1e-12)

    def test_q_bar_zero_is_identity(self, binary_model):
        np.testing.assert_array_equal(binary_model.q_bar_matrix(0), np.eye(2))

    def test_converges_to_uniform(self, schedule):
        model = DiscreteTransitionModel(linear_schedule(200, 0.01, 0.5), kind="binary")
        final = model.q_bar_matrix(model.num_steps)
        np.testing.assert_allclose(final, np.full((2, 2), 0.5), atol=1e-6)

    def test_uniform_kind_with_more_states(self, schedule):
        model = DiscreteTransitionModel(schedule, num_states=4, kind="uniform")
        q = model.q_matrix(3)
        assert q.shape == (4, 4)
        np.testing.assert_allclose(q.sum(axis=1), np.ones(4))
        np.testing.assert_allclose(model.stationary_distribution(), np.full(4, 0.25))

    def test_absorbing_kind_stationary(self, schedule):
        model = DiscreteTransitionModel(schedule, num_states=3, kind="absorbing")
        stationary = model.stationary_distribution()
        np.testing.assert_array_equal(stationary, [0.0, 0.0, 1.0])
        q = model.q_matrix(1)
        np.testing.assert_allclose(q[-1], [0.0, 0.0, 1.0])

    def test_invalid_configurations(self, schedule):
        with pytest.raises(ValueError):
            DiscreteTransitionModel(schedule, num_states=3, kind="binary")
        with pytest.raises(ValueError):
            DiscreteTransitionModel(schedule, num_states=1)
        with pytest.raises(ValueError):
            DiscreteTransitionModel(schedule, kind="weird")

    def test_index_bounds(self, binary_model):
        with pytest.raises(IndexError):
            binary_model.q_matrix(0)
        with pytest.raises(IndexError):
            binary_model.q_bar_matrix(binary_model.num_steps + 1)


class TestForwardProcess:
    def test_q_probs_shape_and_values(self, binary_model):
        x0 = np.zeros((2, 3), dtype=np.int64)
        probs = binary_model.q_probs(x0, 4)
        assert probs.shape == (2, 3, 2)
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones((2, 3)))

    def test_sample_xk_matches_marginal(self, binary_model):
        rng = np.random.default_rng(0)
        x0 = np.zeros(20000, dtype=np.int64)
        k = 5
        samples = binary_model.sample_xk(x0, k, rng)
        expected_flip = binary_model.q_bar_matrix(k)[0, 1]
        assert abs(samples.mean() - expected_flip) < 0.02

    def test_sample_stationary_is_roughly_uniform(self, binary_model):
        samples = binary_model.sample_stationary((10000,), rng=1)
        assert abs(samples.mean() - 0.5) < 0.03

    def test_state_validation(self, binary_model):
        with pytest.raises(ValueError):
            binary_model.q_probs(np.array([0, 2]), 1)
        with pytest.raises(ValueError):
            binary_model.q_probs(np.array([0.5]), 1)


class TestPosterior:
    def test_posterior_is_distribution(self, binary_model):
        rng = np.random.default_rng(0)
        x0 = rng.integers(0, 2, size=(4, 4))
        xk = binary_model.sample_xk(x0, 6, rng)
        post = binary_model.posterior_probs(xk, x0, 6)
        np.testing.assert_allclose(post.sum(axis=-1), np.ones((4, 4)), rtol=1e-10)
        assert (post >= 0).all()

    def test_posterior_at_k1_is_delta_on_x0(self, binary_model):
        x0 = np.array([0, 1, 1, 0])
        xk = np.array([1, 1, 0, 0])
        post = binary_model.posterior_probs(xk, x0, 1)
        np.testing.assert_allclose(post[np.arange(4), x0], np.ones(4))

    def test_chapman_kolmogorov_identity(self, binary_model):
        # The posterior's normalising constant is exactly the one-step
        # Chapman-Kolmogorov identity:
        #   sum_s Q_k[s, xk] * Qbar_{k-1}[x0, s] == Qbar_k[x0, xk]
        for k in (2, 7, 16):
            q_k = binary_model.q_matrix(k)
            q_bar_prev = binary_model.q_bar_matrix(k - 1)
            q_bar_k = binary_model.q_bar_matrix(k)
            for x0_val in (0, 1):
                for xk_val in (0, 1):
                    total = sum(
                        q_k[s, xk_val] * q_bar_prev[x0_val, s] for s in range(2)
                    )
                    assert total == pytest.approx(q_bar_k[x0_val, xk_val], rel=1e-10)

    def test_posterior_all_x0_matches_individual(self, binary_model):
        rng = np.random.default_rng(1)
        xk = rng.integers(0, 2, size=(3, 3))
        all_post = binary_model.posterior_probs_all_x0(xk, 5)
        for clean_state in (0, 1):
            x0 = np.full_like(xk, clean_state)
            individual = binary_model.posterior_probs(xk, x0, 5)
            np.testing.assert_allclose(all_post[..., clean_state, :], individual)


class TestHelpers:
    def test_one_hot_roundtrip(self):
        states = np.array([[0, 1], [1, 0]])
        encoded = one_hot(states, 2)
        assert encoded.shape == (2, 2, 2)
        np.testing.assert_array_equal(encoded.argmax(axis=-1), states)

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 2]), 2)

    def test_sample_categorical_respects_probabilities(self):
        rng = np.random.default_rng(0)
        probs = np.tile(np.array([0.9, 0.1]), (50000, 1))
        samples = sample_categorical(probs, rng)
        assert abs(samples.mean() - 0.1) < 0.01

    def test_sample_categorical_deterministic_distribution(self):
        rng = np.random.default_rng(0)
        probs = np.tile(np.array([0.0, 1.0, 0.0]), (100, 1))
        samples = sample_categorical(probs, rng)
        assert (samples == 1).all()

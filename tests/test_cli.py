"""CLI smoke tests: generate -> library on disk -> inspect-library reads it back."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.library import PatternLibrary


@pytest.fixture(scope="module")
def smoke_args() -> list[str]:
    """Knobs that shrink the smoke scenario to unit-test scale.

    The CI bench-smoke job runs the scenario at its shipped scale; here it
    only has to prove the CLI wiring, so training is cut to seconds.
    """
    return ["--train-iterations", "40", "--training-patterns", "32", "--generate", "6"]


@pytest.fixture(scope="module")
def generated_library(tmp_path_factory, smoke_args):
    """One `generate --scenario smoke --out DIR` run shared by the tests."""
    out = tmp_path_factory.mktemp("cli") / "lib"
    code = main(["generate", "--scenario", "smoke", "--out", str(out), *smoke_args])
    assert code == 0
    return out


class TestGenerate:
    def test_writes_resumable_library(self, generated_library):
        assert (generated_library / "manifest.json").exists()
        library = PatternLibrary(generated_library)
        assert library.num_chunks == 2               # 6 samples / chunks of 4
        assert library.fingerprint["num_samples"] == 6
        records = library.records_in_order()
        assert sum(r.num_sampled for r in records) == 6
        assert len(library.load_patterns()) == library.num_patterns

    def test_resume_replays_to_identical_library(self, generated_library, smoke_args, capsys):
        before = PatternLibrary(generated_library).summary()
        code = main(
            ["resume", "--scenario", "smoke", "--out", str(generated_library), *smoke_args]
        )
        assert code == 0
        assert PatternLibrary(generated_library).summary() == before
        assert "legal patterns" in capsys.readouterr().out

    def test_fingerprint_mismatch_is_a_clean_error(self, generated_library, smoke_args, capsys):
        code = main(
            ["resume", "--scenario", "smoke", "--out", str(generated_library),
             *smoke_args[:-2], "--generate", "7"]      # different run shape
        )
        assert code == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_resume_without_out_rejected(self, smoke_args, capsys):
        code = main(["generate", "--scenario", "smoke", "--resume", *smoke_args])
        assert code == 1
        assert "--out" in capsys.readouterr().err


class TestInspectLibrary:
    def test_reads_back_summary_and_chunks(self, generated_library, capsys):
        code = main(["inspect-library", str(generated_library), "--chunks"])
        assert code == 0
        out = capsys.readouterr().out
        library = PatternLibrary(generated_library)
        assert f"patterns           {library.num_patterns}" in out
        assert "fingerprint:" in out
        assert "shard" in out                        # chunk table header
        for record in library.records_in_order():
            assert f"\n{record.chunk:>5} " in out

    def test_missing_library_is_a_clean_error(self, tmp_path, capsys):
        code = main(["inspect-library", str(tmp_path / "nope")])
        assert code == 1
        assert "manifest.json" in capsys.readouterr().err


class TestListScenarios:
    def test_lists_builtins(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "paper-tables", "fewstep-tables", "dense",
                     "sparse", "rule-migration", "hotspot-expansion"):
            assert name in out

    def test_shows_sampler_for_fewstep_builtins(self, capsys):
        # Scenarios that stride the sampler say so; full-chain ones stay
        # silent (the engine line already covers their knobs).
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert out.count("sampler=6/32 steps") == 2   # fewstep-tables, hotspot-expansion
        lines = out.splitlines()
        smoke_detail = lines[next(i for i, ln in enumerate(lines)
                                  if ln.startswith("smoke")) + 1]
        assert "sampler=" not in smoke_detail

    def test_scenario_file_shows_up(self, tmp_path, capsys):
        path = tmp_path / "extra.toml"
        path.write_text('[my-run]\nextends = "smoke"\ndescription = "mine"\n')
        assert main(["list-scenarios", "--scenario-file", str(path)]) == 0
        assert "my-run" in capsys.readouterr().out

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        code = main(["generate", "--scenario", "nope"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_metrics(self, tmp_path, smoke_args, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["bench", "--scenario", "smoke", "--metrics", str(metrics_path), *smoke_args]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["scenario"] == "smoke"
        assert metrics["num_generated"] == 6
        assert metrics["sampling_samples_per_second"] > 0
        assert metrics["sampling_steps"] == metrics["sampling_chain_steps"] == 8
        assert metrics["sampling_model_evals"] >= 8
        assert "sampling stage:" in capsys.readouterr().out

    def test_steps_flag_strides_the_sampler(self, tmp_path, smoke_args, capsys):
        metrics_path = tmp_path / "strided.json"
        code = main(
            ["bench", "--scenario", "smoke", "--steps", "3",
             "--metrics", str(metrics_path), *smoke_args]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["sampling_steps"] == 3
        assert metrics["sampling_chain_steps"] == 8
        out = capsys.readouterr().out
        assert "3 of 8 steps (respaced)" in out

    def test_invalid_steps_is_a_clean_error(self, smoke_args, capsys):
        code = main(["generate", "--scenario", "smoke", "--steps", "99", *smoke_args])
        assert code == 1
        assert "sampling.steps" in capsys.readouterr().err


class TestServeWiring:
    """`repro serve` is registered and list-scenarios flags servability."""

    def test_serve_subcommand_parses(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.max_pending == 8
        assert args.max_batch == 64

    def test_serve_knobs_parse(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9999",
             "--max-pending", "3", "--max-batch", "16"]
        )
        assert (args.host, args.port) == ("0.0.0.0", 9999)
        assert (args.max_pending, args.max_batch) == (3, 16)

    def test_list_scenarios_notes_servability(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        # Every listed scenario carries a servability note; tiny presets
        # advertise the fast warmup, heavier ones warn about training cost.
        assert out.count("servable (") >= 7
        assert "fast warmup on first request" in out
        assert "heavy warmup, trains at first request" in out


class TestV2CliSurface:
    @pytest.fixture(scope="class")
    def v2_library(self, tmp_path_factory, smoke_args):
        out = tmp_path_factory.mktemp("cli-v2") / "lib"
        code = main(
            ["generate", "--scenario", "smoke", "--out", str(out),
             "--writer", "alpha", "--dedup", *smoke_args]
        )
        assert code == 0
        return out

    def test_writer_flag_builds_v2_layout(self, v2_library):
        assert (v2_library / "manifests" / "alpha.json").exists()
        assert not (v2_library / "manifest.json").exists()

    def test_writer_without_out_rejected(self, smoke_args, capsys):
        code = main(["generate", "--scenario", "smoke", "--writer", "w", *smoke_args])
        assert code == 1
        assert "--out" in capsys.readouterr().err

    def test_inspect_shows_v2_layout_and_query(self, v2_library, capsys):
        code = main(
            ["inspect-library", str(v2_library), "--chunks", "--band", "0:",
             "--limit", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "v2 (sharded" in out
        assert "alpha" in out
        assert "index" in out
        assert "query matched" in out
        assert "seq" in out

    def test_inspect_bad_band_is_a_clean_error(self, v2_library, capsys):
        assert main(["inspect-library", str(v2_library), "--band", "oops"]) == 1
        assert "--band" in capsys.readouterr().err

    def test_compact_library_roundtrip(self, v2_library, capsys):
        before = PatternLibrary(v2_library).num_patterns
        code = main(["compact-library", str(v2_library)])
        assert code == 0
        out = capsys.readouterr().out
        assert "compacted pattern library" in out
        assert PatternLibrary(v2_library).num_patterns == before
        # inspecting after compaction still works end to end
        assert main(["inspect-library", str(v2_library)]) == 0

    def test_compact_missing_library_is_a_clean_error(self, tmp_path, capsys):
        assert main(["compact-library", str(tmp_path / "nope")]) == 1
        assert "manifest" in capsys.readouterr().err

    def test_serve_parser_takes_library(self):
        args = build_parser().parse_args(["serve", "--library", "/tmp/lib"])
        assert str(args.library) == "/tmp/lib"

"""Bit-identity and kernel tests for cross-topology batched legalization.

The batched path (``SolverOptions.batch_solve``, the default) legalises a
whole chunk through :mod:`repro.legalization.batched`: one vectorized repair
sweep partitions the chunk into fast-path successes and a residual tail,
and the tail's SLSQP restart rounds share stacked rounding + verification.
Its contract is *bit-identity* with the serial per-topology reference path
for any chunk size, worker count and batch composition, in both ``auto``
and ``slsqp`` modes — asserted element-wise here on adversarial batches
(mixed shapes, duplicates, unsolvable topologies, multi-solution runs,
warm-start references, restart-heavy rule sets).
"""

import numpy as np
import pytest

from repro.legalization import (
    BatchCompiledConstraints,
    DesignRules,
    LegalizationEngine,
    LegalizationStats,
    Legalizer,
    SolverOptions,
    clear_compilation_cache,
    compilation_cache_info,
    compiled_for_topology,
    default_workers,
    set_compilation_cache_capacity,
)
from repro.legalization.batched import _project_axis_rows, _round_rows
from repro.legalization.solver import _project_axis, _round_preserving_sum
from repro.serve.metrics import ServeMetrics


def _blocky(rows, cols, blocks):
    grid = np.zeros((rows, cols), dtype=np.uint8)
    for r0, r1, c0, c1 in blocks:
        grid[r0:r1, c0:c1] = 1
    return grid


@pytest.fixture(scope="module")
def adversarial_batch(two_shape_topology):
    """Mixed shapes, duplicates, and an unsolvable all-ones topology.

    The all-ones grid is a single polygon covering the whole window, whose
    area (``pattern_size**2``) exceeds ``area_max`` under the default rules
    — every solver path must fail it, exercising the failure bookkeeping.
    """
    other = _blocky(8, 8, [(2, 5, 3, 6)])
    tall = _blocky(10, 6, [(2, 5, 1, 4)])
    wide = _blocky(8, 8, [(1, 3, 1, 7)])
    unsolvable = np.ones((4, 4), dtype=np.uint8)
    return [two_shape_topology, other, unsolvable, tall, two_shape_topology, other, wide]


def full_signatures(results):
    """Element-wise outcome of a legalisation run, timing excluded."""
    out = []
    for result in results:
        solutions = tuple(
            (
                s.success,
                s.attempts,
                s.iterations,
                s.method,
                s.message,
                s.objective,
                tuple(s.delta_x.tolist()),
                tuple(s.delta_y.tolist()),
            )
            for s in result.solutions
        )
        patterns = tuple(
            (tuple(p.delta_x.tolist()), tuple(p.delta_y.tolist()))
            for p in result.patterns
        )
        out.append((solutions, patterns))
    return out


def run_engine(
    rules,
    batch,
    *,
    mode="auto",
    batch_solve=True,
    num_solutions=1,
    workers=1,
    chunk=None,
    refs=None,
    seed=7,
):
    engine = LegalizationEngine(
        rules,
        reference_geometries=refs,
        options=SolverOptions(solver_mode=mode, batch_solve=batch_solve),
        workers=workers,
        chunk_size=chunk,
    )
    return engine.legalize_batch(batch, num_solutions=num_solutions, seed=seed)


# --------------------------------------------------------------------------- #
# bit-identity: batched vs serial reference path
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.mark.parametrize("mode", ["auto", "slsqp"])
    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_any_chunk_size_matches_serial(self, rules, adversarial_batch, mode, chunk):
        serial = run_engine(rules, adversarial_batch, mode=mode, batch_solve=False)
        batched = run_engine(
            rules, adversarial_batch, mode=mode, batch_solve=True, chunk=chunk
        )
        assert full_signatures(batched) == full_signatures(serial)

    @pytest.mark.parametrize("mode", ["auto", "slsqp"])
    def test_two_workers_match_serial(self, rules, adversarial_batch, mode):
        serial = run_engine(rules, adversarial_batch, mode=mode, batch_solve=False)
        batched = run_engine(
            rules, adversarial_batch, mode=mode, batch_solve=True, workers=2, chunk=2
        )
        assert full_signatures(batched) == full_signatures(serial)

    @pytest.mark.parametrize("mode", ["auto", "slsqp"])
    def test_multi_solution_diffpattern_l(self, rules, adversarial_batch, mode):
        serial = run_engine(
            rules, adversarial_batch, mode=mode, batch_solve=False, num_solutions=3
        )
        batched = run_engine(
            rules, adversarial_batch, mode=mode, batch_solve=True,
            num_solutions=3, chunk=3,
        )
        assert full_signatures(batched) == full_signatures(serial)

    def test_warm_start_references(self, rules, adversarial_batch):
        rng = np.random.default_rng(5)
        refs = [
            (
                rng.dirichlet(np.full(8, 2.0)) * rules.pattern_size,
                rng.dirichlet(np.full(8, 2.0)) * rules.pattern_size,
            )
            for _ in range(3)
        ]
        serial = run_engine(
            rules, adversarial_batch, batch_solve=False, refs=refs, num_solutions=2
        )
        batched = run_engine(
            rules, adversarial_batch, batch_solve=True, refs=refs,
            num_solutions=2, chunk=3,
        )
        assert full_signatures(batched) == full_signatures(serial)

    @pytest.mark.parametrize("mode", ["auto", "slsqp"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_restart_heavy_tail(self, mode, seed):
        # A tight area window the repair projection cannot satisfy: every
        # solvable topology goes through the SLSQP tail, and restart rounds
        # (fresh per-index target draws) fire for the hard cases.
        rules = DesignRules(area_min=3_000, area_max=9_000, pattern_size=2_048)
        hard = _blocky(8, 8, [(3, 5, 3, 5)])
        bigger = _blocky(8, 8, [(2, 6, 2, 6)])
        batch = [hard, bigger, hard, np.ones((4, 4), dtype=np.uint8)]
        serial = run_engine(rules, batch, mode=mode, batch_solve=False, seed=seed)
        batched = run_engine(rules, batch, mode=mode, batch_solve=True, seed=seed)
        assert full_signatures(batched) == full_signatures(serial)

    def test_tail_actually_fires(self):
        rules = DesignRules(area_min=3_000, area_max=9_000, pattern_size=2_048)
        batch = [_blocky(8, 8, [(3, 5, 3, 5)])] * 3
        engine = LegalizationEngine(rules, options=SolverOptions(solver_mode="auto"))
        engine.legalize_batch(batch, seed=0)
        assert engine.stats.batched_sweeps > 0
        assert engine.stats.batched_tail_solves > 0

    def test_empty_batch(self, rules):
        legalizer = Legalizer(rules)
        assert legalizer.legalize_batch([]) == []


# --------------------------------------------------------------------------- #
# vectorized kernels vs their serial scalar oracles
# --------------------------------------------------------------------------- #
class TestRoundingKernel:
    def test_matches_scalar_oracle(self):
        rng = np.random.default_rng(42)
        total = 2048
        for n in (3, 8, 16):
            rows = [rng.dirichlet(np.full(n, 2.0)) * total for _ in range(40)]
            # Adversarial ties: equal entries everywhere, and .5 remainders.
            rows.append(np.full(n, total / n))
            rows.append(np.floor(rng.dirichlet(np.full(n, 2.0)) * total) + 0.5)
            stacked = np.stack(rows)
            rounded = _round_rows(stacked, total)
            for got, values in zip(rounded, stacked):
                np.testing.assert_array_equal(
                    got, _round_preserving_sum(values, total)
                )

    def test_negative_deficit_rows_match_oracle(self):
        total = 100
        stacked = np.stack(
            [
                np.array([60.9, 55.2, 40.7, 3.1]),   # floors overshoot the sum
                np.array([20.2, 30.3, 25.4, 24.5]),  # ordinary positive deficit
                np.array([25.0, 25.0, 25.0, 25.0]),  # zero deficit
            ]
        )
        rounded = _round_rows(stacked, total)
        for got, values in zip(rounded, stacked):
            np.testing.assert_array_equal(got, _round_preserving_sum(values, total))
        assert (rounded.sum(axis=1) == total).all()

    def test_empty_input(self):
        assert _round_rows(np.empty((0, 5)), 100).shape == (0, 5)


class TestProjectionKernel:
    def test_matches_scalar_oracle(self, rules, two_shape_topology):
        compiled = compiled_for_topology(two_shape_topology, rules)
        lb_x, _ = compiled.repair_lower_bounds(4.0)
        total = rules.pattern_size
        rng = np.random.default_rng(3)
        rows = [rng.dirichlet(np.full(lb_x.size, 2.0)) * total for _ in range(20)]
        values, feasible = _project_axis_rows(
            np.stack(rows), np.stack([lb_x] * len(rows)), total
        )
        for i, target in enumerate(rows):
            expected = _project_axis(target, lb_x, total)
            assert feasible[i] == (expected is not None)
            if expected is not None:
                np.testing.assert_array_equal(values[i], expected)

    def test_infeasible_and_on_bound_rows(self):
        total = 100
        lower_infeasible = np.full(4, 30.0)  # bounds alone exceed the window
        lower_tight = np.full(4, 25.0)       # bounds consume it exactly
        targets = np.stack([np.full(4, 25.0), np.full(4, 25.0)])
        lowers = np.stack([lower_infeasible, lower_tight])
        values, feasible = _project_axis_rows(targets, lowers, total)
        assert not feasible[0]
        assert feasible[1]
        assert _project_axis(targets[0], lower_infeasible, total) is None
        np.testing.assert_array_equal(
            values[1], _project_axis(targets[1], lower_tight, total)
        )


class TestBatchVerify:
    def test_matches_per_topology_verify(self, rules, adversarial_batch):
        compiled = [compiled_for_topology(t, rules) for t in adversarial_batch]
        batch = BatchCompiledConstraints(compiled)
        pairs = {}
        for i, c in enumerate(compiled):
            dx = np.full(c.cols, rules.pattern_size // c.cols, dtype=np.int64)
            dx[0] += rules.pattern_size - dx.sum()
            dy = np.full(c.rows, rules.pattern_size // c.rows, dtype=np.int64)
            dy[0] += rules.pattern_size - dy.sum()
            if i % 3 == 1:
                dx[0] -= 17  # break the window-sum equality
            if i % 3 == 2:
                dx[-1] = -5  # break positivity
            pairs[i] = (dx, dy)
        verified = batch.verify_pairs(pairs)
        for i, c in enumerate(compiled):
            assert bool(verified[i]) == c.verify_integer(*pairs[i])

    def test_subset_and_empty(self, rules, adversarial_batch):
        compiled = [compiled_for_topology(t, rules) for t in adversarial_batch]
        batch = BatchCompiledConstraints(compiled)
        assert not batch.verify_pairs({}).any()
        c = compiled[0]
        dx = np.full(c.cols, rules.pattern_size // c.cols, dtype=np.int64)
        dx[0] += rules.pattern_size - dx.sum()
        dy = np.full(c.rows, rules.pattern_size // c.rows, dtype=np.int64)
        dy[0] += rules.pattern_size - dy.sum()
        verified = batch.verify_pairs({0: (dx, dy)})
        assert bool(verified[0]) == c.verify_integer(dx, dy)
        assert not verified[1:].any()

    def test_rejects_mixed_rules(self, rules, two_shape_topology):
        a = compiled_for_topology(two_shape_topology, rules)
        b = compiled_for_topology(two_shape_topology, rules.with_space_min(96))
        with pytest.raises(ValueError):
            BatchCompiledConstraints([a, b])


# --------------------------------------------------------------------------- #
# stats counters and report surfacing
# --------------------------------------------------------------------------- #
class TestStatsAndCounters:
    def test_auto_mode_counters(self, rules, adversarial_batch):
        engine = LegalizationEngine(
            rules, options=SolverOptions(solver_mode="auto"), chunk_size=3
        )
        _, report = engine.legalize_batch_with_report(
            adversarial_batch, num_solutions=2, seed=0
        )
        # One sweep per chunk per solution round, covering every topology.
        assert report.stats.batched_sweeps == report.num_chunks * 2
        assert report.stats.batched_sweep_topologies == len(adversarial_batch) * 2
        assert report.stats.fast_path_solutions > 0
        assert report.stats.batched_sweep_mean_size == pytest.approx(
            len(adversarial_batch) / report.num_chunks
        )
        assert "batched" in report.format()

    def test_slsqp_mode_has_no_sweeps(self, rules, adversarial_batch):
        engine = LegalizationEngine(rules, options=SolverOptions(solver_mode="slsqp"))
        engine.legalize_batch(adversarial_batch, seed=0)
        assert engine.stats.batched_sweeps == 0
        assert engine.stats.batched_tail_solves >= len(adversarial_batch)

    def test_serial_path_counters_stay_zero(self, rules, adversarial_batch):
        engine = LegalizationEngine(rules, options=SolverOptions(batch_solve=False))
        engine.legalize_batch(adversarial_batch, seed=0)
        assert engine.stats.batched_sweeps == 0
        assert engine.stats.batched_sweep_topologies == 0
        assert engine.stats.batched_tail_solves == 0

    def test_merge_folds_batched_counters(self):
        a = LegalizationStats(
            batched_sweeps=1, batched_sweep_topologies=4, batched_tail_solves=2
        )
        b = LegalizationStats(
            batched_sweeps=2, batched_sweep_topologies=6, batched_tail_solves=1
        )
        a.merge(b)
        assert a.batched_sweeps == 3
        assert a.batched_sweep_topologies == 10
        assert a.batched_tail_solves == 3
        assert a.batched_sweep_mean_size == pytest.approx(10 / 3)


# --------------------------------------------------------------------------- #
# satellites: env overrides, cache capacity, serve metrics, knob routing
# --------------------------------------------------------------------------- #
class TestWorkersEnvOverride:
    def test_env_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5

    def test_without_env_uses_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert 1 <= default_workers() <= 8

    @pytest.mark.parametrize("bad", ["zero", "0", "-2"])
    def test_invalid_env_raises(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError):
            default_workers()


@pytest.fixture
def restore_cache_capacity(monkeypatch):
    yield monkeypatch
    monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
    clear_compilation_cache()
    set_compilation_cache_capacity(None)


class TestCompileCacheCapacity:
    def test_capacity_evicts_lru(self, rules, restore_cache_capacity):
        clear_compilation_cache()
        set_compilation_cache_capacity(2)
        grids = [_blocky(8, 8, [(1, 1 + i, 1, 4)]) for i in range(1, 5)]
        for grid in grids:
            compiled_for_topology(grid, rules)
        info = compilation_cache_info()
        assert info["size"] == 2
        assert info["capacity"] == 2
        assert info["misses"] == 4

    def test_env_var_sets_capacity(self, rules, restore_cache_capacity):
        restore_cache_capacity.setenv("REPRO_COMPILE_CACHE", "3")
        assert set_compilation_cache_capacity(None) == 3
        assert compilation_cache_info()["capacity"] == 3

    def test_malformed_env_raises_on_explicit_resize(self, restore_cache_capacity):
        restore_cache_capacity.setenv("REPRO_COMPILE_CACHE", "lots")
        with pytest.raises(ValueError):
            set_compilation_cache_capacity(None)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_compilation_cache_capacity(0)


class TestServeMetricsLegalization:
    def test_record_and_snapshot(self):
        metrics = ServeMetrics()
        stats = LegalizationStats(
            attempted=4,
            solved=3,
            failed=1,
            solutions=5,
            fast_path_solutions=4,
            batched_sweeps=2,
            batched_sweep_topologies=8,
            batched_tail_solves=3,
        )
        metrics.record_legalization(stats)
        metrics.record_legalization(stats)
        snapshot = metrics.snapshot()
        assert snapshot["legalize_attempted"] == 8
        assert snapshot["legalize_solved"] == 6
        assert snapshot["legalize_solutions"] == 10
        assert snapshot["legalize_fast_path_fraction"] == pytest.approx(0.8)
        assert snapshot["legalize_batched_sweeps"] == 4
        assert snapshot["legalize_batched_sweep_size_mean"] == pytest.approx(4.0)
        assert snapshot["legalize_batched_tail_solves"] == 6
        assert set(snapshot["compile_cache"]) == {"hits", "misses", "size", "capacity"}

    def test_empty_snapshot_has_legalization_keys(self):
        snapshot = ServeMetrics().snapshot()
        assert snapshot["legalize_attempted"] == 0
        assert snapshot["legalize_fast_path_fraction"] == 0.0
        assert snapshot["legalize_batched_sweep_size_mean"] == 0.0


class TestKnobRouting:
    def test_config_defaults_to_batched(self):
        from repro.pipeline import DiffPatternConfig

        assert DiffPatternConfig.tiny().batch_solve is True

    def test_scenario_engine_section_lowers_bool(self):
        from repro.scenarios import builtin_registry

        spec = builtin_registry().resolve("smoke")
        plan = spec.with_overrides({"engine": {"batch_solve": False}}).lower()
        assert plan.config.batch_solve is False
        assert "batch_solve=off" in plan.summary()
        assert spec.lower().config.batch_solve is True

    def test_cli_flag_round_trip(self):
        from repro.cli import _overrides_from, build_parser

        args = build_parser().parse_args(
            ["generate", "--scenario", "smoke", "--batch-solve", "off"]
        )
        overrides = _overrides_from(args)
        assert overrides["engine"]["batch_solve"] is False
        args = build_parser().parse_args(["generate", "--scenario", "smoke"])
        assert "engine" not in _overrides_from(args)

    def test_knob_overrides_tristate(self):
        from repro.cli import knob_overrides

        assert knob_overrides(batch_solve=True) == {"engine": {"batch_solve": True}}
        assert knob_overrides() == {}

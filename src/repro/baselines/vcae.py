"""Variational convolutional auto-encoder baseline (VCAE, ref. [8]).

Same convolutional backbone as the CAE but with a proper latent prior:
the encoder predicts a mean and log-variance, training adds the KL term, and
generation samples ``z ~ N(0, I)`` before decoding and thresholding.  VCAE
produces far more diverse topologies than the CAE (its latent space is
densely sampled) but still no legality guarantee — matching its Table I row
(high diversity, low legality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Linear, Tensor
from ..utils import as_rng
from .base import TopologyGenerator, validate_matrices
from .cae import ConvDecoder, ConvEncoder, binarize


@dataclass
class VCAEConfig:
    """Training hyper-parameters of the VCAE baseline.

    ``threshold=None`` uses the adaptive per-sample threshold described in
    :func:`repro.baselines.cae.binarize`.
    """

    base_channels: int = 16
    latent_dim: int = 32
    iterations: int = 300
    batch_size: int = 16
    learning_rate: float = 1e-3
    kl_weight: float = 1e-3
    threshold: "float | None" = 0.5
    seed: int = 0


class VCAEGenerator(TopologyGenerator):
    """VCAE baseline: encoder predicts (mu, logvar); samples decode from the prior."""

    name = "VCAE"

    def __init__(self, config: "VCAEConfig | None" = None) -> None:
        self.config = config if config is not None else VCAEConfig()
        self.encoder: "ConvEncoder | None" = None
        self.mu_head: "Linear | None" = None
        self.logvar_head: "Linear | None" = None
        self.decoder: "ConvDecoder | None" = None
        self._train_fill: float = 0.5
        self._size: "int | None" = None

    # ------------------------------------------------------------------ #
    def _elbo_loss(self, batch: np.ndarray, gen: np.random.Generator) -> Tensor:
        cfg = self.config
        x = Tensor(batch[:, None].astype(np.float32))
        features = self.encoder(x)
        mu = self.mu_head(features)
        logvar = self.logvar_head(features).clip(-8.0, 8.0)
        eps = Tensor(gen.standard_normal(mu.shape).astype(np.float32))
        z = mu + (logvar * 0.5).exp() * eps
        recon = self.decoder(z)
        diff = recon - x
        recon_loss = (diff * diff).mean()
        kl = (((mu * mu) + logvar.exp() - logvar - 1.0) * 0.5).mean()
        return recon_loss + cfg.kl_weight * kl

    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "VCAEGenerator":
        cfg = self.config
        arr = validate_matrices(matrices)
        gen = as_rng(rng if rng is not None else cfg.seed)
        self._size = arr.shape[1]
        self._train_fill = float(arr.mean())
        self.encoder = ConvEncoder(self._size, cfg.base_channels, cfg.latent_dim, gen)
        self.mu_head = Linear(cfg.latent_dim, cfg.latent_dim, rng=gen)
        self.logvar_head = Linear(cfg.latent_dim, cfg.latent_dim, rng=gen)
        self.decoder = ConvDecoder(self._size, cfg.base_channels, cfg.latent_dim, gen)
        params = (
            list(self.encoder.parameters())
            + list(self.mu_head.parameters())
            + list(self.logvar_head.parameters())
            + list(self.decoder.parameters())
        )
        optimizer = Adam(params, lr=cfg.learning_rate)
        for _ in range(cfg.iterations):
            idx = gen.integers(0, arr.shape[0], size=min(cfg.batch_size, arr.shape[0]))
            loss = self._elbo_loss(arr[idx], gen)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        if self.decoder is None:
            raise RuntimeError("fit must be called before generate")
        cfg = self.config
        gen = as_rng(rng)
        outputs = []
        for start in range(0, count, cfg.batch_size):
            batch = min(cfg.batch_size, count - start)
            z = gen.standard_normal((batch, cfg.latent_dim)).astype(np.float32)
            probs = self.decoder(Tensor(z)).numpy()[:, 0]
            outputs.append(binarize(probs, cfg.threshold, self._train_fill))
        return np.concatenate(outputs, axis=0)

"""Baseline pattern generators used for the Table I comparison."""

from .base import TopologyGenerator, validate_matrices
from .cae import CAEConfig, CAEGenerator, ConvDecoder, ConvEncoder
from .legalgan import LegalGANConfig, LegalGANPostProcessor, LegalizedGenerator
from .rule_based import RuleBasedGenerator
from .transformer import (
    LayouTransformerConfig,
    LayouTransformerGenerator,
    matrix_to_tokens,
    tokens_to_matrix,
)
from .vcae import VCAEConfig, VCAEGenerator

__all__ = [
    "TopologyGenerator",
    "validate_matrices",
    "RuleBasedGenerator",
    "CAEGenerator",
    "CAEConfig",
    "ConvEncoder",
    "ConvDecoder",
    "VCAEGenerator",
    "VCAEConfig",
    "LegalGANPostProcessor",
    "LegalGANConfig",
    "LegalizedGenerator",
    "LayouTransformerGenerator",
    "LayouTransformerConfig",
    "matrix_to_tokens",
    "tokens_to_matrix",
]

"""Common interface for topology generators (DiffPattern and all baselines).

Every generator consumes a stack of binary topology matrices
``(N, H, W)`` for training and produces new matrices of the same spatial
shape.  Geometry assignment (and therefore legality) is handled outside the
generator, which is exactly the asymmetry Table I measures: DiffPattern runs
the white-box legaliser while the baselines inherit geometry heuristically.
"""

from __future__ import annotations

import abc

import numpy as np


class TopologyGenerator(abc.ABC):
    """Abstract base class for all topology generators."""

    #: human-readable name used in benchmark tables
    name: str = "generator"

    @abc.abstractmethod
    def fit(
        self,
        matrices: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
    ) -> "TopologyGenerator":
        """Train the generator on ``(N, H, W)`` binary topology matrices."""

    @abc.abstractmethod
    def generate(
        self,
        count: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Produce ``count`` new binary topology matrices ``(count, H, W)``."""


def validate_matrices(matrices: np.ndarray) -> np.ndarray:
    """Validate a training stack of binary matrices and return it as uint8."""
    arr = np.asarray(matrices)
    if arr.ndim != 3:
        raise ValueError(f"expected (N, H, W) matrices, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("training set is empty")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("topology matrices must be binary")
    return arr.astype(np.uint8)

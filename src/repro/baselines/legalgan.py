"""LegalGAN-style learned legalisation post-processor (ref. [8]).

The original LegalGAN learns to *modify* a generated topology so that it
better resembles legal training topologies.  Here the same idea is realised
as a denoising convolutional network: training pairs are built by corrupting
clean training topologies (random bit flips, which introduce bow-ties,
slivers and orphan pixels), and the network learns to map the corrupted
matrix back to the clean one.  At inference it is applied to a baseline
generator's raw output and the result is re-binarised.

As in the paper's Table I, this learned post-processing raises legality
substantially but tends to homogenise patterns, lowering diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Conv2d, Module, Sequential, SiLU, Tensor
from ..utils import as_rng
from .base import TopologyGenerator, validate_matrices


class _DenoisingCNN(Module):
    """A small fully-convolutional cleanup network."""

    def __init__(self, base_channels: int, rng) -> None:
        super().__init__()
        self.body = Sequential(
            Conv2d(1, base_channels, 3, padding=1, rng=rng),
            SiLU(),
            Conv2d(base_channels, base_channels, 3, padding=1, rng=rng),
            SiLU(),
            Conv2d(base_channels, base_channels, 3, padding=1, rng=rng),
            SiLU(),
            Conv2d(base_channels, 1, 3, padding=1, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x).sigmoid()


@dataclass
class LegalGANConfig:
    """Training hyper-parameters of the legalisation network."""

    base_channels: int = 16
    iterations: int = 300
    batch_size: int = 16
    learning_rate: float = 1e-3
    corruption_rate: float = 0.08
    threshold: float = 0.5
    seed: int = 0


class LegalGANPostProcessor:
    """Learned topology cleanup applied after a baseline generator."""

    name = "LegalGAN"

    def __init__(self, config: "LegalGANConfig | None" = None) -> None:
        self.config = config if config is not None else LegalGANConfig()
        self._model: "_DenoisingCNN | None" = None

    # ------------------------------------------------------------------ #
    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "LegalGANPostProcessor":
        """Train on (corrupted, clean) pairs built from the real topologies."""
        cfg = self.config
        arr = validate_matrices(matrices).astype(np.float32)
        gen = as_rng(rng if rng is not None else cfg.seed)
        self._model = _DenoisingCNN(cfg.base_channels, gen)
        optimizer = Adam(self._model.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.iterations):
            idx = gen.integers(0, arr.shape[0], size=min(cfg.batch_size, arr.shape[0]))
            clean = arr[idx]
            flips = (gen.random(clean.shape) < cfg.corruption_rate).astype(np.float32)
            corrupted = np.abs(clean - flips)
            prediction = self._model(Tensor(corrupted[:, None]))
            target = Tensor(clean[:, None])
            diff = prediction - target
            loss = (diff * diff).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    def legalize(self, matrices: np.ndarray) -> np.ndarray:
        """Clean up a batch of generated topologies."""
        if self._model is None:
            raise RuntimeError("fit must be called before legalize")
        arr = validate_matrices(matrices).astype(np.float32)
        cfg = self.config
        outputs = []
        for start in range(0, arr.shape[0], cfg.batch_size):
            chunk = arr[start : start + cfg.batch_size]
            probs = self._model(Tensor(chunk[:, None])).numpy()[:, 0]
            outputs.append((probs > cfg.threshold).astype(np.uint8))
        return np.concatenate(outputs, axis=0)


class LegalizedGenerator(TopologyGenerator):
    """A base generator followed by the LegalGAN post-processor.

    Covers the ``CAE+LegalGAN`` and ``VCAE+LegalGAN`` rows of Table I.
    """

    def __init__(self, base: TopologyGenerator, post: LegalGANPostProcessor) -> None:
        self.base = base
        self.post = post
        self.name = f"{base.name}+LegalGAN"

    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "LegalizedGenerator":
        gen = as_rng(rng)
        self.base.fit(matrices, rng=gen)
        self.post.fit(matrices, rng=gen)
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        gen = as_rng(rng)
        raw = self.base.generate(count, rng=gen)
        return self.post.legalize(raw)

"""Convolutional auto-encoder baseline (CAE, ref. [7] "DeePattern").

A pixel-based generator: a convolutional encoder/decoder is trained to
reconstruct training topologies; new patterns are synthesised by perturbing
the latent codes of training samples and decoding, then thresholding the
continuous output at 0.5.  The thresholding step is exactly what the paper
criticises — the model has to *learn* discreteness, and the perturbed
latents easily decode to topologies that violate design rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Conv2d, Linear, Module, SiLU, Tensor
from ..nn import functional as F
from ..utils import as_rng
from .base import TopologyGenerator, validate_matrices


def binarize(probs: np.ndarray, threshold: "float | None", train_fill: float) -> np.ndarray:
    """Binarise decoder probabilities.

    With a fixed ``threshold`` the comparison is element-wise; with
    ``threshold=None`` each sample is thresholded at its own
    ``(1 - train_fill)`` quantile so the output density matches the training
    data, which keeps an under-trained decoder from collapsing to empty clips.
    """
    if threshold is not None:
        return (probs > threshold).astype(np.uint8)
    flat = probs.reshape(probs.shape[0], -1)
    cutoffs = np.quantile(flat, 1.0 - train_fill, axis=1, keepdims=True)
    return (flat > cutoffs).astype(np.uint8).reshape(probs.shape)


class ConvEncoder(Module):
    """Two stride-2 conv blocks followed by a dense projection to the latent."""

    def __init__(self, size: int, base_channels: int, latent_dim: int, rng) -> None:
        super().__init__()
        if size % 4:
            raise ValueError("matrix size must be divisible by 4")
        self.conv1 = Conv2d(1, base_channels, 3, stride=2, padding=1, rng=rng)
        self.conv2 = Conv2d(base_channels, base_channels * 2, 3, stride=2, padding=1, rng=rng)
        self.act = SiLU()
        self.flat_dim = base_channels * 2 * (size // 4) * (size // 4)
        self.proj = Linear(self.flat_dim, latent_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.act(self.conv1(x))
        hidden = self.act(self.conv2(hidden))
        flat = hidden.reshape(hidden.shape[0], self.flat_dim)
        return self.proj(flat)


class ConvDecoder(Module):
    """Dense expansion followed by two upsample+conv blocks and a sigmoid head."""

    def __init__(self, size: int, base_channels: int, latent_dim: int, rng) -> None:
        super().__init__()
        self.size = size
        self.base_channels = base_channels
        self.expand = Linear(latent_dim, base_channels * 2 * (size // 4) * (size // 4), rng=rng)
        self.conv1 = Conv2d(base_channels * 2, base_channels, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(base_channels, base_channels, 3, padding=1, rng=rng)
        self.head = Conv2d(base_channels, 1, 3, padding=1, rng=rng)
        self.act = SiLU()

    def forward(self, z: Tensor) -> Tensor:
        quarter = self.size // 4
        hidden = self.act(self.expand(z))
        hidden = hidden.reshape(z.shape[0], self.base_channels * 2, quarter, quarter)
        hidden = self.act(self.conv1(F.upsample_nearest(hidden, 2)))
        hidden = self.act(self.conv2(F.upsample_nearest(hidden, 2)))
        return self.head(hidden).sigmoid()


@dataclass
class CAEConfig:
    """Training hyper-parameters of the CAE baseline.

    ``threshold=None`` selects an adaptive per-sample threshold such that the
    binarised output has the same fill ratio as the training set — with small
    training budgets a fixed 0.5 threshold degenerates to all-empty clips.
    """

    base_channels: int = 16
    latent_dim: int = 64
    iterations: int = 300
    batch_size: int = 16
    learning_rate: float = 1e-3
    perturbation_scale: float = 1.0
    threshold: "float | None" = 0.5
    seed: int = 0


class CAEGenerator(TopologyGenerator):
    """CAE baseline: reconstruct, perturb latents, decode, threshold."""

    name = "CAE"

    def __init__(self, config: "CAEConfig | None" = None) -> None:
        self.config = config if config is not None else CAEConfig()
        self.encoder: "ConvEncoder | None" = None
        self.decoder: "ConvDecoder | None" = None
        self._train_latents: "np.ndarray | None" = None
        self._train_fill: float = 0.5
        self._size: "int | None" = None

    # ------------------------------------------------------------------ #
    def _reconstruction_loss(self, batch: np.ndarray) -> Tensor:
        x = Tensor(batch[:, None].astype(np.float32))
        z = self.encoder(x)
        recon = self.decoder(z)
        diff = recon - x
        return (diff * diff).mean()

    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "CAEGenerator":
        cfg = self.config
        arr = validate_matrices(matrices)
        gen = as_rng(rng if rng is not None else cfg.seed)
        self._size = arr.shape[1]
        self._train_fill = float(arr.mean())
        self.encoder = ConvEncoder(self._size, cfg.base_channels, cfg.latent_dim, gen)
        self.decoder = ConvDecoder(self._size, cfg.base_channels, cfg.latent_dim, gen)
        params = list(self.encoder.parameters()) + list(self.decoder.parameters())
        optimizer = Adam(params, lr=cfg.learning_rate)
        for _ in range(cfg.iterations):
            idx = gen.integers(0, arr.shape[0], size=min(cfg.batch_size, arr.shape[0]))
            loss = self._reconstruction_loss(arr[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        # Cache latent codes of the whole training set for perturbation sampling.
        latents = []
        for start in range(0, arr.shape[0], cfg.batch_size):
            chunk = arr[start : start + cfg.batch_size]
            latents.append(self.encoder(Tensor(chunk[:, None].astype(np.float32))).numpy())
        self._train_latents = np.concatenate(latents, axis=0)
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        if self.decoder is None or self._train_latents is None:
            raise RuntimeError("fit must be called before generate")
        cfg = self.config
        gen = as_rng(rng)
        latent_std = self._train_latents.std(axis=0, keepdims=True) + 1e-6
        outputs = []
        for start in range(0, count, cfg.batch_size):
            batch = min(cfg.batch_size, count - start)
            base = self._train_latents[gen.integers(0, self._train_latents.shape[0], size=batch)]
            noise = gen.standard_normal(base.shape).astype(np.float32)
            z = base + cfg.perturbation_scale * latent_std * noise
            probs = self.decoder(Tensor(z.astype(np.float32))).numpy()[:, 0]
            outputs.append(binarize(probs, cfg.threshold, self._train_fill))
        return np.concatenate(outputs, axis=0)

"""Sequential pattern-generation baseline (LayouTransformer, ref. [9]).

LayouTransformer models a layout pattern as a token sequence describing its
polygons and trains an autoregressive transformer over those sequences.  The
reimplementation here works on the squish grid: every pattern is serialised
into the maximal horizontal runs of its shapes, each run encoded by three
tokens ``(row, col_start, col_end)``, wrapped in BOS/EOS markers.  A small
causal transformer learns the sequence distribution; sampling produces new
sequences which are rasterised back into topology matrices.

As in the paper, the sequence model produces diverse patterns but has no
explicit legalisation, so a fraction of its outputs violates design rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import runs_of_value
from ..nn import Embedding, LayerNorm, Linear, Module, Tensor
from ..nn import functional as F
from ..nn.optim import Adam
from ..utils import as_rng
from .base import TopologyGenerator, validate_matrices


# --------------------------------------------------------------------------- #
# sequence (de)serialisation
# --------------------------------------------------------------------------- #
def matrix_to_tokens(matrix: np.ndarray, grid_size: int) -> list[int]:
    """Serialise one topology matrix into a run-token sequence."""
    bos = grid_size
    eos = grid_size + 1
    tokens = [bos]
    for row in range(matrix.shape[0]):
        for start, end in runs_of_value(matrix[row], 1):
            tokens.extend([row, start, end])
    tokens.append(eos)
    return tokens


def tokens_to_matrix(tokens: list[int], grid_size: int) -> np.ndarray:
    """Rasterise a token sequence back into a topology matrix.

    Malformed triples (out-of-range indices or reversed runs) are skipped —
    the sequence model has no hard guarantee of validity, which is exactly the
    behaviour being modelled.
    """
    bos = grid_size
    eos = grid_size + 1
    matrix = np.zeros((grid_size, grid_size), dtype=np.uint8)
    body = [t for t in tokens if t != bos]
    if eos in body:
        body = body[: body.index(eos)]
    for i in range(0, len(body) - 2, 3):
        row, start, end = body[i], body[i + 1], body[i + 2]
        if 0 <= row < grid_size and 0 <= start <= end < grid_size:
            matrix[row, start : end + 1] = 1
    return matrix


# --------------------------------------------------------------------------- #
# model
# --------------------------------------------------------------------------- #
class CausalSelfAttention(Module):
    """Single-head causal self-attention over ``(B, T, D)`` sequences."""

    def __init__(self, dim: int, rng) -> None:
        super().__init__()
        self.dim = dim
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        _, seq_len, dim = x.shape
        q = self.query(x)
        k = self.key(x)
        v = self.value(x)
        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(dim))
        mask = np.triu(np.full((seq_len, seq_len), -1e9, dtype=np.float32), k=1)
        attn = F.softmax(scores + Tensor(mask), axis=-1)
        return self.proj(attn @ v)


class TransformerBlock(Module):
    """Pre-norm transformer block: attention + MLP with residuals."""

    def __init__(self, dim: int, hidden_mult: int, rng) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = CausalSelfAttention(dim, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp_in = Linear(dim, dim * hidden_mult, rng=rng)
        self.mlp_out = Linear(dim * hidden_mult, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        hidden = self.mlp_in(self.norm2(x)).silu()
        return x + self.mlp_out(hidden)


class SequenceModel(Module):
    """Token + position embeddings, N transformer blocks, vocab head."""

    def __init__(self, vocab: int, max_len: int, dim: int, layers: int, rng) -> None:
        super().__init__()
        self.vocab = vocab
        self.max_len = max_len
        self.token_embedding = Embedding(vocab, dim, rng=rng)
        self.position_embedding = Embedding(max_len, dim, rng=rng)
        self.blocks = []
        for idx in range(layers):
            block = TransformerBlock(dim, 2, rng)
            setattr(self, f"block_{idx}", block)
            self.blocks.append(block)
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, vocab, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        _, seq_len = tokens.shape
        positions = np.arange(seq_len)
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        return self.head(self.norm(x))


# --------------------------------------------------------------------------- #
# generator
# --------------------------------------------------------------------------- #
@dataclass
class LayouTransformerConfig:
    """Hyper-parameters of the sequence baseline."""

    dim: int = 32
    layers: int = 2
    iterations: int = 300
    batch_size: int = 8
    learning_rate: float = 1e-3
    max_runs: int = 24          # sequences are truncated to BOS + 3*max_runs + EOS
    temperature: float = 1.0
    seed: int = 0


class LayouTransformerGenerator(TopologyGenerator):
    """Autoregressive polygon-run sequence model."""

    name = "LayouTransformer"

    def __init__(self, config: "LayouTransformerConfig | None" = None) -> None:
        self.config = config if config is not None else LayouTransformerConfig()
        self.model: "SequenceModel | None" = None
        self._grid_size: "int | None" = None
        self._max_len: "int | None" = None

    # ------------------------------------------------------------------ #
    def _encode_batch(self, matrices: np.ndarray) -> np.ndarray:
        """Token matrix ``(N, max_len)`` padded with EOS."""
        grid_size = self._grid_size
        eos = grid_size + 1
        sequences = []
        for matrix in matrices:
            tokens = matrix_to_tokens(matrix, grid_size)[: self._max_len]
            tokens = tokens + [eos] * (self._max_len - len(tokens))
            sequences.append(tokens)
        return np.asarray(sequences, dtype=np.int64)

    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "LayouTransformerGenerator":
        cfg = self.config
        arr = validate_matrices(matrices)
        gen = as_rng(rng if rng is not None else cfg.seed)
        self._grid_size = arr.shape[1]
        self._max_len = 2 + 3 * cfg.max_runs
        vocab = self._grid_size + 2
        self.model = SequenceModel(vocab, self._max_len, cfg.dim, cfg.layers, gen)
        tokens = self._encode_batch(arr)
        optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.iterations):
            idx = gen.integers(0, tokens.shape[0], size=min(cfg.batch_size, tokens.shape[0]))
            batch = tokens[idx]
            inputs, targets = batch[:, :-1], batch[:, 1:]
            logits = self.model(inputs)
            one_hot_targets = np.zeros(logits.shape, dtype=np.float32)
            np.put_along_axis(one_hot_targets, targets[..., None], 1.0, axis=-1)
            loss = F.cross_entropy_with_logits(logits, one_hot_targets, axis=-1)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before generate")
        cfg = self.config
        gen = as_rng(rng)
        grid_size = self._grid_size
        bos, eos = grid_size, grid_size + 1
        outputs = []
        for _ in range(count):
            tokens = [bos]
            for _ in range(self._max_len - 1):
                logits = self.model(np.asarray([tokens], dtype=np.int64)).numpy()[0, -1]
                logits = logits / max(cfg.temperature, 1e-6)
                logits -= logits.max()
                probs = np.exp(logits)
                probs /= probs.sum()
                token = int(gen.choice(len(probs), p=probs))
                tokens.append(token)
                if token == eos:
                    break
            outputs.append(tokens_to_matrix(tokens, grid_size))
        return np.stack(outputs, axis=0)

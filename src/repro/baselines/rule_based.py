"""Rule-based pattern generation baseline (refs. [5], [6] of the paper).

Early approaches build a library of basic units, augment it with simple
transformations (flips and rotations) and splice randomly chosen units into a
full clip.  The resulting libraries are cheap to build but show limited
diversity — the behaviour Table I's narrative attributes to rule-based
methods and the reason learning-based generation took over.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_rng
from .base import TopologyGenerator, validate_matrices


class RuleBasedGenerator(TopologyGenerator):
    """Splices flipped/rotated quadrants of training patterns into new clips."""

    name = "RuleBased"

    def __init__(self, units_per_quadrant: int = 64) -> None:
        self.units_per_quadrant = units_per_quadrant
        self._units: "np.ndarray | None" = None
        self._size: "int | None" = None

    # ------------------------------------------------------------------ #
    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "RuleBasedGenerator":
        """Extract quadrant-sized basic units and augment them."""
        arr = validate_matrices(matrices)
        gen = as_rng(rng)
        size = arr.shape[1]
        if arr.shape[1] != arr.shape[2] or size % 2:
            raise ValueError("rule-based generator expects square matrices of even side")
        half = size // 2
        quadrants = []
        for matrix in arr:
            quadrants.extend(
                [
                    matrix[:half, :half],
                    matrix[:half, half:],
                    matrix[half:, :half],
                    matrix[half:, half:],
                ]
            )
        base = np.stack(quadrants, axis=0)
        augmented = [base, base[:, ::-1, :], base[:, :, ::-1], np.rot90(base, axes=(1, 2))]
        units = np.concatenate(augmented, axis=0)
        if units.shape[0] > self.units_per_quadrant:
            keep = gen.choice(units.shape[0], size=self.units_per_quadrant, replace=False)
            units = units[keep]
        self._units = np.ascontiguousarray(units)
        self._size = size
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Splice four random units into each new clip."""
        if self._units is None or self._size is None:
            raise RuntimeError("fit must be called before generate")
        gen = as_rng(rng)
        half = self._size // 2
        output = np.zeros((count, self._size, self._size), dtype=np.uint8)
        for i in range(count):
            picks = gen.integers(0, self._units.shape[0], size=4)
            output[i, :half, :half] = self._units[picks[0]]
            output[i, :half, half:] = self._units[picks[1]]
            output[i, half:, :half] = self._units[picks[2]]
            output[i, half:, half:] = self._units[picks[3]]
        return output

"""Synthetic layout-clip generator (substitute for the ICCAD 2014 map).

The paper's dataset is produced by tiling a real 400x160 um^2 layout map into
2048x2048 nm^2 clips.  That map is not redistributable, so this module
synthesises clips with the same statistical role: DRC-clean rectilinear
metal-layer patterns with diverse scan-line complexity.

Construction guarantees legality under the generating rule set:

* interval lengths are sampled no smaller than ``max(width_min, space_min)``,
  so any single grid cell already satisfies the width rule and any single
  empty cell between shapes satisfies the space rule;
* shapes are placed with at least one empty grid cell between distinct
  polygons (so no merging and no bow-ties);
* a shape is only committed if its area lies within ``[area_min, area_max]``.

Every generated clip is nevertheless re-verified by the DRC checker in the
test suite, so the guarantee is enforced rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Layout
from ..legalization.rules import DesignRules
from ..squish import SquishPattern
from ..utils import as_rng


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic clip generator."""

    rules: DesignRules = DesignRules()
    min_intervals: int = 6
    max_intervals: int = 14
    min_shapes: int = 2
    max_shapes: int = 8
    max_place_attempts: int = 40
    wire_probability: float = 0.6  # bias towards wire-like (1-cell-thick) shapes

    def __post_init__(self) -> None:
        if self.min_intervals < 2 or self.max_intervals < self.min_intervals:
            raise ValueError("interval bounds must satisfy 2 <= min <= max")
        if self.min_shapes < 0 or self.max_shapes < self.min_shapes:
            raise ValueError("shape bounds must satisfy 0 <= min <= max")


class SyntheticLayoutGenerator:
    """Generates DRC-clean squish patterns of a fixed window size."""

    def __init__(self, config: "SyntheticConfig | None" = None) -> None:
        self.config = config if config is not None else SyntheticConfig()

    # ------------------------------------------------------------------ #
    def _sample_intervals(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Random positive integer intervals summing to the window size.

        Every interval is at least ``max(width_min, space_min)`` so that a
        one-cell feature or gap is automatically legal.
        """
        rules = self.config.rules
        total = rules.pattern_size
        minimum = max(rules.width_min, rules.space_min)
        if count * minimum > total:
            raise ValueError(
                f"{count} intervals of at least {minimum} nm cannot fit in {total} nm"
            )
        slack = total - count * minimum
        weights = rng.dirichlet(np.full(count, 1.5))
        extra = np.floor(weights * slack).astype(np.int64)
        remainder = slack - int(extra.sum())
        order = rng.permutation(count)
        for i in range(remainder):
            extra[order[i % count]] += 1
        return extra + minimum

    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_footprint(
        kind: str, rows: int, cols: int, rng: np.random.Generator
    ) -> "list[tuple[int, int]] | None":
        """Cell offsets of a candidate shape, or None when the grid is too small."""
        if kind == "hwire":
            length = int(rng.integers(2, max(3, cols // 2) + 1))
            return [(0, c) for c in range(length)]
        if kind == "vwire":
            length = int(rng.integers(2, max(3, rows // 2) + 1))
            return [(r, 0) for r in range(length)]
        if kind == "rect":
            height = int(rng.integers(1, 4))
            width = int(rng.integers(1, 4))
            return [(r, c) for r in range(height) for c in range(width)]
        if kind == "lshape":
            arm_a = int(rng.integers(2, 4))
            arm_b = int(rng.integers(2, 4))
            cells = [(0, c) for c in range(arm_a)]
            cells += [(r, 0) for r in range(1, arm_b)]
            return cells
        return None

    def _place_shapes(
        self,
        grid: np.ndarray,
        delta_x: np.ndarray,
        delta_y: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Place shapes in-place, keeping a 1-cell margin between polygons."""
        config = self.config
        rules = config.rules
        rows, cols = grid.shape
        blocked = np.zeros_like(grid)  # cells adjacent to existing shapes
        target_shapes = int(rng.integers(config.min_shapes, config.max_shapes + 1))
        placed = 0
        attempts = 0
        kinds = ["hwire", "vwire", "rect", "lshape"]
        while placed < target_shapes and attempts < config.max_place_attempts:
            attempts += 1
            if rng.random() < config.wire_probability:
                kind = "hwire" if rng.random() < 0.5 else "vwire"
            else:
                kind = kinds[int(rng.integers(2, 4))]
            footprint = self._candidate_footprint(kind, rows, cols, rng)
            if not footprint:
                continue
            max_r = max(r for r, _ in footprint)
            max_c = max(c for _, c in footprint)
            if max_r >= rows or max_c >= cols:
                continue
            row0 = int(rng.integers(0, rows - max_r))
            col0 = int(rng.integers(0, cols - max_c))
            cells = [(row0 + r, col0 + c) for r, c in footprint]
            if any(grid[r, c] or blocked[r, c] for r, c in cells):
                continue
            area = sum(int(delta_x[c]) * int(delta_y[r]) for r, c in cells)
            if not rules.area_min <= area <= rules.area_max:
                continue
            for r, c in cells:
                grid[r, c] = 1
            for r, c in cells:
                for nr in range(max(0, r - 1), min(rows, r + 2)):
                    for nc in range(max(0, c - 1), min(cols, c + 2)):
                        if not grid[nr, nc]:
                            blocked[nr, nc] = 1
            placed += 1

    # ------------------------------------------------------------------ #
    def generate_pattern(self, rng: "int | np.random.Generator | None" = None) -> SquishPattern:
        """Generate one DRC-clean squish pattern."""
        gen = as_rng(rng)
        config = self.config
        while True:
            cols = int(gen.integers(config.min_intervals, config.max_intervals + 1))
            rows = int(gen.integers(config.min_intervals, config.max_intervals + 1))
            delta_x = self._sample_intervals(cols, gen)
            delta_y = self._sample_intervals(rows, gen)
            grid = np.zeros((rows, cols), dtype=np.uint8)
            self._place_shapes(grid, delta_x, delta_y, gen)
            if grid.sum() == 0:
                continue  # empty clips carry no information; resample
            return SquishPattern(grid, delta_x, delta_y)

    def generate_library(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> list[SquishPattern]:
        """Generate ``count`` independent DRC-clean patterns."""
        gen = as_rng(rng)
        return [self.generate_pattern(gen) for _ in range(count)]

    def generate_layouts(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> list[Layout]:
        """Generate patterns and decode them into layout clips."""
        return [pattern.to_layout() for pattern in self.generate_library(count, rng)]

"""Topology-tensor dataset used to train the generators.

Mirrors the paper's data pipeline: layout clips -> squish patterns -> padded
fixed-size topology matrices -> deep-squish topology tensors, plus the pool of
real geometric-vector pairs used to warm-start the legaliser (``Solving-E``)
and a train/test split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..legalization.rules import DesignRules
from ..squish import PaddingError, SquishPattern, fold, pad_to_size
from ..utils import as_rng
from .synthetic import SyntheticConfig, SyntheticLayoutGenerator


@dataclass
class DatasetConfig:
    """Shape and split options of the topology dataset.

    ``matrix_size`` is the padded topology-matrix side (32*sqrt(16)=128 in the
    paper: a 16x32x32 tensor).  Here the default is a laptop-scale 16x8x8
    tensor (matrix 32x32, 16 channels); the paper-scale values remain valid
    configuration choices.
    """

    matrix_size: int = 32
    channels: int = 16
    test_fraction: float = 0.2
    rules: DesignRules = DesignRules()

    def __post_init__(self) -> None:
        if self.matrix_size <= 0:
            raise ValueError("matrix_size must be positive")
        side = math.isqrt(self.channels)
        if side * side != self.channels:
            raise ValueError("channels must be a perfect square")
        if self.matrix_size % side:
            raise ValueError("matrix_size must be divisible by sqrt(channels)")
        if not 0.0 <= self.test_fraction < 1.0:
            raise ValueError("test_fraction must lie in [0, 1)")

    @property
    def tensor_size(self) -> int:
        """Spatial side M of the folded topology tensor."""
        return self.matrix_size // math.isqrt(self.channels)


@dataclass
class LayoutPatternDataset:
    """Container of processed patterns ready for model training."""

    config: DatasetConfig
    patterns: list[SquishPattern] = field(default_factory=list)
    padded: list[SquishPattern] = field(default_factory=list)
    train_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    test_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    skipped: int = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_patterns(
        cls,
        patterns: list[SquishPattern],
        config: "DatasetConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> "LayoutPatternDataset":
        """Pad raw patterns to the configured matrix size and split them.

        Patterns that cannot be losslessly extended to the target size (more
        scan lines than the matrix has cells) are skipped and counted.
        """
        cfg = config if config is not None else DatasetConfig()
        gen = as_rng(rng)
        dataset = cls(config=cfg)
        for pattern in patterns:
            try:
                dataset.padded.append(pad_to_size(pattern, cfg.matrix_size))
            except PaddingError:
                dataset.skipped += 1
                continue
            dataset.patterns.append(pattern)
        count = len(dataset.padded)
        order = gen.permutation(count)
        test_count = int(round(count * cfg.test_fraction))
        dataset.test_indices = np.sort(order[:test_count])
        dataset.train_indices = np.sort(order[test_count:])
        return dataset

    @classmethod
    def synthesize(
        cls,
        count: int,
        config: "DatasetConfig | None" = None,
        synthetic_config: "SyntheticConfig | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> "LayoutPatternDataset":
        """End-to-end: run the synthetic generator then build the dataset."""
        cfg = config if config is not None else DatasetConfig()
        gen = as_rng(rng)
        syn_cfg = synthetic_config if synthetic_config is not None else SyntheticConfig(rules=cfg.rules)
        generator = SyntheticLayoutGenerator(syn_cfg)
        patterns = generator.generate_library(count, gen)
        return cls.from_patterns(patterns, cfg, gen)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.padded)

    def _select(self, split: str) -> np.ndarray:
        if split == "train":
            return self.train_indices
        if split == "test":
            return self.test_indices
        if split == "all":
            return np.arange(len(self.padded))
        raise ValueError(f"unknown split {split!r} (use 'train', 'test' or 'all')")

    def topology_matrices(self, split: str = "train") -> np.ndarray:
        """Padded binary matrices, shape ``(N, matrix_size, matrix_size)``."""
        indices = self._select(split)
        return np.stack([self.padded[i].topology for i in indices], axis=0)

    def topology_tensors(self, split: str = "train") -> np.ndarray:
        """Deep-squish folded tensors, shape ``(N, C, M, M)`` with int entries."""
        matrices = self.topology_matrices(split)
        return np.stack([fold(m, self.config.channels) for m in matrices], axis=0).astype(np.int64)

    def reference_geometries(self, split: str = "train") -> list[tuple[np.ndarray, np.ndarray]]:
        """(delta_x, delta_y) pairs of the padded patterns (Solving-E pool)."""
        indices = self._select(split)
        return [(self.padded[i].delta_x.copy(), self.padded[i].delta_y.copy()) for i in indices]

    def real_patterns(self, split: str = "all") -> list[SquishPattern]:
        """The original (unpadded) squish patterns of a split."""
        indices = self._select(split)
        return [self.patterns[i] for i in indices]

"""Dataset construction: synthetic layout clips and topology tensors."""

from .dataset import DatasetConfig, LayoutPatternDataset
from .synthetic import SyntheticConfig, SyntheticLayoutGenerator

__all__ = [
    "SyntheticConfig",
    "SyntheticLayoutGenerator",
    "DatasetConfig",
    "LayoutPatternDataset",
]

"""Pattern complexity (Section II-C, Definition preceding Eq. 4).

The complexity of a layout pattern is the pair ``(cx, cy)``: the number of
scan lines along the x and y axes minus one, i.e. the number of distinct
intervals of the *canonical* squish representation.  Padded patterns must be
canonicalised first, otherwise artificial scan lines introduced by the
fixed-size extension would inflate the complexity.
"""

from __future__ import annotations

import numpy as np

from ..squish import SquishPattern, canonicalize


def topology_complexity(topology: np.ndarray) -> tuple[int, int]:
    """Complexity of a bare topology matrix.

    The matrix is reduced to its canonical form (no two adjacent identical
    rows/columns) by pairing it with unit geometric vectors, then the interval
    counts minus one are returned as ``(cx, cy)``.
    """
    arr = np.asarray(topology, dtype=np.uint8)
    rows, cols = arr.shape
    pattern = SquishPattern(
        arr, np.ones(cols, dtype=np.int64), np.ones(rows, dtype=np.int64)
    )
    return pattern_complexity(pattern)


def pattern_complexity(pattern: SquishPattern) -> tuple[int, int]:
    """Complexity ``(cx, cy)`` of a squish pattern."""
    canonical = canonicalize(pattern)
    cx, cy = canonical.complexity
    return max(cx - 1, 0), max(cy - 1, 0)


def complexity_distribution(
    complexities: "list[tuple[int, int]]", bins: "int | None" = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Joint empirical distribution of complexities.

    Returns ``(probabilities, x_values, y_values)`` where ``probabilities``
    is a 2-D array over the observed ``cx`` (rows) and ``cy`` (columns)
    values.  With ``bins`` set, a fixed ``bins x bins`` grid starting at zero
    is used instead (as in Fig. 9, which uses a 128x128 grid).
    """
    if not complexities:
        raise ValueError("complexity list is empty")
    arr = np.asarray(complexities, dtype=np.int64)
    if bins is None:
        x_values = np.unique(arr[:, 0])
        y_values = np.unique(arr[:, 1])
    else:
        x_values = np.arange(bins)
        y_values = np.arange(bins)
    counts = np.zeros((len(x_values), len(y_values)), dtype=np.float64)
    x_index = {v: i for i, v in enumerate(x_values.tolist())}
    y_index = {v: i for i, v in enumerate(y_values.tolist())}
    for cx, cy in arr:
        xi = x_index.get(int(cx))
        yi = y_index.get(int(cy))
        if xi is not None and yi is not None:
            counts[xi, yi] += 1.0
    total = counts.sum()
    probabilities = counts / total if total else counts
    return probabilities, x_values, y_values

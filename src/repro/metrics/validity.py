"""Autoencoder-based pattern "validity" score (Section IV-F discussion).

Previous work [8] scores generated patterns by how well a pre-trained
encoder–decoder reconstructs them: patterns similar to the training set score
high.  The paper argues this metric rewards overfitting and declines to use
it; we implement it anyway so the discussion can be reproduced quantitatively
(e.g. showing that held-out *real* patterns can score worse than memorised
generated ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Linear, Module, Sequential, Sigmoid, SiLU, Tensor
from ..utils import as_rng


class _MLPAutoencoder(Module):
    """A small fully-connected autoencoder over flattened topology matrices."""

    def __init__(self, input_dim: int, hidden_dim: int, latent_dim: int, rng) -> None:
        super().__init__()
        self.encoder = Sequential(
            Linear(input_dim, hidden_dim, rng=rng),
            SiLU(),
            Linear(hidden_dim, latent_dim, rng=rng),
            SiLU(),
        )
        self.decoder = Sequential(
            Linear(latent_dim, hidden_dim, rng=rng),
            SiLU(),
            Linear(hidden_dim, input_dim, rng=rng),
            Sigmoid(),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))


@dataclass
class ValidityConfig:
    """Training configuration of the validity scorer."""

    hidden_dim: int = 128
    latent_dim: int = 32
    iterations: int = 200
    batch_size: int = 32
    learning_rate: float = 1e-3
    threshold_quantile: float = 0.95
    seed: int = 0


class ValidityScorer:
    """Scores how "valid" (training-set-like) generated topologies look.

    ``fit`` trains the autoencoder on training topologies and calibrates a
    reconstruction-error threshold at the configured quantile; ``score``
    returns the fraction of patterns whose error falls below that threshold.
    """

    def __init__(self, config: "ValidityConfig | None" = None) -> None:
        self.config = config if config is not None else ValidityConfig()
        self._model: "_MLPAutoencoder | None" = None
        self._threshold: "float | None" = None
        self._input_dim: "int | None" = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _flatten(topologies: np.ndarray) -> np.ndarray:
        arr = np.asarray(topologies, dtype=np.float32)
        if arr.ndim != 3:
            raise ValueError(f"expected (N, H, W) topologies, got shape {arr.shape}")
        return arr.reshape(arr.shape[0], -1)

    def _errors(self, flat: np.ndarray) -> np.ndarray:
        assert self._model is not None
        recon = self._model(Tensor(flat)).numpy()
        return ((recon - flat) ** 2).mean(axis=1)

    # ------------------------------------------------------------------ #
    def fit(self, topologies: np.ndarray, rng: "int | np.random.Generator | None" = None) -> "ValidityScorer":
        """Train on real topologies and calibrate the error threshold."""
        cfg = self.config
        gen = as_rng(rng if rng is not None else cfg.seed)
        flat = self._flatten(topologies)
        self._input_dim = flat.shape[1]
        self._model = _MLPAutoencoder(flat.shape[1], cfg.hidden_dim, cfg.latent_dim, gen)
        optimizer = Adam(self._model.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.iterations):
            idx = gen.integers(0, flat.shape[0], size=min(cfg.batch_size, flat.shape[0]))
            batch = Tensor(flat[idx])
            recon = self._model(batch)
            diff = recon - batch
            loss = (diff * diff).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        self._threshold = float(np.quantile(self._errors(flat), cfg.threshold_quantile))
        return self

    def score(self, topologies: np.ndarray) -> float:
        """Fraction of topologies whose reconstruction error is under threshold."""
        if self._model is None or self._threshold is None:
            raise RuntimeError("ValidityScorer.fit must be called before score")
        flat = self._flatten(topologies)
        if flat.shape[1] != self._input_dim:
            raise ValueError("topology size differs from the training topologies")
        errors = self._errors(flat)
        return float((errors <= self._threshold).mean())

"""Pattern-library diversity (Definition 1 / Eq. 4 of the paper).

Diversity ``H`` is the Shannon entropy of the joint distribution of pattern
complexities ``(cx, cy)`` over the library.  A larger ``H`` means the library
covers a wider variety of pattern structures.
"""

from __future__ import annotations

import numpy as np

from ..squish import SquishPattern
from .complexity import pattern_complexity, topology_complexity


def shannon_entropy(probabilities: np.ndarray, base: float = 2.0) -> float:
    """Entropy of a (possibly unnormalised) non-negative distribution."""
    probs = np.asarray(probabilities, dtype=np.float64).ravel()
    if (probs < 0).any():
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if total <= 0:
        return 0.0
    probs = probs / total
    nonzero = probs[probs > 0]
    return float(-(nonzero * (np.log(nonzero) / np.log(base))).sum())


def diversity_from_complexities(
    complexities: "list[tuple[int, int]]", base: float = 2.0
) -> float:
    """Diversity H of a library described by its complexity pairs."""
    if not complexities:
        return 0.0
    pairs, counts = np.unique(np.asarray(complexities, dtype=np.int64), axis=0, return_counts=True)
    del pairs
    return shannon_entropy(counts.astype(np.float64), base=base)


def pattern_diversity(patterns: "list[SquishPattern]", base: float = 2.0) -> float:
    """Diversity H of a library of squish patterns."""
    return diversity_from_complexities([pattern_complexity(p) for p in patterns], base=base)


def topology_diversity(topologies: "list[np.ndarray] | np.ndarray", base: float = 2.0) -> float:
    """Diversity H of a set of bare topology matrices.

    Used for the 'Generated Topology' column of Table I, where geometric
    vectors have not been assigned yet.
    """
    return diversity_from_complexities(
        [topology_complexity(t) for t in topologies], base=base
    )

"""Streaming metric accumulators for chunked generation runs.

The batch metrics (:func:`~repro.metrics.pattern_diversity`,
:func:`~repro.metrics.complexity_distribution`) need the whole library in
memory at once.  The streaming generation graph folds one chunk at a time
into a :class:`ComplexityHistogram` instead: an incremental count table over
complexity pairs ``(cx, cy)`` whose diversity is *bit-identical* to the batch
computation over the same multiset of pairs — the counts are laid out in the
same lexicographic order ``np.unique(..., axis=0)`` would produce before the
entropy sum, so not even the floating-point summation order differs.
"""

from __future__ import annotations

import numpy as np

from .diversity import shannon_entropy


class ComplexityHistogram:
    """Incremental joint histogram of pattern complexities ``(cx, cy)``.

    Supports streaming insertion, merging (for sharded accumulation), exact
    diversity evaluation at any point, and a JSON-safe record form used by
    the :class:`~repro.library.PatternLibrary` manifest for resume.
    """

    def __init__(
        self, pairs: "list[tuple[int, int]] | None" = None
    ) -> None:
        self._counts: dict[tuple[int, int], int] = {}
        self._total = 0
        if pairs:
            self.add_pairs(pairs)

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def add(self, cx: int, cy: int, count: int = 1) -> None:
        """Record ``count`` occurrences of complexity ``(cx, cy)``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        key = (int(cx), int(cy))
        self._counts[key] = self._counts.get(key, 0) + int(count)
        self._total += int(count)

    def add_pairs(self, pairs: "list[tuple[int, int]]") -> None:
        """Record a batch of complexity pairs."""
        for cx, cy in pairs:
            self.add(cx, cy)

    def merge(self, other: "ComplexityHistogram") -> "ComplexityHistogram":
        """Fold another histogram into this one (shard aggregation)."""
        for (cx, cy), count in other._counts.items():
            self.add(cx, cy, count)
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Number of recorded patterns (with multiplicity)."""
        return self._total

    @property
    def num_distinct(self) -> int:
        """Number of distinct complexity pairs observed."""
        return len(self._counts)

    def count(self, cx: int, cy: int) -> int:
        """Occurrences of one complexity pair."""
        return self._counts.get((int(cx), int(cy)), 0)

    def pairs(self) -> list[tuple[int, int]]:
        """The recorded pairs expanded with multiplicity, in sorted order."""
        expanded: list[tuple[int, int]] = []
        for key in sorted(self._counts):
            expanded.extend([key] * self._counts[key])
        return expanded

    def max_coordinate(self) -> int:
        """Largest ``cx`` or ``cy`` observed (``-1`` when empty).

        O(distinct) — use this instead of ``max(pairs())`` so sizing a
        histogram grid never expands the multiset.
        """
        return max((max(key) for key in self._counts), default=-1)

    def __len__(self) -> int:
        return self._total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexityHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ComplexityHistogram(total={self._total}, "
            f"distinct={self.num_distinct})"
        )

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def diversity(self, base: float = 2.0) -> float:
        """Diversity H (Eq. 4), bit-identical to the batch computation.

        ``diversity_from_complexities`` runs the entropy over counts ordered
        by ``np.unique(pairs, axis=0)`` — lexicographic in ``(cx, cy)`` —
        so emitting the counts in sorted-key order reproduces the exact same
        float64 summation.
        """
        if not self._counts:
            return 0.0
        counts = np.array(
            [self._counts[key] for key in sorted(self._counts)], dtype=np.int64
        )
        return shannon_entropy(counts.astype(np.float64), base=base)

    def distribution(
        self, bins: "int | None" = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Joint empirical distribution, matching
        :func:`~repro.metrics.complexity_distribution` on the same pairs.

        Built directly from the count table (O(distinct) memory) — the
        counts are exact integers, so the probabilities equal the batch
        function's output bit for bit without expanding the multiset.
        """
        if not self._counts:
            raise ValueError("complexity list is empty")
        keys = sorted(self._counts)
        if bins is None:
            x_values = np.unique(np.asarray([cx for cx, _ in keys], dtype=np.int64))
            y_values = np.unique(np.asarray([cy for _, cy in keys], dtype=np.int64))
        else:
            x_values = np.arange(bins)
            y_values = np.arange(bins)
        counts = np.zeros((len(x_values), len(y_values)), dtype=np.float64)
        x_index = {v: i for i, v in enumerate(x_values.tolist())}
        y_index = {v: i for i, v in enumerate(y_values.tolist())}
        for (cx, cy), count in self._counts.items():
            xi = x_index.get(cx)
            yi = y_index.get(cy)
            if xi is not None and yi is not None:
                counts[xi, yi] += float(count)
        total = counts.sum()
        probabilities = counts / total if total else counts
        return probabilities, x_values, y_values

    # ------------------------------------------------------------------ #
    # persistence (manifest records)
    # ------------------------------------------------------------------ #
    def as_records(self) -> list[list[int]]:
        """JSON-safe ``[cx, cy, count]`` rows, sorted by key."""
        return [[cx, cy, self._counts[(cx, cy)]] for cx, cy in sorted(self._counts)]

    @classmethod
    def from_records(cls, records: "list[list[int]]") -> "ComplexityHistogram":
        """Rebuild a histogram from :meth:`as_records` output."""
        histogram = cls()
        for cx, cy, count in records:
            histogram.add(cx, cy, count)
        return histogram

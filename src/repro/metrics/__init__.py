"""Evaluation metrics: pattern complexity, library diversity, validity."""

from .complexity import (
    complexity_distribution,
    pattern_complexity,
    topology_complexity,
)
from .diversity import (
    diversity_from_complexities,
    pattern_diversity,
    shannon_entropy,
    topology_diversity,
)
from .streaming import ComplexityHistogram
from .validity import ValidityConfig, ValidityScorer

__all__ = [
    "pattern_complexity",
    "topology_complexity",
    "complexity_distribution",
    "ComplexityHistogram",
    "shannon_entropy",
    "diversity_from_complexities",
    "pattern_diversity",
    "topology_diversity",
    "ValidityScorer",
    "ValidityConfig",
]

"""Noise schedules for the diffusion forward process.

The paper (Eq. 8) uses a linearly increasing schedule for the flip
probability ``beta_k``, from ``beta_1 = 0.01`` to ``beta_K = 0.5`` over
``K = 1000`` steps, so the forward chain converges to the uniform stationary
distribution.  A cosine schedule is provided as an extension point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseSchedule:
    """A sequence of per-step noise levels ``beta_1 .. beta_K``.

    ``betas[k-1]`` is the flip probability applied at diffusion step ``k``.
    """

    betas: np.ndarray

    def __post_init__(self) -> None:
        betas = np.asarray(self.betas, dtype=np.float64)
        if betas.ndim != 1 or betas.size == 0:
            raise ValueError("betas must be a non-empty 1-D array")
        if (betas <= 0.0).any() or (betas >= 1.0).any():
            raise ValueError("every beta must lie strictly inside (0, 1)")
        object.__setattr__(self, "betas", betas)

    @property
    def num_steps(self) -> int:
        """Number of diffusion steps K."""
        return int(self.betas.shape[0])

    def beta(self, k: int) -> float:
        """Noise level at step ``k`` (1-indexed, as in the paper)."""
        if not 1 <= k <= self.num_steps:
            raise IndexError(f"step k={k} outside [1, {self.num_steps}]")
        return float(self.betas[k - 1])


def linear_schedule(num_steps: int, beta_start: float = 0.01, beta_end: float = 0.5) -> NoiseSchedule:
    """Paper Eq. (8): ``beta_k`` increases linearly from beta_1 to beta_K."""
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if num_steps == 1:
        return NoiseSchedule(np.asarray([beta_end], dtype=np.float64))
    steps = np.arange(num_steps, dtype=np.float64)
    betas = steps * (beta_end - beta_start) / (num_steps - 1) + beta_start
    return NoiseSchedule(betas)


def cosine_schedule(num_steps: int, beta_max: float = 0.5, s: float = 0.008) -> NoiseSchedule:
    """Cosine-shaped schedule (Nichol & Dhariwal style), capped at ``beta_max``.

    Not used by the paper's main experiments; provided as a documented
    extension for ablations on schedule shape.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    ks = np.arange(num_steps + 1, dtype=np.float64)
    alphas_bar = np.cos((ks / num_steps + s) / (1 + s) * np.pi / 2) ** 2
    betas = 1.0 - alphas_bar[1:] / alphas_bar[:-1]
    betas = np.clip(betas, 1e-5, beta_max)
    return NoiseSchedule(betas)

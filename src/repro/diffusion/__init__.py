"""Discrete (and continuous-ablation) diffusion models for topology tensors."""

from .d3pm import DiffusionConfig, DiscreteDiffusion
from .gaussian import (
    GaussianDiffusionConfig,
    GaussianTopologyDiffusion,
    gaussian_unet_config,
)
from .respacing import RespacedSchedule, respaced_timesteps
from .schedule import NoiseSchedule, cosine_schedule, linear_schedule
from .transition import (
    DiscreteTransitionModel,
    binary_flip_probability,
    categorical_from_uniforms,
    one_hot,
    sample_categorical,
)

__all__ = [
    "NoiseSchedule",
    "linear_schedule",
    "cosine_schedule",
    "DiscreteTransitionModel",
    "sample_categorical",
    "categorical_from_uniforms",
    "one_hot",
    "binary_flip_probability",
    "RespacedSchedule",
    "respaced_timesteps",
    "DiffusionConfig",
    "DiscreteDiffusion",
    "GaussianDiffusionConfig",
    "GaussianTopologyDiffusion",
    "gaussian_unet_config",
]

"""Few-step respaced sampling schedules for the discrete D3PM chain.

The full reverse sampler walks every step of the ``K``-step chain, calling
the denoising network once per step.  Because the forward process is a
Markov chain of known transition matrices, any *subsequence* of timesteps
``τ_1 < τ_2 < ... < τ_S = K`` induces an equally valid (coarser) chain whose
jump transitions are products of the per-step matrices — the discrete
analogue of DDIM respacing (Austin et al., NeurIPS 2021; Nichol & Dhariwal's
timestep-respacing trick).  Sampling the respaced chain needs only ``S``
network evaluations instead of ``K``.

For a jump from retained step ``b`` down to retained step ``a < b`` the
composed transition and jump posterior are

.. math::

    Q_{a→b} = Q_{a+1} Q_{a+2} \\cdots Q_b,
    \\qquad
    q(x_a = s \\mid x_b = v, x_0 = i)
        = \\frac{Q_{a→b}[s, v] \\; \\bar Q_a[i, s]}{\\bar Q_b[i, v]},

exactly the per-step posterior of Eq. (12) with ``Q_b`` replaced by the
product matrix.  :class:`RespacedSchedule` precomputes one such ``(S, S, S)``
lookup table per jump — the same cheap gather shape the full-chain sampler
already uses — and renormalizes composed tables against float drift.

**Bit-identity contract.**  A single-step jump (``b = a + 1``) delegates to
:meth:`~repro.diffusion.transition.DiscreteTransitionModel.posterior_table`,
so a schedule with ``steps == K`` reproduces the full chain *bit for bit*:
same tables, same number and order of RNG draws, hence the exact samples the
chunk-invariance contract of :class:`~repro.pipeline.SamplingEngine`
guarantees (see ``docs/sampling.md``).
"""

from __future__ import annotations

import numpy as np

from .transition import DiscreteTransitionModel

__all__ = ["RespacedSchedule", "respaced_timesteps"]


def respaced_timesteps(chain_steps: int, steps: int) -> tuple[int, ...]:
    """Evenly spaced retained timesteps for a ``steps``-step respaced walk.

    Parameters
    ----------
    chain_steps:
        Length ``K`` of the trained chain.
    steps:
        Number of retained timesteps (network evaluations per sample).

    Returns
    -------
    tuple[int, ...]
        Strictly increasing timesteps ``τ_1 < ... < τ_S`` with
        ``τ_S == chain_steps``; for ``steps == chain_steps`` this is exactly
        ``(1, 2, ..., K)``, and for ``steps == 1`` it is ``(K,)`` (one jump
        straight from the stationary draw to the clean sample).

    Raises
    ------
    ValueError
        If ``steps`` is not an integer in ``[1, chain_steps]``.
    """
    if chain_steps < 1:
        raise ValueError("chain_steps must be >= 1")
    if not isinstance(steps, (int, np.integer)) or isinstance(steps, bool):
        raise ValueError(f"steps must be an integer, got {steps!r}")
    if not 1 <= steps <= chain_steps:
        raise ValueError(
            f"steps must lie in [1, {chain_steps}] (the trained chain length), "
            f"got {steps}"
        )
    # Descending linspace anchors the first retained step at K for any count
    # (including steps == 1); consecutive values differ by >= 1 so rounding
    # keeps them strictly monotone.
    taus = np.rint(np.linspace(chain_steps, 1, int(steps)))[::-1].astype(int)
    return tuple(int(t) for t in taus)


class RespacedSchedule:
    """A (possibly strided) reverse-sampling schedule over a trained chain.

    Parameters
    ----------
    transition:
        The :class:`~repro.diffusion.transition.DiscreteTransitionModel`
        whose cached cumulative matrices the jump tables are composed from.
    steps:
        Number of retained timesteps; ``None`` keeps the full chain.
        Mutually exclusive with ``timesteps``.
    timesteps:
        Explicit strictly-increasing retained timesteps; must end at the
        chain length ``K`` (the reverse walk starts from the stationary
        ``x_K``).  Mutually exclusive with ``steps``.

    Raises
    ------
    ValueError
        If both ``steps`` and ``timesteps`` are given, or either fails
        validation.
    """

    def __init__(
        self,
        transition: DiscreteTransitionModel,
        steps: "int | None" = None,
        timesteps: "tuple[int, ...] | list[int] | None" = None,
    ) -> None:
        if steps is not None and timesteps is not None:
            raise ValueError("pass either steps or timesteps, not both")
        chain_steps = transition.num_steps
        if timesteps is None:
            taus = respaced_timesteps(chain_steps, chain_steps if steps is None else steps)
        else:
            taus = tuple(int(t) for t in timesteps)
            if not taus:
                raise ValueError("timesteps must be non-empty")
            if any(not 1 <= t <= chain_steps for t in taus):
                raise ValueError(f"every timestep must lie in [1, {chain_steps}]")
            if any(b <= a for a, b in zip(taus, taus[1:])):
                raise ValueError("timesteps must be strictly increasing")
            if taus[-1] != chain_steps:
                raise ValueError(
                    f"the last timestep must be the chain length {chain_steps} "
                    "(the reverse walk starts from the stationary x_K), "
                    f"got {taus[-1]}"
                )
        self.transition = transition
        #: Retained timesteps, ascending; ``timesteps[-1] == chain_steps``.
        self.timesteps: tuple[int, ...] = taus
        #: Reverse jumps ``(cur, prev)`` in sampling order, ending at
        #: ``(timesteps[0], 0)`` — the final jump that emits ``x_0``.
        self.jumps: tuple[tuple[int, int], ...] = tuple(
            zip(taus[::-1], (taus[-2::-1] + (0,)))
        )
        # Composed jump tables, keyed like the transition's per-step cache.
        self._tables: dict[tuple[int, int, str], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_steps(self) -> int:
        """Retained steps walked per sample (= network evaluations)."""
        return len(self.timesteps)

    @property
    def chain_steps(self) -> int:
        """Length ``K`` of the underlying trained chain."""
        return self.transition.num_steps

    @property
    def is_full(self) -> bool:
        """``True`` when every chain step is retained (no striding)."""
        return self.num_steps == self.chain_steps

    # ------------------------------------------------------------------ #
    def jump_matrix(self, cur: int, prev: int) -> np.ndarray:
        """Composed transition ``Q_{prev→cur} = Q_{prev+1} ... Q_cur``.

        Raises
        ------
        ValueError
            Unless ``0 <= prev < cur <= chain_steps``.
        """
        if not 0 <= prev < cur <= self.chain_steps:
            raise ValueError(
                f"jump must satisfy 0 <= prev < cur <= {self.chain_steps}, "
                f"got prev={prev}, cur={cur}"
            )
        matrix = np.eye(self.transition.num_states)
        for k in range(prev + 1, cur + 1):
            matrix = matrix @ self.transition.q_matrix(k)
        return matrix

    def posterior_table(
        self, cur: int, prev: int, dtype: "np.dtype | type" = np.float64
    ) -> np.ndarray:
        """Cached jump-posterior lookup table for the jump ``cur → prev``.

        ``table[v, i, s] = q(x_prev = s | x_cur = v, x_0 = i)`` — the same
        ``(S, S, S)`` gather shape as the full chain's per-step table, so the
        sampler's mixing kernel is unchanged.  Single-step jumps return the
        transition model's own cached table (bit-identical to the full
        chain); composed jumps build the product matrix once and renormalize
        the mixture rows against accumulated float error.

        Raises
        ------
        ValueError
            Unless ``1 <= prev < cur <= chain_steps`` (the final jump to
            ``prev == 0`` needs no table: the mixture collapses to the
            model's ``p_θ(x_0 | x_cur)`` directly).
        """
        if prev < 1:
            raise ValueError(
                "the jump to prev=0 emits x_0 from the model posterior and "
                "has no lookup table"
            )
        if cur == prev + 1:
            return self.transition.posterior_table(cur, dtype=dtype)
        key = (cur, prev, np.dtype(dtype).str)
        table = self._tables.get(key)
        if table is None:
            q_jump = self.jump_matrix(cur, prev)
            q_bar_prev = self.transition.q_bar_matrix(prev)
            q_bar_cur = self.transition.q_bar_matrix(cur)
            # numerator[v, i, s] = Q_{prev→cur}[s, v] * Q̄_prev[i, s]
            numerator = q_jump.T[:, None, :] * q_bar_prev[None, :, :]
            # denominator[v, i] = Q̄_cur[i, v]; exact up to float error since
            # Q̄_cur = Q̄_prev Q_{prev→cur} — renormalize the residual away.
            table = numerator / q_bar_cur.T[:, :, None]
            table /= table.sum(axis=-1, keepdims=True)
            table = table.astype(dtype, copy=False)
            table.setflags(write=False)
            self._tables[key] = table
        return table

"""Continuous (Gaussian) DDPM baseline for the discrete-vs-continuous ablation.

Section III-C of the paper argues that treating the binary topology as a
grayscale image, running a standard Gaussian diffusion model and thresholding
the output wastes model capacity.  This module implements exactly that
"naive idea" so the ablation benchmark can compare it against the discrete
formulation on equal footing: same U-Net backbone, same schedule length, the
only difference being the continuous state space plus a final threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Tensor, UNet, UNetConfig, clip_grad_norm
from ..utils import as_rng


@dataclass
class GaussianDiffusionConfig:
    """Standard DDPM hyper-parameters (linear variance schedule)."""

    num_steps: int = 1000
    beta_start: float = 1e-4
    beta_end: float = 0.02
    learning_rate: float = 2e-4
    grad_clip: float = 1.0


class GaussianTopologyDiffusion:
    """DDPM over topology tensors mapped to ``[-1, 1]`` plus a 0-threshold."""

    def __init__(self, model: UNet, config: "GaussianDiffusionConfig | None" = None) -> None:
        self.config = config if config is not None else GaussianDiffusionConfig()
        if model.config.num_classes != 1:
            raise ValueError("the Gaussian baseline needs a UNet with num_classes=1")
        self.model = model
        cfg = self.config
        self.betas = np.linspace(cfg.beta_start, cfg.beta_end, cfg.num_steps, dtype=np.float64)
        self.alphas = 1.0 - self.betas
        self.alpha_bars = np.cumprod(self.alphas)

    # -- helpers ---------------------------------------------------------- #
    @staticmethod
    def _to_continuous(x0: np.ndarray) -> np.ndarray:
        return (np.asarray(x0, dtype=np.float32) * 2.0) - 1.0

    @staticmethod
    def _to_binary(x: np.ndarray) -> np.ndarray:
        return (np.asarray(x) > 0.0).astype(np.int64)

    def _predict_eps(self, x: np.ndarray, k: int) -> np.ndarray:
        timesteps = np.full(x.shape[0], k, dtype=np.int64)
        out = self.model(Tensor(x.astype(np.float32)), timesteps)
        # UNet emits (N, C, 1, M, M); drop the singleton class axis.
        return out.numpy()[:, :, 0]

    def _predict_eps_tensor(self, x: np.ndarray, k: int) -> Tensor:
        timesteps = np.full(x.shape[0], k, dtype=np.int64)
        out = self.model(Tensor(x.astype(np.float32)), timesteps)
        batch, channels, _, height, width = out.shape
        return out.reshape(batch, channels, height, width)

    # -- training ---------------------------------------------------------- #
    def loss(
        self, x0: np.ndarray, rng: "int | np.random.Generator | None" = None, k: "int | None" = None
    ) -> tuple[Tensor, dict[str, float]]:
        """Simple DDPM noise-prediction MSE loss."""
        gen = as_rng(rng)
        x0_cont = self._to_continuous(x0)
        step = int(gen.integers(1, self.config.num_steps + 1)) if k is None else int(k)
        alpha_bar = self.alpha_bars[step - 1]
        noise = gen.standard_normal(x0_cont.shape).astype(np.float32)
        xk = np.sqrt(alpha_bar) * x0_cont + np.sqrt(1.0 - alpha_bar) * noise
        predicted = self._predict_eps_tensor(xk, step)
        diff = predicted - Tensor(noise)
        mse = (diff * diff).mean()
        return mse, {"loss": float(mse.item()), "step": float(step)}

    def fit(
        self,
        dataset: np.ndarray,
        iterations: int,
        batch_size: int = 16,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[dict[str, float]]:
        """Train the noise predictor; mirrors :meth:`DiscreteDiffusion.fit`."""
        gen = as_rng(rng)
        data = np.asarray(dataset, dtype=np.int64)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = []
        self.model.train()
        for _ in range(iterations):
            indices = gen.integers(0, data.shape[0], size=min(batch_size, data.shape[0]))
            loss, metrics = self.loss(data[indices], rng=gen)
            optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.parameters, self.config.grad_clip)
            optimizer.step()
            history.append(metrics)
        return history

    # -- sampling ----------------------------------------------------------- #
    def sample(
        self, num_samples: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Ancestral DDPM sampling followed by thresholding to {0, 1}."""
        gen = as_rng(rng)
        cfg = self.model.config
        shape = (num_samples, cfg.in_channels, cfg.image_size, cfg.image_size)
        x = gen.standard_normal(shape).astype(np.float32)
        self.model.eval()
        for step in range(self.config.num_steps, 0, -1):
            alpha = self.alphas[step - 1]
            alpha_bar = self.alpha_bars[step - 1]
            beta = self.betas[step - 1]
            eps = self._predict_eps(x, step)
            mean = (x - beta / np.sqrt(1.0 - alpha_bar) * eps) / np.sqrt(alpha)
            if step > 1:
                noise = gen.standard_normal(shape).astype(np.float32)
                x = mean + np.sqrt(beta) * noise
            else:
                x = mean
        self.model.train()
        return self._to_binary(x)


def gaussian_unet_config(in_channels: int, image_size: int, **kwargs) -> UNetConfig:
    """Convenience: a U-Net config with a single continuous output class."""
    return UNetConfig(in_channels=in_channels, num_classes=1, image_size=image_size, **kwargs)

"""Discrete denoising diffusion for topology tensors (Section III-C).

:class:`DiscreteDiffusion` couples a U-Net ``x_0``-posterior predictor with a
:class:`~repro.diffusion.transition.DiscreteTransitionModel` and implements

* the hybrid training loss of Eq. (9):
  ``KL(q(x_{k-1}|x_k,x_0) || p_θ(x_{k-1}|x_k)) − λ log p_θ(x_0 | x_k)``,
* ancestral sampling (Eq. 13) from the uniform stationary distribution down
  to a fresh binary topology tensor.

The state arrays handled here are integer tensors of shape ``(N, C, M, M)``
where ``C`` is the deep-squish channel count and every entry is in
``{0, .., S-1}`` (``S = 2`` for layout topologies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Adam, Tensor, UNet, UNetConfig, clip_grad_norm, no_grad
from ..nn import functional as F
from ..utils import as_rng
from .schedule import NoiseSchedule, linear_schedule
from .transition import DiscreteTransitionModel, one_hot, sample_categorical


@dataclass
class DiffusionConfig:
    """Hyper-parameters of the discrete diffusion generator.

    The paper's values are ``num_steps=1000``, ``beta_start=0.01``,
    ``beta_end=0.5``, ``lambda_ce=0.001``, learning rate ``2e-4``, gradient
    clip ``1.0``.  Tests and laptop runs shrink ``num_steps`` and the U-Net.
    """

    #: Length ``K`` of the forward/reverse chain.  The sampler may walk a
    #: respaced subsequence of it (see :class:`~repro.diffusion.RespacedSchedule`).
    num_steps: int = 1000
    #: Flip probability of the first forward step (Eq. 8 linear schedule).
    beta_start: float = 0.01
    #: Flip probability of the last forward step.
    beta_end: float = 0.5
    #: Weight of the auxiliary cross-entropy term in the hybrid loss (Eq. 9).
    lambda_ce: float = 0.001
    #: Adam learning rate used by :meth:`DiscreteDiffusion.fit`.
    learning_rate: float = 2e-4
    #: Global gradient-norm clip applied per training step.
    grad_clip: float = 1.0
    #: Discrete state count ``S`` (2 for binary layout topologies).
    num_states: int = 2
    #: Transition family: ``"binary"``, ``"uniform"`` or ``"absorbing"``
    #: (see :class:`~repro.diffusion.transition.DiscreteTransitionModel`).
    transition_kind: str = "binary"


class DiscreteDiffusion:
    """Discrete diffusion generator over ``(C, M, M)`` topology tensors."""

    def __init__(
        self,
        model: UNet,
        config: "DiffusionConfig | None" = None,
        schedule: "NoiseSchedule | None" = None,
    ) -> None:
        """Couple a U-Net posterior predictor with a transition model.

        Parameters
        ----------
        model:
            The ``x_0``-posterior backbone; its ``num_classes`` must equal
            the diffusion state count.
        config:
            Hyper-parameters; defaults to :class:`DiffusionConfig`.
        schedule:
            Explicit noise schedule; defaults to the paper's linear schedule
            over ``config.num_steps`` steps.

        Raises
        ------
        ValueError
            If the schedule length disagrees with ``config.num_steps``, or
            the U-Net's class count disagrees with ``config.num_states``.
        """
        self.config = config if config is not None else DiffusionConfig()
        self.model = model
        if schedule is None:
            schedule = linear_schedule(
                self.config.num_steps, self.config.beta_start, self.config.beta_end
            )
        if schedule.num_steps != self.config.num_steps:
            raise ValueError(
                f"schedule has {schedule.num_steps} steps but config asks for "
                f"{self.config.num_steps}"
            )
        self.transition = DiscreteTransitionModel(
            schedule, num_states=self.config.num_states, kind=self.config.transition_kind
        )
        unet_cfg: UNetConfig = model.config
        if unet_cfg.num_classes != self.config.num_states:
            raise ValueError(
                "UNet num_classes must equal the diffusion state count "
                f"({unet_cfg.num_classes} != {self.config.num_states})"
            )

    # ------------------------------------------------------------------ #
    # model wrappers
    # ------------------------------------------------------------------ #
    def _model_input_array(self, xk: np.ndarray) -> np.ndarray:
        """One-hot encode ``x_k`` and flatten the state axis into channels.

        Encodes straight into the ``(N, C*S, M, M)`` layout the U-Net wants,
        so no transpose copy is needed (the sampler calls this every step).
        """
        batch, channels, height, width = xk.shape
        num_states = self.config.num_states
        if xk.min() < 0 or xk.max() >= num_states:
            raise ValueError(f"states must lie in [0, {num_states})")
        encoded = np.zeros((batch, channels, num_states, height, width), dtype=np.float32)
        np.put_along_axis(encoded, xk[:, :, None, :, :], 1.0, axis=2)
        return encoded.reshape(batch, channels * num_states, height, width)

    def _model_input(self, xk: np.ndarray) -> Tensor:
        return Tensor(self._model_input_array(xk))

    def predict_x0_logits(self, xk: np.ndarray, k: "int | np.ndarray") -> Tensor:
        """Network forward pass: logits of ``p_θ(x_0 | x_k)``.

        Returns a tensor of shape ``(N, C, S, M, M)``.
        """
        timesteps = np.full(xk.shape[0], k, dtype=np.int64) if np.isscalar(k) else np.asarray(k)
        return self.model(self._model_input(xk), timesteps)

    def predict_x0_probs(
        self, xk: np.ndarray, k: "int | np.ndarray", inference: bool = False
    ) -> np.ndarray:
        """Softmax of :meth:`predict_x0_logits` as a plain array.

        With ``inference=True`` the forward pass runs through the
        gradient-free array kernels (:meth:`UNet.infer`): no tape, no Tensor
        wrappers — the hot path of the batched sampling engine.
        """
        if inference:
            timesteps = np.full(xk.shape[0], k, dtype=np.int64) if np.isscalar(k) else np.asarray(k)
            logits = self.model.infer(self._model_input_array(xk), timesteps)
            return F.softmax_array(logits, axis=2)
        logits = self.predict_x0_logits(xk, k)
        return F.softmax(logits, axis=2).numpy()

    # ------------------------------------------------------------------ #
    # training loss (Eq. 9)
    # ------------------------------------------------------------------ #
    def loss(
        self,
        x0: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
        k: "int | None" = None,
    ) -> tuple[Tensor, dict[str, float]]:
        """Hybrid loss on a batch of clean topology tensors ``x0``.

        Parameters
        ----------
        x0:
            Integer array of shape ``(N, C, M, M)``.
        rng:
            Randomness for the timestep and the forward corruption.
        k:
            Optional fixed timestep (used by tests); otherwise sampled
            uniformly from ``[1, K]`` per batch.

        Returns
        -------
        tuple[Tensor, dict[str, float]]
            The scalar loss tensor (differentiable) and a metrics dict with
            ``loss`` / ``kl`` / ``ce`` / ``step`` entries.
        """
        gen = as_rng(rng)
        x0 = np.asarray(x0, dtype=np.int64)
        if x0.ndim != 4:
            raise ValueError(f"x0 must have shape (N, C, M, M), got {x0.shape}")
        step = int(gen.integers(1, self.config.num_steps + 1)) if k is None else int(k)

        xk = self.transition.sample_xk(x0, step, gen)
        logits = self.predict_x0_logits(xk, step)  # (N, C, S, M, M)
        # Move the state axis last so it lines up with the posterior arrays.
        logits_last = logits.transpose(0, 1, 3, 4, 2)  # (N, C, M, M, S)
        probs_x0 = F.softmax(logits_last, axis=-1)

        # p_theta(x_{k-1} | x_k) = sum_i q(x_{k-1} | x_k, x_0=i) p_theta(x_0=i | x_k)
        posterior_all = self.transition.posterior_probs_all_x0(xk, step)  # (..., S_x0, S_prev)
        predicted_prev = None
        for clean_state in range(self.config.num_states):
            weight = probs_x0[..., clean_state : clean_state + 1]
            term = weight * Tensor(posterior_all[..., clean_state, :])
            predicted_prev = term if predicted_prev is None else predicted_prev + term

        target_prev = self.transition.posterior_probs(xk, x0, step)
        eps = 1e-10
        log_predicted = (predicted_prev + eps).log()
        entropy = float(
            (target_prev * np.log(np.clip(target_prev, eps, 1.0))).sum(axis=-1).mean()
        )
        kl_term = -(Tensor(target_prev.astype(np.float32)) * log_predicted).sum(axis=-1).mean() + entropy

        ce_targets = one_hot(x0, self.config.num_states)
        ce_term = F.cross_entropy_with_logits(logits_last, ce_targets, axis=-1)

        total = kl_term + self.config.lambda_ce * ce_term
        metrics = {
            "loss": float(total.item()),
            "kl": float(kl_term.item()),
            "ce": float(ce_term.item()),
            "step": float(step),
        }
        return total, metrics

    # ------------------------------------------------------------------ #
    # training loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        dataset: np.ndarray,
        iterations: int,
        batch_size: int = 16,
        rng: "int | np.random.Generator | None" = None,
        optimizer: "Adam | None" = None,
        log_every: int = 0,
        callback=None,
    ) -> list[dict[str, float]]:
        """Train the backbone on a dataset of clean topology tensors.

        Parameters
        ----------
        dataset:
            Integer array of shape ``(num_samples, C, M, M)``.
        iterations:
            Optimisation steps to run (one random mini-batch each).
        batch_size:
            Mini-batch size, capped at the dataset size.
        rng:
            Randomness for batch selection, timesteps and forward corruption.
        optimizer:
            Optional pre-built optimiser (resuming training keeps its
            moments); defaults to Adam at ``config.learning_rate``.
        log_every:
            Print a progress line every that-many iterations (0 = silent).
        callback:
            Optional ``callback(iteration, metrics)`` hook per iteration.

        Returns
        -------
        list[dict[str, float]]
            Per-iteration metric dictionaries (loss terms plus
            ``grad_norm`` / ``iteration``).

        Raises
        ------
        ValueError
            If ``dataset`` is not 4-dimensional.
        """
        gen = as_rng(rng)
        data = np.asarray(dataset, dtype=np.int64)
        if data.ndim != 4:
            raise ValueError(f"dataset must have shape (N, C, M, M), got {data.shape}")
        if optimizer is None:
            optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history: list[dict[str, float]] = []
        self.model.train()
        for iteration in range(iterations):
            indices = gen.integers(0, data.shape[0], size=min(batch_size, data.shape[0]))
            batch = data[indices]
            loss, metrics = self.loss(batch, rng=gen)
            optimizer.zero_grad()
            loss.backward()
            grad_norm = clip_grad_norm(optimizer.parameters, self.config.grad_clip)
            optimizer.step()
            metrics["grad_norm"] = grad_norm
            metrics["iteration"] = float(iteration)
            history.append(metrics)
            if log_every and iteration % log_every == 0:
                print(f"[diffusion] iter={iteration} loss={metrics['loss']:.4f}")
            if callback is not None:
                callback(iteration, metrics)
        return history

    # ------------------------------------------------------------------ #
    # sampling (Eq. 13)
    # ------------------------------------------------------------------ #
    def sample(
        self,
        num_samples: int,
        rng: "int | np.random.Generator | None" = None,
        return_chain: bool = False,
        chain_stride: int = 1,
        greedy_final: bool = True,
        inference: bool = True,
        batch_size: "int | None" = None,
    ) -> "np.ndarray | tuple[np.ndarray, list[np.ndarray]]":
        """Generate fresh topology tensors by reverse diffusion.

        Returns an integer array of shape ``(num_samples, C, M, M)``; with
        ``return_chain=True`` also the list of intermediate states (every
        ``chain_stride`` steps, ending with the final sample) for Fig. 6.
        ``greedy_final`` takes the mode of ``p_θ(x_0 | x_1)`` at the last step
        instead of sampling it, which removes residual salt-and-pepper noise
        (standard practice for discrete diffusion samplers).

        ``inference=True`` (the default) runs the denoising network through
        the gradient-free array kernels; ``inference=False`` keeps the taped
        forward pass (useful for parity checks).  ``batch_size`` caps how
        many samples are denoised per reverse pass: larger batches amortise
        the per-step Python overhead, smaller ones bound peak memory.  For
        chunk-*invariant* results under a shared seed use
        :class:`repro.pipeline.SamplingEngine`, which seeds every sample
        independently.
        """
        gen = as_rng(rng)
        was_training = self.model.training
        self.model.eval()
        try:
            chunk = num_samples if batch_size is None else max(1, int(batch_size))
            finals: list[np.ndarray] = []
            chains: list[list[np.ndarray]] = []
            for start in range(0, num_samples, chunk):
                count = min(chunk, num_samples - start)
                final, chain = self._sample_chunk(
                    count, gen, return_chain, chain_stride, greedy_final, inference
                )
                finals.append(final)
                chains.append(chain)
            xk = finals[0] if len(finals) == 1 else np.concatenate(finals, axis=0)
        finally:
            if was_training:
                self.model.train()
        if return_chain:
            merged = [
                parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
                for parts in zip(*chains)
            ]
            return xk, merged
        return xk

    def _sample_chunk(
        self,
        num_samples: int,
        gen: np.random.Generator,
        return_chain: bool,
        chain_stride: int,
        greedy_final: bool,
        inference: bool,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Denoise one batch of ``num_samples`` states from ``x_K`` to ``x_0``."""
        cfg = self.model.config
        shape = (num_samples, cfg.in_channels, cfg.image_size, cfg.image_size)
        xk = self.transition.sample_stationary(shape, gen)
        chain: list[np.ndarray] = [xk.copy()] if return_chain else []
        with no_grad():
            for step in range(self.config.num_steps, 0, -1):
                probs_x0 = self.predict_x0_probs(xk, step, inference=inference)
                probs_x0 = np.moveaxis(probs_x0, 2, -1)  # (N, C, M, M, S)
                if step == 1:
                    # p_theta(x_0 | x_1): emit the clean tensor directly.
                    if greedy_final:
                        xk = probs_x0.argmax(axis=-1).astype(np.int64)
                        if return_chain:
                            chain.append(xk.copy())
                        break
                    probs_prev = probs_x0
                else:
                    posterior_all = self.transition.posterior_probs_all_x0(xk, step)
                    probs_prev = np.einsum("...i,...ij->...j", probs_x0, posterior_all)
                xk = sample_categorical(probs_prev, gen)
                if return_chain and (
                    (self.config.num_steps - step) % chain_stride == 0 or step == 1
                ):
                    chain.append(xk.copy())
        return xk, chain

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_unet_config(
        cls, unet_config: UNetConfig, diffusion_config: "DiffusionConfig | None" = None
    ) -> "DiscreteDiffusion":
        """Build a generator with a fresh U-Net from configuration objects."""
        return cls(UNet(unet_config), diffusion_config)

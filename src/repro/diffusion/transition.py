"""Discrete-state transition structure of the forward diffusion process.

Implements the doubly stochastic transition matrices of Eq. (5)-(7), their
cumulative products ``Q̄_k = Q_1 Q_2 ... Q_k``, the marginal
``q(x_k | x_0)`` used to draw noisy samples in one shot (Eq. 10), and the
forward posterior ``q(x_{k-1} | x_k, x_0)`` (Eq. 12) needed by the training
loss and by the reverse sampler.

Three transition families are supported:

* ``"binary"``   — the paper's 2-state matrix ``[[1-β, β], [β, 1-β]]``.
* ``"uniform"``  — D3PM uniform transition for an arbitrary state count,
  ``Q_k = (1-β_k) I + β_k / S · 11ᵀ`` (stationary distribution uniform).
* ``"absorbing"``— D3PM absorbing-state transition (mask state = S-1),
  provided as an extension point.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_rng
from .schedule import NoiseSchedule


class DiscreteTransitionModel:
    """Transition matrices and posterior computations for a discrete chain."""

    def __init__(
        self,
        schedule: NoiseSchedule,
        num_states: int = 2,
        kind: str = "binary",
    ) -> None:
        """Build (and cache) every per-step and cumulative matrix up front.

        Parameters
        ----------
        schedule:
            Per-step noise levels ``beta_1 .. beta_K``.
        num_states:
            Discrete state count ``S`` (>= 2).
        kind:
            Transition family: ``"binary"``, ``"uniform"`` or ``"absorbing"``.

        Raises
        ------
        ValueError
            For ``num_states < 2``, an unknown ``kind``, or the binary
            family with ``num_states != 2``.
        """
        if num_states < 2:
            raise ValueError("num_states must be >= 2")
        if kind == "binary" and num_states != 2:
            raise ValueError("the 'binary' transition requires num_states == 2")
        if kind not in ("binary", "uniform", "absorbing"):
            raise ValueError(f"unknown transition kind: {kind!r}")
        self.schedule = schedule
        self.num_states = num_states
        self.kind = kind
        self._q = self._build_single_step()
        self._q_bar = self._build_cumulative(self._q)
        # Per-step posterior lookup tables, built lazily: entry (k, dtype)
        # holds the (S_xk, S_x0, S_prev) array of :meth:`posterior_table`.
        self._posterior_tables: dict[tuple[int, str], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # matrix construction
    # ------------------------------------------------------------------ #
    def _build_single_step(self) -> np.ndarray:
        """Stack of per-step matrices ``Q_k``, shape (K, S, S), 0-indexed."""
        betas = self.schedule.betas
        steps = betas.shape[0]
        size = self.num_states
        matrices = np.zeros((steps, size, size), dtype=np.float64)
        for idx, beta in enumerate(betas):
            if self.kind == "binary":
                matrices[idx] = np.array([[1.0 - beta, beta], [beta, 1.0 - beta]])
            elif self.kind == "uniform":
                matrices[idx] = (1.0 - beta) * np.eye(size) + beta / size
            else:  # absorbing: mass beta moves to the last (mask) state
                mat = (1.0 - beta) * np.eye(size)
                mat[:, -1] += beta
                mat[-1, -1] = 1.0
                mat[-1, :-1] = 0.0
                matrices[idx] = mat
        return matrices

    @staticmethod
    def _build_cumulative(single: np.ndarray) -> np.ndarray:
        """``Q̄_0 = I`` and ``Q̄_k = Q̄_{k-1} Q_k``, shape (K+1, S, S)."""
        steps, size, _ = single.shape
        cumulative = np.zeros((steps + 1, size, size), dtype=np.float64)
        cumulative[0] = np.eye(size)
        for idx in range(steps):
            cumulative[idx + 1] = cumulative[idx] @ single[idx]
        return cumulative

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def num_steps(self) -> int:
        return self.schedule.num_steps

    def q_matrix(self, k: int) -> np.ndarray:
        """Single-step matrix ``Q_k`` (1-indexed)."""
        if not 1 <= k <= self.num_steps:
            raise IndexError(f"k={k} outside [1, {self.num_steps}]")
        return self._q[k - 1]

    def q_bar_matrix(self, k: int) -> np.ndarray:
        """Cumulative matrix ``Q̄_k`` (``k=0`` gives the identity)."""
        if not 0 <= k <= self.num_steps:
            raise IndexError(f"k={k} outside [0, {self.num_steps}]")
        return self._q_bar[k]

    def stationary_distribution(self) -> np.ndarray:
        """The distribution the forward process converges to."""
        if self.kind in ("binary", "uniform"):
            return np.full(self.num_states, 1.0 / self.num_states)
        stationary = np.zeros(self.num_states)
        stationary[-1] = 1.0
        return stationary

    # ------------------------------------------------------------------ #
    # forward process
    # ------------------------------------------------------------------ #
    def q_probs(self, x0: np.ndarray, k: int) -> np.ndarray:
        """Marginal ``q(x_k | x_0)`` (Eq. 10); shape ``x0.shape + (S,)``."""
        x0 = self._validate_states(x0)
        return self.q_bar_matrix(k)[x0]

    def sample_xk(
        self, x0: np.ndarray, k: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Draw ``x_k ~ q(x_k | x_0)`` in a single shot."""
        gen = as_rng(rng)
        probs = self.q_probs(x0, k)
        return sample_categorical(probs, gen)

    def sample_stationary(
        self, shape: tuple[int, ...], rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Draw ``x_K`` from the stationary distribution (the sampler's start)."""
        gen = as_rng(rng)
        probs = np.broadcast_to(self.stationary_distribution(), shape + (self.num_states,))
        return sample_categorical(probs, gen)

    # ------------------------------------------------------------------ #
    # posteriors
    # ------------------------------------------------------------------ #
    def posterior_table(self, k: int, dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        """Cached posterior lookup table for step ``k``.

        ``table[v, i, s] = q(x_{k-1}=s | x_k=v, x_0=i)`` — a ``(S, S, S)``
        array that turns the per-pixel posterior computation into a single
        fancy-index gather.  Built once per step and reused by every training
        iteration and every reverse-sampling step, which is what makes the
        batched sampler's mixing phase cheap.  ``dtype=np.float32`` gives the
        sampling engine a lower-precision variant that halves the memory
        traffic of the per-step mixing einsum.
        """
        key = (k, np.dtype(dtype).str)
        table = self._posterior_tables.get(key)
        if table is None:
            q_k = self.q_matrix(k)
            q_bar_prev = self.q_bar_matrix(k - 1)
            q_bar_k = self.q_bar_matrix(k)
            # numerator[v, i, s] = Q_k[s, v] * Q̄_{k-1}[i, s]
            numerator = q_k.T[:, None, :] * q_bar_prev[None, :, :]
            # denominator[v, i] = Q̄_k[i, v]
            table = (numerator / q_bar_k.T[:, :, None]).astype(dtype, copy=False)
            table.setflags(write=False)
            self._posterior_tables[key] = table
        return table

    def posterior_probs(self, xk: np.ndarray, x0: np.ndarray, k: int) -> np.ndarray:
        """Forward posterior ``q(x_{k-1} | x_k, x_0)`` (Eq. 12).

        Shapes: ``xk`` and ``x0`` are integer state arrays of the same shape;
        the result has an extra trailing state axis.
        """
        xk = self._validate_states(xk)
        x0 = self._validate_states(x0)
        if xk.shape != x0.shape:
            raise ValueError("xk and x0 must have the same shape")
        return self.posterior_table(k)[xk, x0]

    def posterior_probs_all_x0(self, xk: np.ndarray, k: int) -> np.ndarray:
        """``q(x_{k-1} | x_k, x_0 = i)`` for every possible clean state ``i``.

        Returns an array of shape ``xk.shape + (S, S)`` indexed as
        ``[..., i, s]`` — the posterior over ``x_{k-1}=s`` assuming ``x_0=i``.
        Used to marginalise the model's ``p_θ(x_0 | x_k)`` into
        ``p_θ(x_{k-1} | x_k)`` (Eq. 11).
        """
        xk = self._validate_states(xk)
        return self.posterior_table(k)[xk]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_states(self, states: np.ndarray) -> np.ndarray:
        arr = np.asarray(states)
        if not np.issubdtype(arr.dtype, np.integer):
            if np.isin(arr, np.arange(self.num_states)).all():
                arr = arr.astype(np.int64)
            else:
                raise ValueError("state arrays must contain integer states")
        if (arr < 0).any() or (arr >= self.num_states).any():
            raise ValueError(f"states must lie in [0, {self.num_states})")
        return arr.astype(np.int64)


def sample_categorical(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Sample integer states from categorical distributions over the last axis."""
    uniforms = rng.random(np.asarray(probs).shape[:-1])
    return categorical_from_uniforms(probs, uniforms)


def categorical_from_uniforms(probs: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Invert categorical CDFs at pre-drawn uniforms (over the last axis).

    Splitting the random draw from the inversion lets callers control the
    uniform stream per sample — the batched sampling engine uses one
    deterministic stream per sample index so a batch of any size reproduces
    the sequential sampler bit for bit.
    """
    probs = np.asarray(probs, dtype=np.float64)
    cumulative = probs.cumsum(axis=-1)
    cumulative /= cumulative[..., -1:]
    return (np.asarray(uniforms)[..., None] > cumulative).sum(axis=-1).astype(np.int64)


def one_hot(states: np.ndarray, num_states: int) -> np.ndarray:
    """One-hot encode an integer state array; new axis is inserted at -1."""
    arr = np.asarray(states, dtype=np.int64)
    if (arr < 0).any() or (arr >= num_states).any():
        raise ValueError(f"states must lie in [0, {num_states})")
    encoded = np.zeros(arr.shape + (num_states,), dtype=np.float32)
    np.put_along_axis(encoded, arr[..., None], 1.0, axis=-1)
    return encoded


def binary_flip_probability(schedule: NoiseSchedule, k: int) -> float:
    """Closed-form cumulative flip probability for the binary chain.

    For the symmetric 2-state matrix, ``Q̄_k`` is again symmetric with
    off-diagonal ``β̄_k = ½ (1 − ∏_{i<=k} (1 − 2 β_i))`` — handy for checking
    the matrix-product implementation and for analytic tests.
    """
    if not 0 <= k <= schedule.num_steps:
        raise IndexError(f"k={k} outside [0, {schedule.num_steps}]")
    if k == 0:
        return 0.0
    product = float(np.prod(1.0 - 2.0 * schedule.betas[:k]))
    return 0.5 * (1.0 - product)

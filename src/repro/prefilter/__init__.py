"""Rule-based topology pre-filter."""

from .topology_filter import PrefilterConfig, PrefilterResult, TopologyPrefilter

__all__ = ["PrefilterConfig", "PrefilterResult", "TopologyPrefilter"]

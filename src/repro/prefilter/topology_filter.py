"""Rule-based topology pre-filter (Section III-C, "Topology Pre-filter").

Generated topology tensors are screened with cheap domain-knowledge rules
before the (more expensive) legalisation solve:

* **bow-ties** — two shapes touching only at a corner cannot be realised with
  positive spacing and are always illegal;
* **empty tiles** — a tile without any shape carries no information for a
  pattern library;
* **full tiles** — a tile that is a single solid block of metal cannot meet
  a finite ``area_max`` at realistic tile sizes;
* **degenerate shapes** (optional) — single isolated cells whose row *and*
  column are otherwise empty generate extremely thin slivers; they are legal
  in principle so this check is off by default.

In the paper less than 0.1 % of generated topologies are filtered out; the
filter therefore mostly acts as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import connected_components, has_bowtie, validate_grid


@dataclass
class PrefilterConfig:
    """Which checks the pre-filter applies."""

    reject_bowties: bool = True
    reject_empty: bool = True
    reject_full: bool = True
    max_polygons: "int | None" = None
    reject_single_cell_polygons: bool = False


@dataclass
class PrefilterResult:
    """Outcome of filtering one batch of topologies."""

    kept: list[np.ndarray] = field(default_factory=list)
    rejected: list[np.ndarray] = field(default_factory=list)
    reasons: list[str] = field(default_factory=list)

    @property
    def keep_rate(self) -> float:
        total = len(self.kept) + len(self.rejected)
        return len(self.kept) / total if total else 0.0

    @property
    def reject_rate(self) -> float:
        return 1.0 - self.keep_rate if (self.kept or self.rejected) else 0.0


class TopologyPrefilter:
    """Screens generated topology matrices with rule-based checks."""

    def __init__(self, config: "PrefilterConfig | None" = None) -> None:
        self.config = config if config is not None else PrefilterConfig()

    def reject_reason(self, topology: np.ndarray) -> "str | None":
        """Reason for rejecting ``topology``, or ``None`` when it passes."""
        grid = validate_grid(topology)
        config = self.config
        filled = int(grid.sum())
        if config.reject_empty and filled == 0:
            return "empty"
        if config.reject_full and filled == grid.size:
            return "full"
        if config.reject_bowties and has_bowtie(grid):
            return "bowtie"
        if config.max_polygons is not None or config.reject_single_cell_polygons:
            labels, count = connected_components(grid)
            if config.max_polygons is not None and count > config.max_polygons:
                return "too_many_polygons"
            if config.reject_single_cell_polygons:
                for comp in range(1, count + 1):
                    if int((labels == comp).sum()) == 1:
                        return "single_cell_polygon"
        return None

    def accepts(self, topology: np.ndarray) -> bool:
        """True when ``topology`` passes every enabled check."""
        return self.reject_reason(topology) is None

    def filter(self, topologies: "np.ndarray | list[np.ndarray]") -> PrefilterResult:
        """Split a batch of topology matrices into kept / rejected."""
        result = PrefilterResult()
        for topology in topologies:
            reason = self.reject_reason(topology)
            if reason is None:
                result.kept.append(np.asarray(topology, dtype=np.uint8))
            else:
                result.rejected.append(np.asarray(topology, dtype=np.uint8))
                result.reasons.append(reason)
        return result

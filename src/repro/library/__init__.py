"""Persistent pattern library: append-only npz shards + JSON manifest."""

from .store import (
    ChunkRecord,
    LibraryError,
    PatternLibrary,
    load_shard,
    pattern_hash,
    save_shard,
    topology_hash,
)

__all__ = [
    "PatternLibrary",
    "ChunkRecord",
    "LibraryError",
    "save_shard",
    "load_shard",
    "pattern_hash",
    "topology_hash",
]

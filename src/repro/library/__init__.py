"""Persistent pattern library: npz shards, manifest shards, on-disk index."""

from .faults import InjectedCrash, fault_point, install_fault_hook, record_fault_points
from .index import BloomFilter, LibraryIndex
from .manifest import LEGACY_WRITER, MANIFEST_DIR, LibraryLock, WriterLedger
from .store import (
    ChunkRecord,
    CompactionReport,
    LibraryError,
    PatternHandle,
    PatternLibrary,
    load_shard,
    load_shard_slice,
    pattern_hash,
    save_shard,
    topology_hash,
)

__all__ = [
    "PatternLibrary",
    "ChunkRecord",
    "CompactionReport",
    "LibraryError",
    "PatternHandle",
    "BloomFilter",
    "LibraryIndex",
    "LibraryLock",
    "WriterLedger",
    "LEGACY_WRITER",
    "MANIFEST_DIR",
    "InjectedCrash",
    "fault_point",
    "install_fault_hook",
    "record_fault_points",
    "save_shard",
    "load_shard",
    "load_shard_slice",
    "pattern_hash",
    "topology_hash",
]

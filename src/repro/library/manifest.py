"""Manifest primitives: chunk records, per-writer ledgers, the library lock.

A **v1** library is a single ``manifest.json`` owned by one writer (the
original PR 3 format, still written bit-for-bit by single-writer
:class:`~repro.library.PatternLibrary` instances).  A **v2** library splits
the manifest into per-writer **ledger shards** under ``manifests/`` so any
number of streamed runs / serve workers can append to one library
concurrently:

* every writer owns exactly one ``manifests/<writer>.json`` and only ever
  rewrites its own file (atomically, temp file + ``os.replace``);
* a global, gap-free **commit sequence number** (``ChunkRecord.seq``) is
  assigned under the advisory :class:`LibraryLock` at append time, so any
  reader merges the ledgers into one deterministic history by sorting on
  ``seq`` — the merged manifest is a pure function of the on-disk state;
* v2 ledger records do **not** inline the per-chunk hash lists the v1
  manifest carries; the hashes live in the on-disk index sidecars
  (:mod:`repro.library.index`), keeping ledger parse time proportional to
  the chunk count, not the pattern count.

The advisory lock is a ``flock``-ed ``library.lock`` file: writers hold it
across the refresh → dedup-probe → shard write → ledger commit critical
section, which is what makes concurrent appends equivalent to *some* serial
append order (the order ``seq`` records).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .faults import fault_point

try:  # POSIX advisory locking; the fallback below covers exotic hosts.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms only
    fcntl = None

__all__ = [
    "ChunkRecord",
    "LEDGER_VERSION",
    "LEGACY_WRITER",
    "LibraryLock",
    "MANIFEST_DIR",
    "WriterLedger",
    "atomic_write_bytes",
    "atomic_write_text",
    "ledger_path",
    "load_ledger",
    "scan_ledgers",
    "validate_writer_id",
]

MANIFEST_DIR = "manifests"
LOCK_NAME = "library.lock"
LEDGER_VERSION = 2
#: Writer id assigned to the chunks of a legacy single-manifest library when
#: it participates in a v2 merge (read-side migration; ``manifest.json``
#: itself is never rewritten except by an explicit ``compact()``).
LEGACY_WRITER = "legacy"

_WRITER_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def validate_writer_id(writer: str) -> str:
    """A writer id doubles as a file-name stem; reject anything unsafe."""
    if not writer or not set(writer) <= _WRITER_CHARS or writer.startswith("."):
        raise ValueError(
            f"writer id {writer!r} must be non-empty, use only [A-Za-z0-9._-] "
            "and not start with a dot (it names the writer's ledger file)"
        )
    return writer


# --------------------------------------------------------------------------- #
# atomic file commits (every durable step passes a fault point)
# --------------------------------------------------------------------------- #
def atomic_write_text(path: Path, text: str) -> None:
    """Commit ``text`` to ``path`` via temp file + atomic rename."""
    tmp = path.with_name(path.name + ".tmp")
    fault_point(f"{path.name}:tmp-write")
    tmp.write_text(text)
    fault_point(f"{path.name}:replace")
    os.replace(tmp, path)


def atomic_write_bytes(path: Path, writer_fn) -> None:
    """Commit binary content produced by ``writer_fn(file_object)`` atomically.

    Used for npz commits: ``numpy.savez`` appends ``.npz`` to bare paths, so
    the temp file is opened here and handed to the caller as a file object.
    """
    tmp = path.with_name(path.name + ".tmp")
    fault_point(f"{path.name}:tmp-write")
    with open(tmp, "wb") as handle:
        writer_fn(handle)
    fault_point(f"{path.name}:replace")
    os.replace(tmp, path)


class LibraryLock:
    """Advisory whole-library lock serialising writer critical sections.

    ``flock`` on ``<root>/library.lock``: reentrant-free, blocking, released
    automatically when the process (or file descriptor) dies — a crashed
    writer can never deadlock the library.  On platforms without ``fcntl``
    an ``O_EXCL`` spin lock with stale-breaking is used instead.
    """

    def __init__(self, root: "str | Path") -> None:
        self.path = Path(root) / LOCK_NAME
        self._fd: "int | None" = None

    def __enter__(self) -> "LibraryLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        else:  # pragma: no cover - non-POSIX platforms only
            import time

            spin = self.path.with_name(self.path.name + ".excl")
            while True:
                try:
                    self._fd = os.open(spin, os.O_CREAT | os.O_EXCL | os.O_RDWR)
                    break
                except FileExistsError:
                    time.sleep(0.01)
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
            else:  # pragma: no cover - non-POSIX platforms only
                os.close(self._fd)
                os.unlink(self.path.with_name(self.path.name + ".excl"))
            self._fd = None


# --------------------------------------------------------------------------- #
# chunk records
# --------------------------------------------------------------------------- #
@dataclass
class ChunkRecord:
    """Accounting for one completed generation chunk.

    The complexity multisets are stored in the compact
    :meth:`~repro.metrics.ComplexityHistogram.as_records` codec
    (``[cx, cy, count]`` rows).  A **v1** record carries the hashes it
    *introduced* inline (``new_pattern_hashes`` / ``new_topology_hashes``);
    a **v2** record keeps those lists empty — the hashes live in the chunk's
    index sidecar — and records only the introduced *counts* plus its global
    commit ``seq`` and owning ``writer``.
    """

    chunk: int                      # chunk index within the owning writer's run
    start: int                      # first raw sample index of the chunk
    num_sampled: int                # raw topologies drawn
    num_kept: int                   # survived the prefilter
    num_rejected: int
    unsolved: int                   # kept topologies with no legal solution
    num_patterns: int               # legal patterns produced (pre-dedup)
    num_stored: int                 # patterns written to the shard
    duplicates_skipped: int
    num_clean: int                  # DRC-clean stored patterns
    shard: "str | None"             # shard file name, None for empty chunks
    topology_complexity_counts: list[list[int]] = field(default_factory=list)
    pattern_complexity_counts: list[list[int]] = field(default_factory=list)
    new_pattern_hashes: list[str] = field(default_factory=list)
    new_topology_hashes: list[str] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)
    # -- v2-only fields (absent from v1 manifests, defaults on load) ------- #
    seq: "int | None" = None        # global commit order across all writers
    writer: "str | None" = None     # owning writer id
    shard_start: int = 0            # offset of this record's patterns in shard
    num_new_patterns: int = -1      # introduced counts (-1: derive from lists)
    num_new_topologies: int = -1
    #: Optional per-pattern attribution a serving writer persists so its
    #: window cache survives restarts (absolute source sample index and DRC
    #: verdict per stored pattern, aligned with the shard slice).
    pattern_sources: list[int] = field(default_factory=list)
    pattern_clean: list[int] = field(default_factory=list)

    #: Field names serialised into a v1 ``manifest.json`` — exactly the PR 3
    #: schema, so single-writer libraries stay byte-identical on disk.
    V1_FIELDS = (
        "chunk", "start", "num_sampled", "num_kept", "num_rejected", "unsolved",
        "num_patterns", "num_stored", "duplicates_skipped", "num_clean", "shard",
        "topology_complexity_counts", "pattern_complexity_counts",
        "new_pattern_hashes", "new_topology_hashes", "stats",
    )
    #: Extra fields a v2 ledger serialises (hash lists are dropped there —
    #: the index sidecars are their v2 home).
    V2_ONLY_FIELDS = (
        "seq", "writer", "shard_start", "num_new_patterns", "num_new_topologies",
    )

    @property
    def introduced_patterns(self) -> int:
        """Patterns this chunk registered first (count form, v1 or v2)."""
        if self.num_new_patterns >= 0:
            return self.num_new_patterns
        return len(self.new_pattern_hashes)

    @property
    def introduced_topologies(self) -> int:
        if self.num_new_topologies >= 0:
            return self.num_new_topologies
        return len(self.new_topology_hashes)

    def as_dict(self) -> dict:
        """The v1 manifest serialisation (byte-compatible with PR 3)."""
        return {key: getattr(self, key) for key in self.V1_FIELDS}

    def as_dict_v2(self) -> dict:
        """The ledger-shard serialisation: counts instead of hash lists."""
        payload = {
            key: getattr(self, key)
            for key in self.V1_FIELDS
            if key not in ("new_pattern_hashes", "new_topology_hashes")
        }
        for key in self.V2_ONLY_FIELDS:
            payload[key] = getattr(self, key)
        if self.pattern_sources:
            payload["pattern_sources"] = self.pattern_sources
        if self.pattern_clean:
            payload["pattern_clean"] = self.pattern_clean
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkRecord":
        return cls(**{key: data[key] for key in cls.__dataclass_fields__ if key in data})


# --------------------------------------------------------------------------- #
# writer ledgers
# --------------------------------------------------------------------------- #
@dataclass
class WriterLedger:
    """One writer's slice of a v2 library manifest."""

    writer: str
    fingerprint: dict = field(default_factory=dict)
    dedup: bool = False
    chunks: list[ChunkRecord] = field(default_factory=list)

    def as_payload(self) -> dict:
        return {
            "version": LEDGER_VERSION,
            "writer": self.writer,
            "fingerprint": self.fingerprint,
            "dedup": self.dedup,
            "chunks": [record.as_dict_v2() for record in self.chunks],
        }

    def write(self, root: "str | Path") -> None:
        """Atomically commit this ledger to its ``manifests/<writer>.json``."""
        path = ledger_path(root, self.writer)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(self.as_payload(), indent=1, sort_keys=True) + "\n"
        )


def ledger_path(root: "str | Path", writer: str) -> Path:
    return Path(root) / MANIFEST_DIR / f"{writer}.json"


def load_ledger(path: "str | Path") -> WriterLedger:
    """Parse one ledger shard; raises ``LibraryError`` on corruption."""
    from .store import LibraryError  # local import: store imports this module

    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LibraryError(f"cannot read manifest shard {path}: {error}") from error
    if payload.get("version") != LEDGER_VERSION:
        raise LibraryError(
            f"manifest shard {path} has unsupported version "
            f"{payload.get('version')!r} (expected {LEDGER_VERSION})"
        )
    records = [ChunkRecord.from_dict(data) for data in payload.get("chunks", [])]
    for record in records:
        if record.seq is None:
            raise LibraryError(
                f"manifest shard {path}: chunk {record.chunk} carries no commit "
                "seq — the ledger was not written by an atomic append"
            )
    return WriterLedger(
        writer=str(payload.get("writer", path.stem)),
        fingerprint=payload.get("fingerprint", {}),
        dedup=bool(payload.get("dedup", False)),
        chunks=records,
    )


def scan_ledgers(root: "str | Path") -> dict[str, Path]:
    """Writer id -> ledger path for every manifest shard on disk."""
    directory = Path(root) / MANIFEST_DIR
    if not directory.is_dir():
        return {}
    return {
        path.stem: path
        for path in sorted(directory.glob("*.json"))
        if not path.name.endswith(".tmp")
    }

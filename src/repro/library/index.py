"""On-disk hash index: per-shard sidecars, merged sorted files, bloom filter.

The v1 library answered every dedup probe from in-memory hash sets rebuilt
by parsing the whole manifest — O(library) work per open, long before the
solver becomes the bottleneck.  The v2 index replaces those sets with three
on-disk structures, all derived data (rebuildable from the shards at any
time):

* **sidecars** — each shard commit writes ``index/<shard>.idx.npz`` holding,
  aligned with the shard's patterns: the pattern hash, the topology hash and
  the canonical complexity ``(cx, cy)`` of every stored pattern.  Sidecars
  are what the indexed :meth:`~repro.library.PatternLibrary.query` API scans
  instead of loading shards, and what delta dedup probes read.
* **merged sorted hash files** — ``index/pattern_hashes.npy`` and
  ``index/topology_hashes.npy``: one lexicographically sorted ``S40`` array
  each, memory-mapped on open and probed by binary search.
* **bloom filter** — ``index/bloom.npz``, a classic double-hashing Bloom
  filter over the pattern hashes.  A negative probe (the overwhelmingly
  common case while generating fresh patterns) costs ``k`` bit tests and
  never touches the sorted files.

**Consistency watermark.**  ``index/meta.json`` records ``covered_seq``:
the merged files and bloom cover exactly the chunk records with
``ChunkRecord.seq <= covered_seq``.  Records beyond the watermark are the
*delta*: their sidecars are loaded into small in-memory sets on refresh, so
a probe is ``delta ∪ bloom/sorted`` — exact at every moment.  The index is
flushed (delta folded into the merged files, watermark advanced) only
*after* the covered records are durably committed, so every crash leaves the
watermark at or below the truth: a stale index loses speed, never
correctness.  ``rebuild()`` regenerates everything from sidecars/shards.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from ..faults import declare_fault_points, fault_point
from .manifest import atomic_write_bytes, atomic_write_text

__all__ = [
    "BloomFilter",
    "INDEX_DIR",
    "LibraryIndex",
    "sidecar_name",
    "load_sidecar",
    "write_sidecar",
]

INDEX_DIR = "index"
META_NAME = "index_meta.json"
PATTERN_FILE = "pattern_hashes.npy"
TOPOLOGY_FILE = "topology_hashes.npy"
BLOOM_FILE = "bloom.npz"

#: Fixed-width dtype of a sha1 hex digest; lexicographic byte order equals
#: hex-value order, so ``np.searchsorted`` is a correct membership probe.
HASH_DTYPE = "S40"

#: Delta chunks tolerated before an append folds them into the merged files.
FLUSH_DELTA_CHUNKS = 8

declare_fault_points("index:arrays", "index:bloom", "index:meta")


def _as_hash_array(hashes) -> np.ndarray:
    return np.asarray(list(hashes), dtype=HASH_DTYPE)


def _as_key(digest) -> bytes:
    """Normalise a sha1 digest (str, np.bytes_, bytes) to ``bytes``."""
    return digest.encode() if isinstance(digest, str) else bytes(digest)


def _sorted_contains(arr: np.ndarray, key: bytes) -> bool:
    if arr.size == 0:
        return False
    position = int(np.searchsorted(arr, np.asarray(key, dtype=HASH_DTYPE)))
    return position < arr.size and arr[position] == np.asarray(key, dtype=HASH_DTYPE)


# --------------------------------------------------------------------------- #
# bloom filter
# --------------------------------------------------------------------------- #
class BloomFilter:
    """Double-hashing Bloom filter over sha1 hex digests.

    The two base hashes are carved straight out of the digest (a sha1 is
    already uniform), so membership is deterministic across processes and
    platforms: ``index_i = (h1 + i * h2) mod num_bits``.
    """

    def __init__(self, bits: np.ndarray, num_hashes: int, capacity: int) -> None:
        self.bits = np.asarray(bits, dtype=np.uint8)
        self.num_bits = int(self.bits.size) * 8
        self.num_hashes = int(num_hashes)
        self.capacity = int(capacity)

    @classmethod
    def from_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size for ``capacity`` insertions at ``fp_rate`` false positives."""
        capacity = max(1, int(capacity))
        num_bits = max(64, int(math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2)))
        num_bytes = (num_bits + 7) // 8
        num_hashes = max(1, int(round(num_bits / capacity * math.log(2))))
        return cls(np.zeros(num_bytes, dtype=np.uint8), num_hashes, capacity)

    def _indices(self, digest: bytes) -> "list[int]":
        value = int(digest, 16)
        h1 = value & 0xFFFFFFFFFFFFFFFF
        h2 = ((value >> 64) & 0xFFFFFFFFFFFFFFFF) | 1
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def add(self, digest: bytes) -> None:
        for index in self._indices(digest):
            self.bits[index >> 3] |= 1 << (index & 7)

    def add_many(self, hashes: np.ndarray) -> None:
        for digest in hashes:
            self.add(_as_key(digest))

    def might_contain(self, digest: bytes) -> bool:
        bits = self.bits
        for index in self._indices(digest):
            if not bits[index >> 3] & (1 << (index & 7)):
                return False
        return True


# --------------------------------------------------------------------------- #
# sidecars
# --------------------------------------------------------------------------- #
def sidecar_name(shard_name: str) -> str:
    """``shard_x.npz`` -> ``shard_x.idx.npz`` (lives under ``index/``)."""
    stem = shard_name[:-4] if shard_name.endswith(".npz") else shard_name
    return f"{stem}.idx.npz"


def write_sidecar(path: "str | Path", arrays: dict[str, np.ndarray]) -> None:
    """Atomically commit one sidecar (aligned per-pattern metadata arrays)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, lambda fh: np.savez_compressed(fh, **arrays))


def load_sidecar(path: "str | Path") -> "dict[str, np.ndarray] | None":
    """The sidecar's arrays, or ``None`` when absent/unreadable.

    Sidecars are derived data: a missing or torn one (e.g. after a crash or
    a deleted ``index/`` directory) is repaired by recomputation from the
    shard, never an error.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            return {key: data[key] for key in data.files}
    except Exception:  # zipfile/ValueError zoo: treat any torn file as absent
        return None


def sidecar_arrays(patterns, sources=None, clean=None) -> dict[str, np.ndarray]:
    """Compute the aligned sidecar arrays for ``patterns``."""
    from ..metrics import pattern_complexity
    from .store import pattern_hash, topology_hash

    complexities = [pattern_complexity(p) for p in patterns]
    arrays = {
        "pattern_hash": _as_hash_array(pattern_hash(p) for p in patterns),
        "topology_hash": _as_hash_array(topology_hash(p.topology) for p in patterns),
        "cx": np.asarray([c[0] for c in complexities], dtype=np.int64),
        "cy": np.asarray([c[1] for c in complexities], dtype=np.int64),
    }
    if sources is not None:
        arrays["source"] = np.asarray(sources, dtype=np.int64)
    if clean is not None:
        arrays["clean"] = np.asarray(clean, dtype=np.uint8)
    return arrays


# --------------------------------------------------------------------------- #
# the index
# --------------------------------------------------------------------------- #
class LibraryIndex:
    """Merged sorted hash files + bloom + in-memory delta for one library.

    The owning :class:`~repro.library.PatternLibrary` drives the lifecycle:
    :meth:`refresh_delta` after every ledger re-read, :meth:`note_committed`
    after every local append, :meth:`flush`/:meth:`rebuild` under the
    library lock.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.dir = self.root / INDEX_DIR
        self.covered_seq = -1
        self.generation = 0      # bumped on every on-disk rewrite
        self._patterns: "np.ndarray | None" = None     # sorted S40, mmap
        self._topologies: "np.ndarray | None" = None
        self._bloom: "BloomFilter | None" = None
        #: seq -> (pattern hash set, topology hash set) beyond the watermark.
        self._delta: "dict[int, tuple[set, set]]" = {}
        self._load_meta()

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def _load_meta(self) -> None:
        meta_path = self.dir / META_NAME
        if not meta_path.exists():
            self.covered_seq = -1
            self.generation = 0
            return
        try:
            meta = json.loads(meta_path.read_text())
            self.covered_seq = int(meta.get("covered_seq", -1))
            self.generation = int(meta.get("generation", 0))
        except (OSError, json.JSONDecodeError, ValueError):
            # A torn meta file invalidates the index; probes fall back to
            # the (complete) delta path until the next flush/rebuild.
            self.covered_seq = -1

    def reload_meta(self) -> None:
        """Re-read the watermark; drop caches if another process rewrote it.

        Renames swap the files under our memory maps without changing their
        contents, so any generation bump means the cached arrays/bloom no
        longer describe the on-disk index.
        """
        previous = self.generation
        self._load_meta()
        if self.generation != previous:
            self._patterns = self._topologies = None
            self._bloom = None

    def _merged_patterns(self) -> np.ndarray:
        if self._patterns is None:
            self._patterns = self._load_array(PATTERN_FILE)
        return self._patterns

    def _merged_topologies(self) -> np.ndarray:
        if self._topologies is None:
            self._topologies = self._load_array(TOPOLOGY_FILE)
        return self._topologies

    def _load_array(self, name: str) -> np.ndarray:
        path = self.dir / name
        if self.covered_seq < 0 or not path.exists():
            return np.empty(0, dtype=HASH_DTYPE)
        try:
            return np.load(path, mmap_mode="r")
        except Exception:
            return np.empty(0, dtype=HASH_DTYPE)

    def _bloom_filter(self) -> "BloomFilter | None":
        if self._bloom is None and self.covered_seq >= 0:
            path = self.dir / BLOOM_FILE
            if path.exists():
                try:
                    with np.load(path) as data:
                        self._bloom = BloomFilter(
                            data["bits"], int(data["num_hashes"]), int(data["capacity"])
                        )
                except Exception:
                    self._bloom = None
        return self._bloom

    # ------------------------------------------------------------------ #
    # delta maintenance
    # ------------------------------------------------------------------ #
    def refresh_delta(self, records, hash_loader) -> None:
        """Synchronise the in-memory delta with the merged record list.

        ``records`` is the full merged history (each carrying ``seq``);
        ``hash_loader(record)`` returns ``(pattern_hashes, topology_hashes)``
        for one record — sidecar-backed, shard-recompute fallback.  Records
        at or below the watermark are dropped from the delta; records beyond
        it are loaded once and kept.
        """
        wanted = {}
        for record in records:
            if record.seq is None or record.seq <= self.covered_seq:
                continue
            if record.seq in self._delta:
                wanted[record.seq] = self._delta[record.seq]
            else:
                pattern_hashes, topology_hashes = hash_loader(record)
                wanted[record.seq] = (
                    {_as_key(h) for h in pattern_hashes},
                    {_as_key(h) for h in topology_hashes},
                )
        self._delta = wanted

    def note_committed(self, record, pattern_hashes, topology_hashes) -> None:
        """Fold one just-committed local record into the delta."""
        self._delta[record.seq] = (
            {_as_key(h) for h in pattern_hashes},
            {_as_key(h) for h in topology_hashes},
        )

    @property
    def delta_chunks(self) -> int:
        return len(self._delta)

    # ------------------------------------------------------------------ #
    # probes
    # ------------------------------------------------------------------ #
    def has_pattern(self, digest: "str | bytes") -> bool:
        key = digest.encode() if isinstance(digest, str) else bytes(digest)
        for patterns, _ in self._delta.values():
            if key in patterns:
                return True
        bloom = self._bloom_filter()
        if bloom is not None and not bloom.might_contain(key):
            return False
        return _sorted_contains(self._merged_patterns(), key)

    def has_topology(self, digest: "str | bytes") -> bool:
        key = digest.encode() if isinstance(digest, str) else bytes(digest)
        for _, topologies in self._delta.values():
            if key in topologies:
                return True
        return _sorted_contains(self._merged_topologies(), key)

    # ------------------------------------------------------------------ #
    # flush / rebuild
    # ------------------------------------------------------------------ #
    def should_flush(self) -> bool:
        return self.delta_chunks >= FLUSH_DELTA_CHUNKS

    def flush(self, records, hash_loader) -> None:
        """Fold every committed record into the merged files (watermark = max).

        Caller must hold the library lock and must only pass records that
        are durably committed — the write order (arrays, bloom, meta last)
        guarantees a crash leaves ``covered_seq`` at or below the truth.
        """
        self.refresh_delta(records, hash_loader)
        if not self._delta and self.covered_seq >= 0:
            return
        delta_patterns = [h for p, _ in self._delta.values() for h in p]
        delta_topologies = [h for _, t in self._delta.values() for h in t]
        merged_patterns = self._merge(self._merged_patterns(), delta_patterns)
        merged_topologies = self._merge(self._merged_topologies(), delta_topologies)
        covered = max(
            [record.seq for record in records if record.seq is not None],
            default=self.covered_seq,
        )
        self._write(merged_patterns, merged_topologies, covered)

    def rebuild(self, records, hash_loader) -> None:
        """Regenerate the whole index from scratch (compaction / repair)."""
        patterns: "set[bytes]" = set()
        topologies: "set[bytes]" = set()
        covered = -1
        for record in records:
            pattern_hashes, topology_hashes = hash_loader(record)
            patterns.update(_as_key(h) for h in pattern_hashes)
            topologies.update(_as_key(h) for h in topology_hashes)
            if record.seq is not None:
                covered = max(covered, record.seq)
        self._write(
            np.sort(_as_hash_array(patterns)),
            np.sort(_as_hash_array(topologies)),
            covered,
        )

    def invalidate(self) -> None:
        """Mark the merged files stale (dedup-dropping compaction in flight).

        Probes fall back to the all-delta path until the next rebuild; the
        meta commit happens first so a crash mid-compaction can never leave
        a watermark that overstates the index.
        """
        self.covered_seq = -1
        self.generation += 1
        self._patterns = self._topologies = None
        self._bloom = None
        meta = {"version": 2, "covered_seq": -1, "generation": self.generation}
        self.dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.dir / META_NAME, json.dumps(meta, sort_keys=True) + "\n")

    @staticmethod
    def _merge(base: np.ndarray, extra: "list[bytes]") -> np.ndarray:
        if not extra:
            return np.sort(np.asarray(base, dtype=HASH_DTYPE))
        extra_arr = _as_hash_array(extra)
        if base.size == 0:
            return np.unique(extra_arr)
        return np.unique(np.concatenate([np.asarray(base, dtype=HASH_DTYPE), extra_arr]))

    def _write(
        self, patterns: np.ndarray, topologies: np.ndarray, covered: int
    ) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        fault_point("index:arrays")
        atomic_write_bytes(self.dir / PATTERN_FILE, lambda fh: np.save(fh, patterns))
        atomic_write_bytes(self.dir / TOPOLOGY_FILE, lambda fh: np.save(fh, topologies))
        bloom = BloomFilter.from_capacity(max(64, 2 * patterns.size))
        bloom.add_many(patterns)
        fault_point("index:bloom")
        atomic_write_bytes(
            self.dir / BLOOM_FILE,
            lambda fh: np.savez_compressed(
                fh,
                bits=bloom.bits,
                num_hashes=np.asarray(bloom.num_hashes, dtype=np.int64),
                capacity=np.asarray(bloom.capacity, dtype=np.int64),
            ),
        )
        meta = {
            "version": 2,
            "covered_seq": int(covered),
            "generation": self.generation + 1,
            "pattern_count": int(patterns.size),
            "topology_count": int(topologies.size),
            "bloom_bits": bloom.num_bits,
            "bloom_hashes": bloom.num_hashes,
        }
        fault_point("index:meta")
        atomic_write_text(self.dir / META_NAME, json.dumps(meta, sort_keys=True) + "\n")
        # Reload lazily from the fresh files; the delta is now covered.
        self.generation += 1
        self.covered_seq = int(covered)
        self._patterns = self._topologies = None
        self._bloom = None
        self._delta = {
            seq: sets for seq, sets in self._delta.items() if seq > self.covered_seq
        }

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Probe-side accounting for ``inspect-library`` and the benchmarks."""
        return {
            "covered_seq": self.covered_seq,
            "delta_chunks": self.delta_chunks,
            "merged_patterns": int(self._merged_patterns().size),
            "merged_topologies": int(self._merged_topologies().size),
            "bloom_bits": self._bloom_filter().num_bits if self._bloom_filter() else 0,
        }

"""Compatibility shim: the library's fault points now live in :mod:`repro.faults`.

PR 9 introduced this module for the pattern library's durability-critical
writes; the framework has since been promoted to the repo-wide
:mod:`repro.faults` (named point registry, kill/delay/error/exit modes,
``REPRO_FAULTS`` env activation) so the serve worker loop, batcher, and
generation stream share one hook with the library.  Existing imports keep
working — everything here re-exports the shared implementation, including
the module-global hook state.
"""

from __future__ import annotations

from repro.faults import (
    InjectedCrash,
    fault_point,
    install_fault_hook,
    record_fault_points,
)

__all__ = ["InjectedCrash", "fault_point", "install_fault_hook", "record_fault_points"]

"""Fault-injection points for the library's durability-critical writes.

Every state-changing filesystem step of the pattern library — temp-file
writes, atomic renames, shard/sidecar/ledger commits — calls
:func:`fault_point` with a stable label *immediately before* executing.
In production the call is a no-op costing one attribute load; under test a
hook is installed that can raise at any point, simulating a process kill
between any two durable operations.  The crash-consistency suites
(``tests/test_library_faults.py``) enumerate every labelled point of an
``append_chunk`` / ``compact`` sequence, kill at each one in turn, and
assert the reopened library recovers losslessly.

The pattern follows the test-VFS approach of production storage engines:
the hooks live in the shipped code so the tested write ordering is the
shipped write ordering, not a test-only re-implementation of it.
"""

from __future__ import annotations

__all__ = ["InjectedCrash", "fault_point", "install_fault_hook", "record_fault_points"]


class InjectedCrash(RuntimeError):
    """Raised by a test hook to simulate a kill at one fault point."""

    def __init__(self, label: str, index: int) -> None:
        super().__init__(f"injected crash at fault point #{index} ({label})")
        self.label = label
        self.index = index


#: The installed hook, or ``None`` (production).  A hook is a callable
#: ``hook(label: str) -> None`` that may raise to simulate a crash.
_hook = None


def fault_point(label: str) -> None:
    """Mark one durable filesystem step; raises only under an injecting hook."""
    if _hook is not None:
        _hook(label)


def install_fault_hook(hook) -> None:
    """Install ``hook`` (or ``None`` to clear).  Test-only."""
    global _hook
    _hook = hook


class record_fault_points:
    """Context manager collecting the labels an operation passes through.

    Used by the fault suites to enumerate kill points before replaying the
    same operation once per point with a crashing hook::

        with record_fault_points() as points:
            library.append_chunk(record, patterns)
        assert "manifest:replace" in points
    """

    def __init__(self) -> None:
        self.labels: list[str] = []

    def __enter__(self) -> "list[str]":
        install_fault_hook(self.labels.append)
        return self.labels

    def __exit__(self, *exc) -> None:
        install_fault_hook(None)

"""Append-only on-disk pattern library: npz shards + a JSON manifest.

The paper's end product is a large *library* of legal patterns judged by
diversity H and legality; this module makes that library a first-class,
persistent artefact instead of an in-memory list that dies with the process:

* **Shards** — each completed generation chunk is written as one
  ``shards/shard_<n>.npz`` file holding its patterns in the
  :meth:`~repro.squish.SquishPattern.as_arrays` codec (the same arrays
  ``SquishPattern.save`` writes, under per-pattern key prefixes), so a
  round trip is lossless and exact.
* **Manifest** — ``manifest.json`` records the run fingerprint (seeds and
  knobs), one accounting record per chunk (counts, solver stats, complexity
  histograms) and the topology-hash registry.  The manifest is rewritten
  atomically (temp file + ``os.replace``) *after* its shard, so a killed run
  leaves at worst one orphaned shard that the restart overwrites.
* **Resume** — a :class:`~repro.pipeline.GenerationGraph` run handed an
  existing library validates the fingerprint, folds the stored records into
  its accumulators and continues with the first chunk the manifest does not
  list; completed chunks are never re-generated.
* **Dedup** — every stored pattern registers the hash of its topology
  matrix; ``dedup=True`` skips patterns whose exact ``(topology, delta_x,
  delta_y)`` triple is already present, and the per-topology registry feeds
  ``num_unique_topologies`` either way.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..metrics import ComplexityHistogram
from ..squish import SquishPattern

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
MANIFEST_VERSION = 1


class LibraryError(RuntimeError):
    """A pattern library on disk is missing, corrupt, or incompatible."""


def topology_hash(topology: np.ndarray) -> str:
    """Stable hex digest of a binary topology matrix (shape-aware)."""
    arr = np.ascontiguousarray(np.asarray(topology, dtype=np.uint8))
    digest = hashlib.sha1()
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def pattern_hash(pattern: SquishPattern) -> str:
    """Hex digest of the full ``(topology, delta_x, delta_y)`` triple."""
    digest = hashlib.sha1()
    digest.update(topology_hash(pattern.topology).encode())
    digest.update(np.ascontiguousarray(pattern.delta_x).tobytes())
    digest.update(np.ascontiguousarray(pattern.delta_y).tobytes())
    return digest.hexdigest()


@dataclass
class ChunkRecord:
    """Accounting for one completed generation chunk.

    The complexity multisets are stored in the compact
    :meth:`~repro.metrics.ComplexityHistogram.as_records` codec
    (``[cx, cy, count]`` rows), and each record carries only the hashes it
    *introduced*, so a chunk's manifest contribution is proportional to the
    chunk, not to the library.
    """

    chunk: int                      # chunk index within the run
    start: int                      # first raw sample index of the chunk
    num_sampled: int                # raw topologies drawn
    num_kept: int                   # survived the prefilter
    num_rejected: int
    unsolved: int                   # kept topologies with no legal solution
    num_patterns: int               # legal patterns produced (pre-dedup)
    num_stored: int                 # patterns written to the shard
    duplicates_skipped: int
    num_clean: int                  # DRC-clean stored patterns
    shard: "str | None"             # shard file name, None for empty chunks
    topology_complexity_counts: list[list[int]] = field(default_factory=list)
    pattern_complexity_counts: list[list[int]] = field(default_factory=list)
    new_pattern_hashes: list[str] = field(default_factory=list)
    new_topology_hashes: list[str] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {key: getattr(self, key) for key in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkRecord":
        return cls(**{key: data[key] for key in cls.__dataclass_fields__ if key in data})


class PatternLibrary:
    """Append-only persistent store for legal squish patterns.

    Parameters
    ----------
    root:
        Directory holding ``manifest.json`` and the ``shards/`` folder.
        Created on first write; an existing manifest is loaded eagerly.
    dedup:
        When ``True``, :meth:`append_chunk` skips patterns whose exact
        ``(topology, delta_x, delta_y)`` hash is already registered.  Off by
        default so a streamed run stays element-wise identical to the batch
        run.  The flag is persisted in the manifest, and an existing
        library's persisted value always wins on reopen — flipping the mode
        midway would make a resumed run diverge from the uninterrupted one.
    """

    def __init__(self, root: "str | Path", dedup: bool = False) -> None:
        self.root = Path(root)
        self.dedup = bool(dedup)
        self.fingerprint: dict = {}
        self.chunk_records: dict[int, ChunkRecord] = {}
        self._pattern_hashes: set[str] = set()
        self._topology_hashes: set[str] = set()
        if self.manifest_path.exists():
            self._load_manifest()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    def shard_path(self, chunk: int) -> Path:
        return self.shard_dir / f"shard_{chunk:05d}.npz"

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_chunks(self) -> int:
        return len(self.chunk_records)

    @property
    def num_patterns(self) -> int:
        """Patterns stored on disk (post-dedup)."""
        return sum(record.num_stored for record in self.chunk_records.values())

    @property
    def num_unique_topologies(self) -> int:
        return len(self._topology_hashes)

    def completed_chunks(self) -> list[int]:
        return sorted(self.chunk_records)

    def records_in_order(self) -> list[ChunkRecord]:
        return [self.chunk_records[index] for index in self.completed_chunks()]

    def pattern_histogram(self) -> ComplexityHistogram:
        """Streaming complexity histogram over every stored pattern."""
        histogram = ComplexityHistogram()
        for record in self.records_in_order():
            histogram.merge(
                ComplexityHistogram.from_records(record.pattern_complexity_counts)
            )
        return histogram

    def diversity(self, base: float = 2.0) -> float:
        """Diversity H of the stored library (incremental accounting)."""
        return self.pattern_histogram().diversity(base=base)

    def legality(self) -> float:
        """DRC-clean fraction of the stored patterns."""
        clean = sum(record.num_clean for record in self.chunk_records.values())
        total = sum(record.num_stored for record in self.chunk_records.values())
        return clean / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """One-look accounting of the whole library."""
        return {
            "chunks": self.num_chunks,
            "patterns": self.num_patterns,
            "unique_topologies": self.num_unique_topologies,
            "diversity": self.diversity(),
            "legality": self.legality(),
        }

    # ------------------------------------------------------------------ #
    # run binding / resume
    # ------------------------------------------------------------------ #
    def bind(self, fingerprint: dict, resume: bool = False) -> list[ChunkRecord]:
        """Attach a generation run to this library.

        A fresh library adopts ``fingerprint``.  An existing one must match
        it exactly — resuming under different seeds or knobs would silently
        mix incompatible streams — and returns the completed chunk records
        (empty unless ``resume`` is set; continuing a populated library
        without ``resume=True`` is an error rather than an implicit append).
        """
        if not self.fingerprint:
            self.fingerprint = dict(fingerprint)
            return []
        if self.fingerprint != dict(fingerprint):
            raise LibraryError(
                "library fingerprint mismatch: the manifest was written by a run "
                f"with {self.fingerprint}, this run has {dict(fingerprint)}; "
                "use a fresh directory (or the original seed/knobs) instead"
            )
        if self.chunk_records and not resume:
            raise LibraryError(
                f"library at {self.root} already holds {self.num_chunks} chunk(s); "
                "pass resume=True to continue it"
            )
        return self.records_in_order()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def plan_chunk(self, patterns: list[SquishPattern]) -> list[bool]:
        """Which of ``patterns`` :meth:`append_chunk` would store.

        Pure (no registry mutation); lets the generation graph compute its
        metrics over exactly the patterns that will be stored — including
        intra-chunk duplicates — before committing the chunk.  With
        ``dedup`` off every pattern is stored.
        """
        if not self.dedup:
            return [True] * len(patterns)
        seen = set(self._pattern_hashes)
        flags = []
        for pattern in patterns:
            digest = pattern_hash(pattern)
            if digest in seen:
                flags.append(False)
            else:
                seen.add(digest)
                flags.append(True)
        return flags

    def append_chunk(
        self, record: ChunkRecord, patterns: list[SquishPattern]
    ) -> list[SquishPattern]:
        """Persist one completed chunk; returns the patterns actually stored.

        The shard is written first, the manifest second (atomically), so an
        interrupt between the two leaves a restartable library.  ``record``
        is mutated in place with the storage accounting (``num_stored``,
        ``duplicates_skipped``, the introduced hashes, the shard name).

        Raises
        ------
        LibraryError
            If ``record.chunk`` is already recorded in the manifest.
        """
        if record.chunk in self.chunk_records:
            raise LibraryError(f"chunk {record.chunk} is already recorded")
        stored = []
        skipped = 0
        new_pattern_hashes: list[str] = []
        new_topology_hashes: list[str] = []
        for pattern in patterns:
            digest = pattern_hash(pattern)
            if self.dedup and digest in self._pattern_hashes:
                skipped += 1
                continue
            if digest not in self._pattern_hashes:
                new_pattern_hashes.append(digest)
                self._pattern_hashes.add(digest)
            topo_digest = topology_hash(pattern.topology)
            if topo_digest not in self._topology_hashes:
                new_topology_hashes.append(topo_digest)
                self._topology_hashes.add(topo_digest)
            stored.append(pattern)
        record.num_stored = len(stored)
        record.duplicates_skipped = skipped
        record.new_pattern_hashes = new_pattern_hashes
        record.new_topology_hashes = new_topology_hashes
        if stored:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            save_shard(self.shard_path(record.chunk), stored)
            record.shard = self.shard_path(record.chunk).name
        else:
            record.shard = None
        self.chunk_records[record.chunk] = record
        self._write_manifest()
        return stored

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load_chunk_patterns(self, chunk: int) -> list[SquishPattern]:
        """Load the stored patterns of one chunk (empty for shard-less chunks).

        Raises
        ------
        LibraryError
            If the chunk is not in the manifest, its shard file is missing,
            or the shard's pattern count disagrees with the manifest.
        """
        record = self.chunk_records.get(chunk)
        if record is None:
            raise LibraryError(f"chunk {chunk} is not recorded in {self.manifest_path}")
        if record.shard is None:
            return []
        path = self.shard_dir / record.shard
        if not path.exists():
            raise LibraryError(f"shard {path} named by the manifest is missing")
        patterns = load_shard(path)
        if len(patterns) != record.num_stored:
            raise LibraryError(
                f"shard {path} holds {len(patterns)} pattern(s) but the manifest "
                f"records {record.num_stored}"
            )
        return patterns

    def load_patterns(self) -> list[SquishPattern]:
        """Every stored pattern, in generation (chunk, position) order."""
        patterns: list[SquishPattern] = []
        for chunk in self.completed_chunks():
            patterns.extend(self.load_chunk_patterns(chunk))
        return patterns

    # ------------------------------------------------------------------ #
    # manifest plumbing
    # ------------------------------------------------------------------ #
    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "dedup": self.dedup,
            "chunks": [record.as_dict() for record in self.records_in_order()],
        }
        tmp_path = self.manifest_path.with_suffix(".json.tmp")
        tmp_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        os.replace(tmp_path, self.manifest_path)

    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise LibraryError(f"cannot read manifest {self.manifest_path}: {error}") from error
        if payload.get("version") != MANIFEST_VERSION:
            raise LibraryError(
                f"manifest {self.manifest_path} has unsupported version "
                f"{payload.get('version')!r} (expected {MANIFEST_VERSION})"
            )
        self.fingerprint = payload.get("fingerprint", {})
        # The persisted mode wins: continuing a deduplicated library without
        # dedup (or vice versa) would silently change what gets stored.
        self.dedup = bool(payload.get("dedup", self.dedup))
        self.chunk_records = {
            record["chunk"]: ChunkRecord.from_dict(record)
            for record in payload.get("chunks", [])
        }
        # The hash registry is the union of every chunk's contribution.
        self._pattern_hashes = set()
        self._topology_hashes = set()
        for record in self.chunk_records.values():
            self._pattern_hashes.update(record.new_pattern_hashes)
            self._topology_hashes.update(record.new_topology_hashes)


# --------------------------------------------------------------------------- #
# shard codec
# --------------------------------------------------------------------------- #
def save_shard(path: "str | Path", patterns: list[SquishPattern]) -> None:
    """Write many patterns to one ``.npz`` shard (lossless).

    Uses the single-pattern :meth:`SquishPattern.as_arrays` codec under
    ``p<i>_`` key prefixes plus a ``count`` array.
    """
    arrays: dict[str, np.ndarray] = {"count": np.asarray(len(patterns), dtype=np.int64)}
    for index, pattern in enumerate(patterns):
        for key, value in pattern.as_arrays().items():
            arrays[f"p{index}_{key}"] = value
    np.savez_compressed(path, **arrays)


def load_shard(path: "str | Path") -> list[SquishPattern]:
    """Load the patterns of one shard written by :func:`save_shard`."""
    with np.load(path) as data:
        if "count" not in data.files:
            raise LibraryError(f"{path} is not a pattern shard (no count array)")
        count = int(data["count"])
        patterns = []
        for index in range(count):
            prefix = f"p{index}_"
            arrays = {
                key.removeprefix(prefix): data[key]
                for key in data.files
                if key.startswith(prefix)
            }
            try:
                patterns.append(
                    SquishPattern.from_arrays(arrays, source=f"{path}[{index}]")
                )
            except ValueError as error:
                raise LibraryError(str(error)) from error
    return patterns

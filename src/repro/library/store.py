"""Append-only on-disk pattern library: npz shards + manifests + hash index.

The paper's end product is a large *library* of legal patterns judged by
diversity H and legality; this module makes that library a first-class,
persistent artefact instead of an in-memory list that dies with the process:

* **Shards** — each completed generation chunk is written as one
  ``shards/*.npz`` file holding its patterns in the
  :meth:`~repro.squish.SquishPattern.as_arrays` codec (the same arrays
  ``SquishPattern.save`` writes, under per-pattern key prefixes), so a
  round trip is lossless and exact.
* **Manifest** — a **v1** library records the run fingerprint (seeds and
  knobs), one accounting record per chunk and the hash registry in a single
  ``manifest.json``, rewritten atomically (temp file + ``os.replace``)
  *after* its shard, so a killed run leaves at worst one orphaned shard that
  the restart overwrites.  A **v2** library (opened with ``writer=``) splits
  the manifest into per-writer ledger shards under ``manifests/`` merged by
  seq order — see :mod:`repro.library.manifest` — so many runs and serve
  workers can append to one library concurrently.
* **Index** — v2 dedup probes go through the on-disk hash index
  (:mod:`repro.library.index`): bloom filter + sorted hash files + sidecar
  deltas, instead of v1's whole-manifest in-memory sets.
* **Resume** — a :class:`~repro.pipeline.GenerationGraph` run handed an
  existing library validates the fingerprint *and the shard files of every
  completed chunk*, folds the stored records into its accumulators and
  continues with the first chunk its ledger does not list; completed chunks
  are never re-generated.
* **Dedup** — every stored pattern registers the hash of its topology
  matrix; ``dedup=True`` skips patterns whose exact ``(topology, delta_x,
  delta_y)`` triple is already present, and the per-topology registry feeds
  ``num_unique_topologies`` either way.

A v1 library opened without ``writer=`` behaves bit-identically to the PR 3
format (same manifest bytes, no lock, no index files); opened *with* a
writer it participates in the v2 merge unchanged on disk (read-side
migration) until an explicit :meth:`PatternLibrary.compact` rewrites it.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..metrics import ComplexityHistogram
from ..squish import SquishPattern
from ..faults import declare_fault_points, fault_point
from .index import (
    INDEX_DIR,
    LibraryIndex,
    load_sidecar,
    sidecar_arrays,
    sidecar_name,
    write_sidecar,
)
from .manifest import (
    LEGACY_WRITER,
    MANIFEST_DIR,
    ChunkRecord,
    LibraryLock,
    WriterLedger,
    atomic_write_bytes,
    atomic_write_text,
    load_ledger,
    scan_ledgers,
    validate_writer_id,
)

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
MANIFEST_VERSION = 1
#: Shards written by :meth:`PatternLibrary.compact` (they hold the slices of
#: several chunk records and are therefore range- rather than exact-checked).
MERGED_SHARD_PREFIX = "merged_"
#: Shards cached for lazy :class:`PatternHandle` loads.
_SHARD_CACHE_SIZE = 4

declare_fault_points(
    "append:shard",
    "append:sidecar",
    "append:ledger",
    "append:index-flush",
    "compact:merged-shard",
    "compact:merged-sidecar",
    "compact:index-invalidate",
    "compact:drop-manifest",
    "compact:index-rebuild",
)

__all__ = [
    "ChunkRecord",
    "CompactionReport",
    "LibraryError",
    "PatternHandle",
    "PatternLibrary",
    "load_shard",
    "load_shard_slice",
    "pattern_hash",
    "save_shard",
    "topology_hash",
]


class LibraryError(RuntimeError):
    """A pattern library on disk is missing, corrupt, or incompatible."""


def topology_hash(topology: np.ndarray) -> str:
    """Stable hex digest of a binary topology matrix (shape-aware)."""
    arr = np.ascontiguousarray(np.asarray(topology, dtype=np.uint8))
    digest = hashlib.sha1()
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


def pattern_hash(pattern: SquishPattern) -> str:
    """Hex digest of the full ``(topology, delta_x, delta_y)`` triple."""
    digest = hashlib.sha1()
    digest.update(topology_hash(pattern.topology).encode())
    digest.update(np.ascontiguousarray(pattern.delta_x).tobytes())
    digest.update(np.ascontiguousarray(pattern.delta_y).tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# query handles / compaction accounting
# --------------------------------------------------------------------------- #
@dataclass
class PatternHandle:
    """One indexed pattern, loadable lazily (sidecar metadata, no shard I/O).

    Returned by :meth:`PatternLibrary.query`; carries the hashes and the
    canonical complexity so filtering and accounting never touch shard
    files.  :meth:`load` materialises the actual :class:`SquishPattern`
    through the library's small shard cache.
    """

    record: ChunkRecord
    position: int          # index within the record's shard slice
    pattern_hash: str
    topology_hash: str
    cx: int
    cy: int
    library: "PatternLibrary" = field(repr=False, default=None)

    @property
    def complexity(self) -> tuple[int, int]:
        return (self.cx, self.cy)

    def load(self) -> SquishPattern:
        return self.library._load_handle(self)


@dataclass
class CompactionReport:
    """What one :meth:`PatternLibrary.compact` call changed."""

    records: int = 0            # chunk records in the merged history
    migrated: int = 0           # legacy manifest.json records moved to ledgers
    shards_before: int = 0
    shards_after: int = 0
    merged_shards_written: int = 0
    patterns_dropped: int = 0   # superseded duplicates removed (dedup mode)

    def as_dict(self) -> dict:
        return {key: getattr(self, key) for key in self.__dataclass_fields__}


class PatternLibrary:
    """Append-only persistent store for legal squish patterns.

    Parameters
    ----------
    root:
        Directory holding the manifest(s) and the ``shards/`` folder.
        Created on first write; existing state is loaded eagerly.
    dedup:
        When ``True``, :meth:`append_chunk` skips patterns whose exact
        ``(topology, delta_x, delta_y)`` hash is already registered.  Off by
        default so a streamed run stays element-wise identical to the batch
        run.  The flag is persisted, and an existing library's persisted
        value always wins on reopen — flipping the mode midway would make a
        resumed run diverge from the uninterrupted one.
    writer:
        ``None`` (default) keeps the v1 single-writer behaviour: one
        ``manifest.json``, in-memory hash sets, bit-identical output to
        PR 3 — unless the library on disk already has ``manifests/`` ledger
        shards, in which case the instance is a read-only merged view.
        A writer id switches the library to v2 multi-writer mode: appends
        go to this writer's own ``manifests/<writer>.json`` under the
        advisory library lock, and dedup probes go through the on-disk
        hash index.  A run resuming a pure-v1 library should keep
        ``writer=None`` (its records live in ``manifest.json``).
    """

    def __init__(
        self, root: "str | Path", dedup: bool = False, writer: "str | None" = None
    ) -> None:
        self.root = Path(root)
        self.dedup = bool(dedup)
        self.writer = validate_writer_id(writer) if writer is not None else None
        self.fingerprint: dict = {}
        self.chunk_records: dict[int, ChunkRecord] = {}
        self._pattern_hashes: set[str] = set()
        self._topology_hashes: set[str] = set()
        self._ledgers: dict[str, WriterLedger] = {}
        self._legacy_unmigrated = False
        self._shard_cache: "OrderedDict[str, list[SquishPattern]]" = OrderedDict()
        self._v2 = self.writer is not None or (self.root / MANIFEST_DIR).is_dir()
        self._index: "LibraryIndex | None" = LibraryIndex(self.root) if self._v2 else None
        if self._v2:
            self._refresh_v2()
        elif self.manifest_path.exists():
            self._load_manifest()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    @property
    def index_dir(self) -> Path:
        return self.root / INDEX_DIR

    def shard_path(self, chunk: int) -> Path:
        if self._v2:
            return self.shard_dir / f"shard_{self.writer}_{chunk:05d}.npz"
        return self.shard_dir / f"shard_{chunk:05d}.npz"

    def _sidecar_path(self, shard_name: str) -> Path:
        return self.index_dir / sidecar_name(shard_name)

    # ------------------------------------------------------------------ #
    # v2 state
    # ------------------------------------------------------------------ #
    def _refresh_v2(self) -> None:
        """Re-read every ledger shard and synchronise the index delta.

        Called on open and at the top of every locked critical section so a
        writer always merges against the latest committed state of its
        peers.  The merged history is a pure function of the on-disk files.
        """
        ledgers: dict[str, WriterLedger] = {}
        for writer_id, path in scan_ledgers(self.root).items():
            ledgers[writer_id] = load_ledger(path)
        self._legacy_unmigrated = False
        # ``manifest.json`` participates as the implicit "legacy" writer
        # until compact() migrates it; once manifests/legacy.json exists it
        # supersedes the (then stale) v1 manifest.
        if LEGACY_WRITER not in ledgers and self.manifest_path.exists():
            ledgers[LEGACY_WRITER] = self._load_legacy_ledger()
            self._legacy_unmigrated = True
        self._ledgers = ledgers
        own = ledgers.get(self.writer) if self.writer is not None else None
        if own is not None:
            # Persisted state wins, exactly like the v1 manifest reload.
            self.dedup = own.dedup
            if own.fingerprint:
                self.fingerprint = own.fingerprint
            self.chunk_records = {record.chunk: record for record in own.chunks}
        else:
            if ledgers:
                anchor = ledgers.get(LEGACY_WRITER) or ledgers[sorted(ledgers)[0]]
                self.dedup = anchor.dedup
            self.chunk_records = {}
        self._shard_cache.clear()
        self._index.reload_meta()
        self._index.refresh_delta(self.records_in_order(), self._record_hashes)

    def _load_legacy_ledger(self) -> WriterLedger:
        """The v1 ``manifest.json`` viewed as a ledger (read-side migration).

        Records are assigned the implicit commit seqs ``0..n-1`` — they
        predate every ledger append, whose seqs start at ``n`` — but the
        file itself is left untouched.
        """
        payload = self._read_manifest_payload()
        records = sorted(
            (ChunkRecord.from_dict(data) for data in payload.get("chunks", [])),
            key=lambda record: record.chunk,
        )
        for seq, record in enumerate(records):
            record.seq = seq
            record.writer = LEGACY_WRITER
        return WriterLedger(
            writer=LEGACY_WRITER,
            fingerprint=payload.get("fingerprint", {}),
            dedup=bool(payload.get("dedup", False)),
            chunks=records,
        )

    def _record_hashes(self, record: ChunkRecord):
        """``(pattern_hashes, topology_hashes)`` for one record's slice.

        The index delta/rebuild loader: sidecar-backed for v2 records,
        inline hash lists for unmigrated legacy records (collectively
        complete — every hash was introduced by exactly one record), shard
        recomputation as the last resort.
        """
        if record.num_new_patterns < 0 and (
            record.new_pattern_hashes or record.new_topology_hashes
        ):
            return record.new_pattern_hashes, record.new_topology_hashes
        if record.shard is None or record.num_stored == 0:
            return [], []
        meta = self._record_metadata(record)
        return meta["pattern_hash"], meta["topology_hash"]

    def _record_metadata(self, record: ChunkRecord) -> dict[str, np.ndarray]:
        """Aligned per-pattern metadata arrays for one record's shard slice."""
        empty = sidecar_arrays([])
        if record.shard is None or record.num_stored == 0:
            return empty
        sidecar = load_sidecar(self._sidecar_path(record.shard))
        lo, hi = record.shard_start, record.shard_start + record.num_stored
        if sidecar is not None and sidecar.get("pattern_hash") is not None:
            if sidecar["pattern_hash"].shape[0] >= hi:
                return {key: value[lo:hi] for key, value in sidecar.items()}
        # No (or torn) sidecar — recompute from the shard itself.
        patterns = self.load_record_patterns(record)
        return sidecar_arrays(patterns)

    def _next_seq(self) -> int:
        committed = [
            record.seq
            for record in self.records_in_order()
            if record.seq is not None
        ]
        return max(committed, default=-1) + 1

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_chunks(self) -> int:
        return len(self.records_in_order())

    @property
    def num_patterns(self) -> int:
        """Patterns stored on disk (post-dedup), across every writer."""
        return sum(record.num_stored for record in self.records_in_order())

    @property
    def num_unique_topologies(self) -> int:
        if not self._v2:
            return len(self._topology_hashes)
        # Exact: appends are lock-serialised, so each topology is counted as
        # "introduced" by exactly one record across all writers.
        return sum(record.introduced_topologies for record in self.records_in_order())

    @property
    def writers(self) -> list[str]:
        """Writer ids contributing to this library (empty for pure v1)."""
        return sorted(self._ledgers)

    def completed_chunks(self) -> list[int]:
        """This writer's completed chunk indices (all chunks for v1)."""
        return sorted(self.chunk_records)

    def own_records(self) -> list[ChunkRecord]:
        """This writer's records in chunk order (all records for v1)."""
        return [self.chunk_records[index] for index in self.completed_chunks()]

    def records_in_order(self) -> list[ChunkRecord]:
        """The merged chunk history, in global commit order.

        For a v1 library this is the manifest's chunk order; for v2 the
        ledger shards are merged by commit ``seq`` — a deterministic pure
        function of the on-disk state, whatever order the writers ran in.
        """
        if not self._v2:
            return self.own_records()
        merged = [
            record for ledger in self._ledgers.values() for record in ledger.chunks
        ]
        merged.sort(
            key=lambda r: (
                r.seq if r.seq is not None else -1,
                r.writer or "",
                r.chunk,
            )
        )
        return merged

    def pattern_histogram(self) -> ComplexityHistogram:
        """Streaming complexity histogram over every stored pattern.

        Folds the per-chunk records' compact complexity codecs — no shard
        is ever loaded, so the cost is proportional to the chunk count.
        """
        histogram = ComplexityHistogram()
        for record in self.records_in_order():
            histogram.merge(
                ComplexityHistogram.from_records(record.pattern_complexity_counts)
            )
        return histogram

    def diversity(self, base: float = 2.0) -> float:
        """Diversity H of the stored library (incremental accounting)."""
        return self.pattern_histogram().diversity(base=base)

    def legality(self) -> float:
        """DRC-clean fraction of the stored patterns."""
        records = self.records_in_order()
        clean = sum(record.num_clean for record in records)
        total = sum(record.num_stored for record in records)
        return clean / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """One-look accounting of the whole library."""
        return {
            "chunks": self.num_chunks,
            "patterns": self.num_patterns,
            "unique_topologies": self.num_unique_topologies,
            "diversity": self.diversity(),
            "legality": self.legality(),
        }

    def index_stats(self) -> "dict | None":
        """On-disk index accounting (``None`` for a pure v1 library)."""
        return self._index.stats() if self._index is not None else None

    # ------------------------------------------------------------------ #
    # membership probes
    # ------------------------------------------------------------------ #
    def has_pattern(self, digest: str) -> bool:
        """Is this exact ``(topology, delta_x, delta_y)`` hash stored?"""
        if self._v2:
            return self._index.has_pattern(digest)
        return digest in self._pattern_hashes

    def has_topology(self, digest: str) -> bool:
        if self._v2:
            return self._index.has_topology(digest)
        return digest in self._topology_hashes

    # ------------------------------------------------------------------ #
    # run binding / resume
    # ------------------------------------------------------------------ #
    def bind(self, fingerprint: dict, resume: bool = False) -> list[ChunkRecord]:
        """Attach a generation run to this library.

        A fresh library (or a fresh writer in a v2 library) adopts
        ``fingerprint``.  An existing one must match it exactly — resuming
        under different seeds or knobs would silently mix incompatible
        streams — and returns this writer's completed chunk records (empty
        unless ``resume`` is set; continuing a populated library without
        ``resume=True`` is an error rather than an implicit append).  On
        resume, every returned record's shard file is validated up front so
        a missing or truncated shard surfaces as a :class:`LibraryError`
        naming the offending chunk instead of a low-level I/O error deep in
        the run.
        """
        if not self.fingerprint:
            self.fingerprint = dict(fingerprint)
            return []
        if self.fingerprint != dict(fingerprint):
            raise LibraryError(
                "library fingerprint mismatch: the manifest was written by a run "
                f"with {self.fingerprint}, this run has {dict(fingerprint)}; "
                "use a fresh directory (or the original seed/knobs) instead"
            )
        if self.chunk_records and not resume:
            raise LibraryError(
                f"library at {self.root} already holds "
                f"{len(self.chunk_records)} chunk(s); pass resume=True to "
                "continue it"
            )
        records = self.own_records()
        if resume:
            self.validate_records(records)
        return records

    def validate_records(self, records: "list[ChunkRecord]") -> None:
        """Check every record's shard exists and holds its full slice.

        Raises
        ------
        LibraryError
            Naming the offending chunk, for a missing, truncated/corrupt,
            or short shard file.
        """
        for record in records:
            if record.shard is None or record.num_stored == 0:
                continue
            path = self.shard_dir / record.shard
            if not path.exists():
                raise LibraryError(
                    f"cannot use chunk {record.chunk}: shard {path} named by "
                    "the manifest is missing"
                )
            try:
                with np.load(path) as data:
                    total = int(data["count"])
            except Exception as error:  # zip/npy corruption surfaces many ways
                raise LibraryError(
                    f"cannot use chunk {record.chunk}: shard {path} is "
                    f"truncated or corrupt ({error})"
                ) from error
            if record.shard_start + record.num_stored > total:
                raise LibraryError(
                    f"cannot use chunk {record.chunk}: shard {path} holds "
                    f"{total} pattern(s) but the manifest records "
                    f"{record.num_stored} at offset {record.shard_start}"
                )

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def plan_chunk(self, patterns: list[SquishPattern]) -> list[bool]:
        """Which of ``patterns`` :meth:`append_chunk` would store.

        Pure (no registry mutation); lets the generation graph compute its
        metrics over exactly the patterns that will be stored — including
        intra-chunk duplicates — before committing the chunk.  With
        ``dedup`` off every pattern is stored.
        """
        if not self.dedup:
            return [True] * len(patterns)
        seen: set[str] = set()
        flags = []
        for pattern in patterns:
            digest = pattern_hash(pattern)
            if digest in seen or self.has_pattern(digest):
                flags.append(False)
            else:
                seen.add(digest)
                flags.append(True)
        return flags

    def append_chunk(
        self, record: ChunkRecord, patterns: list[SquishPattern]
    ) -> list[SquishPattern]:
        """Persist one completed chunk; returns the patterns actually stored.

        The shard is written first, the manifest/ledger second (atomically),
        so an interrupt between the two leaves a restartable library.
        ``record`` is mutated in place with the storage accounting
        (``num_stored``, ``duplicates_skipped``, the introduced hashes or
        counts, the shard name — plus ``seq``/``writer`` in v2 mode).

        In v2 mode the whole refresh → dedup-probe → shard write → ledger
        commit sequence runs under the library lock, which is what makes
        concurrent appends by many writers equivalent to the serial order
        the ``seq`` numbers record.

        Raises
        ------
        LibraryError
            If ``record.chunk`` is already recorded for this writer, or the
            library is a v2 merged view opened without a ``writer``.
        """
        if not self._v2:
            return self._append_chunk_v1(record, patterns)
        if self.writer is None:
            raise LibraryError(
                f"library at {self.root} has multi-writer ledger shards; pass "
                "writer=<id> to append to it"
            )
        with LibraryLock(self.root):
            self._refresh_v2()
            return self._append_chunk_v2(record, patterns)

    def _append_chunk_v1(
        self, record: ChunkRecord, patterns: list[SquishPattern]
    ) -> list[SquishPattern]:
        if record.chunk in self.chunk_records:
            raise LibraryError(f"chunk {record.chunk} is already recorded")
        stored = []
        skipped = 0
        new_pattern_hashes: list[str] = []
        new_topology_hashes: list[str] = []
        for pattern in patterns:
            digest = pattern_hash(pattern)
            if self.dedup and digest in self._pattern_hashes:
                skipped += 1
                continue
            if digest not in self._pattern_hashes:
                new_pattern_hashes.append(digest)
                self._pattern_hashes.add(digest)
            topo_digest = topology_hash(pattern.topology)
            if topo_digest not in self._topology_hashes:
                new_topology_hashes.append(topo_digest)
                self._topology_hashes.add(topo_digest)
            stored.append(pattern)
        record.num_stored = len(stored)
        record.duplicates_skipped = skipped
        record.new_pattern_hashes = new_pattern_hashes
        record.new_topology_hashes = new_topology_hashes
        if stored:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            path = self.shard_path(record.chunk)
            atomic_write_bytes(path, lambda fh: _savez_patterns(fh, stored))
            record.shard = path.name
        else:
            record.shard = None
        self.chunk_records[record.chunk] = record
        self._write_manifest()
        return stored

    def _append_chunk_v2(
        self, record: ChunkRecord, patterns: list[SquishPattern]
    ) -> list[SquishPattern]:
        """The locked body of a v2 append (state already refreshed)."""
        if record.chunk in self.chunk_records:
            raise LibraryError(
                f"chunk {record.chunk} is already recorded for writer "
                f"{self.writer!r}"
            )
        stored = []
        kept_sources: list[int] = []
        kept_clean: list[int] = []
        skipped = 0
        new_patterns: list[str] = []
        new_topologies: list[str] = []
        seen_patterns: set[str] = set()
        seen_topologies: set[str] = set()
        for position, pattern in enumerate(patterns):
            digest = pattern_hash(pattern)
            known = digest in seen_patterns or self._index.has_pattern(digest)
            if self.dedup and known:
                skipped += 1
                continue
            if not known:
                new_patterns.append(digest)
                seen_patterns.add(digest)
            topo_digest = topology_hash(pattern.topology)
            if topo_digest not in seen_topologies and not self._index.has_topology(
                topo_digest
            ):
                new_topologies.append(topo_digest)
                seen_topologies.add(topo_digest)
            stored.append(pattern)
            if record.pattern_sources:
                kept_sources.append(record.pattern_sources[position])
            if record.pattern_clean:
                kept_clean.append(record.pattern_clean[position])
        record.num_stored = len(stored)
        record.duplicates_skipped = skipped
        record.num_new_patterns = len(new_patterns)
        record.num_new_topologies = len(new_topologies)
        # v2 ledgers carry counts, not hash lists — the sidecar is the
        # durable home of the per-pattern hashes.
        record.new_pattern_hashes = []
        record.new_topology_hashes = []
        record.pattern_sources = kept_sources
        record.pattern_clean = kept_clean
        record.writer = self.writer
        record.seq = self._next_seq()
        record.shard_start = 0
        if stored:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            path = self.shard_path(record.chunk)
            fault_point("append:shard")
            atomic_write_bytes(path, lambda fh: _savez_patterns(fh, stored))
            record.shard = path.name
            fault_point("append:sidecar")
            write_sidecar(
                self._sidecar_path(record.shard),
                sidecar_arrays(
                    stored,
                    sources=kept_sources or None,
                    clean=kept_clean or None,
                ),
            )
        else:
            record.shard = None
        ledger = self._ledgers.get(self.writer)
        if ledger is None:
            ledger = WriterLedger(
                writer=self.writer,
                fingerprint=dict(self.fingerprint),
                dedup=self.dedup,
                chunks=[],
            )
            self._ledgers[self.writer] = ledger
        ledger.chunks.append(record)
        fault_point("append:ledger")
        ledger.write(self.root)  # the commit point: seq becomes durable
        self.chunk_records[record.chunk] = record
        self._index.note_committed(record, seen_patterns, seen_topologies)
        if self._index.should_flush():
            fault_point("append:index-flush")
            self._index.flush(self.records_in_order(), self._record_hashes)
        return stored

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load_chunk_patterns(self, chunk: int) -> list[SquishPattern]:
        """Load the stored patterns of one chunk (empty for shard-less chunks).

        Resolves against this writer's chunks first (all chunks for v1); on
        a merged v2 view a bare chunk index must be unambiguous across
        writers — use :meth:`load_record_patterns` otherwise.

        Raises
        ------
        LibraryError
            If the chunk is not recorded, is ambiguous, or its shard file
            is missing/truncated.
        """
        record = self.chunk_records.get(chunk)
        if record is None and self._v2:
            matches = [r for r in self.records_in_order() if r.chunk == chunk]
            if len(matches) > 1:
                writers = sorted({r.writer or LEGACY_WRITER for r in matches})
                raise LibraryError(
                    f"chunk {chunk} is recorded by {len(matches)} writers "
                    f"({', '.join(writers)}); load by record instead"
                )
            record = matches[0] if matches else None
        if record is None:
            raise LibraryError(f"chunk {chunk} is not recorded in {self.root}")
        return self.load_record_patterns(record)

    def load_record_patterns(self, record: ChunkRecord) -> list[SquishPattern]:
        """Load one record's shard slice (validated against the manifest)."""
        if record.shard is None or record.num_stored == 0:
            return []
        path = self.shard_dir / record.shard
        if not path.exists():
            raise LibraryError(
                f"chunk {record.chunk}: shard {path} named by the manifest is "
                "missing"
            )
        try:
            patterns, total = load_shard_slice(
                path, record.shard_start, record.num_stored
            )
        except LibraryError as error:
            raise LibraryError(f"chunk {record.chunk}: {error}") from error
        # Per-chunk shards are owned by exactly one record, so any length
        # disagreement is corruption; merged shards are range-checked only.
        exclusive = not record.shard.startswith(MERGED_SHARD_PREFIX)
        if exclusive and total != record.num_stored:
            raise LibraryError(
                f"shard {path} holds {total} pattern(s) but the manifest "
                f"records {record.num_stored}"
            )
        return patterns

    def iter_patterns(self):
        """Yield every stored pattern in merged commit order, shard by shard.

        Streams with one shard resident at a time — peak memory is bounded
        by the largest shard, not the library (the
        ``test_library_streaming`` tracemalloc gate).
        """
        current_shard: "str | None" = None
        current_patterns: list[SquishPattern] = []
        for record in self.records_in_order():
            if record.shard is None or record.num_stored == 0:
                continue
            if record.shard != current_shard:
                path = self.shard_dir / record.shard
                if not path.exists():
                    raise LibraryError(
                        f"chunk {record.chunk}: shard {path} named by the "
                        "manifest is missing"
                    )
                try:
                    current_patterns = load_shard(path)
                except LibraryError as error:
                    raise LibraryError(f"chunk {record.chunk}: {error}") from error
                current_shard = record.shard
            lo = record.shard_start
            hi = lo + record.num_stored
            if hi > len(current_patterns):
                raise LibraryError(
                    f"shard {self.shard_dir / record.shard} holds "
                    f"{len(current_patterns)} pattern(s) but the manifest "
                    f"records {record.num_stored}"
                )
            yield from current_patterns[lo:hi]

    def load_patterns(self) -> list[SquishPattern]:
        """Every stored pattern, in merged (seq, position) order."""
        return list(self.iter_patterns())

    # ------------------------------------------------------------------ #
    # indexed query
    # ------------------------------------------------------------------ #
    def query(
        self,
        complexity_band: "tuple | None" = None,
        rule_regime: "str | None" = None,
        topology_hash: "str | None" = None,
        writer: "str | None" = None,
    ) -> list[PatternHandle]:
        """Indexed pattern lookup returning lazy :class:`PatternHandle`\\ s.

        Filters compose (AND); none loads a shard — selection runs entirely
        over the index sidecars (or, for an unmigrated v1 record, a one-off
        in-memory recomputation that is never written back):

        * ``complexity_band=(lo, hi)`` — inclusive band on the canonical
          total complexity ``cx + cy`` (either bound may be ``None``).
        * ``rule_regime`` — substring match against the owning writer's run
          fingerprint (e.g. a rule-set repr fragment like ``"min_space=2"``),
          selecting the patterns generated under that regime.
        * ``topology_hash`` — exact topology digest; the index answers
          definite misses without touching any sidecar.
        * ``writer`` — restrict to one writer's chunks.
        """
        if topology_hash is not None and self._v2:
            if not self._index.has_topology(topology_hash):
                return []
        lo, hi = (None, None) if complexity_band is None else complexity_band
        handles: list[PatternHandle] = []
        for record in self.records_in_order():
            if record.shard is None or record.num_stored == 0:
                continue
            if writer is not None and (record.writer or LEGACY_WRITER) != writer:
                continue
            if rule_regime is not None and not self._regime_matches(
                record, rule_regime
            ):
                continue
            meta = self._record_metadata(record)
            topo_hashes = meta["topology_hash"]
            if topology_hash is not None:
                positions = np.flatnonzero(
                    topo_hashes == np.asarray(topology_hash.encode(), dtype="S40")
                )
            else:
                positions = np.arange(record.num_stored)
            if positions.size == 0:
                continue
            cx, cy = meta["cx"], meta["cy"]
            p_hashes = meta["pattern_hash"]
            for position in positions:
                position = int(position)
                total = int(cx[position]) + int(cy[position])
                if lo is not None and total < lo:
                    continue
                if hi is not None and total > hi:
                    continue
                handles.append(
                    PatternHandle(
                        record=record,
                        position=position,
                        pattern_hash=bytes(p_hashes[position]).decode(),
                        topology_hash=bytes(topo_hashes[position]).decode(),
                        cx=int(cx[position]),
                        cy=int(cy[position]),
                        library=self,
                    )
                )
        return handles

    def _regime_matches(self, record: ChunkRecord, rule_regime: str) -> bool:
        if self._v2:
            ledger = self._ledgers.get(record.writer or LEGACY_WRITER)
            fingerprint = ledger.fingerprint if ledger is not None else {}
        else:
            fingerprint = self.fingerprint
        return rule_regime in json.dumps(fingerprint, sort_keys=True)

    def _load_handle(self, handle: PatternHandle) -> SquishPattern:
        patterns = self._shard_patterns(handle.record.shard)
        index = handle.record.shard_start + handle.position
        if index >= len(patterns):
            raise LibraryError(
                f"shard {handle.record.shard} holds {len(patterns)} pattern(s) "
                f"but handle addresses position {index}"
            )
        return patterns[index]

    def _shard_patterns(self, shard_name: str) -> list[SquishPattern]:
        """Whole-shard load through a small LRU (lazy handle backing)."""
        cached = self._shard_cache.get(shard_name)
        if cached is not None:
            self._shard_cache.move_to_end(shard_name)
            return cached
        patterns = load_shard(self.shard_dir / shard_name)
        self._shard_cache[shard_name] = patterns
        while len(self._shard_cache) > _SHARD_CACHE_SIZE:
            self._shard_cache.popitem(last=False)
        return patterns

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def compact(
        self,
        target_shard_patterns: int = 512,
        drop_duplicates: "bool | None" = None,
    ) -> CompactionReport:
        """Merge small shards, drop superseded duplicates, rewrite the index.

        Runs under the library lock.  A pure-v1 library is migrated to the
        v2 layout first (its ``manifest.json`` becomes
        ``manifests/legacy.json`` with sidecars computed for every shard —
        the only operation that rewrites a v1 library).  Records keep their
        ``seq``; small consecutive records are packed into ``merged_*.npz``
        shards of up to ``target_shard_patterns`` patterns each.  With
        ``drop_duplicates`` (default: the library's dedup flag) any pattern
        whose hash already appeared earlier in commit order is removed.

        Crash safety: new shards and sidecars are committed before any
        ledger references them; the index is invalidated *before* a
        dropping rewrite (a stale index would report dropped hashes as
        present) and fully rebuilt at the end; obsolete shard files are
        deleted only after every ledger has been rewritten.
        """
        with LibraryLock(self.root):
            self._v2 = True
            if self._index is None:
                self._index = LibraryIndex(self.root)
            self._refresh_v2()
            drop = self.dedup if drop_duplicates is None else bool(drop_duplicates)
            records = self.records_in_order()
            report = CompactionReport(records=len(records))
            if self._legacy_unmigrated:
                report.migrated = len(self._ledgers[LEGACY_WRITER].chunks)

            old_shards = {r.shard for r in records if r.shard is not None}
            report.shards_before = len(old_shards)
            shard_refs: dict[str, int] = {}
            for record in records:
                if record.shard is not None:
                    shard_refs[record.shard] = shard_refs.get(record.shard, 0) + 1
            next_merged = self._next_merged_shard_index()

            keep_shards: set[str] = set()
            pending: list[tuple[ChunkRecord, list[int]]] = []
            pending_size = 0

            def flush_pending() -> None:
                nonlocal pending, pending_size, next_merged
                if not pending:
                    return
                name = f"{MERGED_SHARD_PREFIX}{next_merged:05d}.npz"
                next_merged += 1
                report.merged_shards_written += 1
                merged_patterns: list[SquishPattern] = []
                merged_meta: list[dict[str, np.ndarray]] = []
                # Load everything against the *old* layout first; only then
                # repoint the records at the merged shard.
                slices = []
                for record, kept in pending:
                    patterns = self.load_record_patterns(record)
                    meta = self._record_metadata(record)
                    slices.append((record, kept, patterns, meta))
                offset = 0
                for record, kept, patterns, meta in slices:
                    merged_patterns.extend(patterns[i] for i in kept)
                    merged_meta.append(
                        {key: value[kept] for key, value in meta.items()}
                    )
                    self._apply_drop(record, kept)
                    record.shard = name
                    record.shard_start = offset
                    offset += len(kept)
                fault_point("compact:merged-shard")
                atomic_write_bytes(
                    self.shard_dir / name,
                    lambda fh: _savez_patterns(fh, merged_patterns),
                )
                keys = merged_meta[0].keys() if merged_meta else []
                shared = [
                    key for key in keys if all(key in m for m in merged_meta)
                ]
                fault_point("compact:merged-sidecar")
                write_sidecar(
                    self._sidecar_path(name),
                    {
                        key: np.concatenate([m[key] for m in merged_meta])
                        for key in shared
                    },
                )
                pending = []
                pending_size = 0

            seen: set[str] = set()
            plans: list[tuple[ChunkRecord, list[int]]] = []
            for record in records:
                self._migrate_record_counts(record)
                if record.shard is None or record.num_stored == 0:
                    record.shard = None
                    record.shard_start = 0
                    continue
                if drop:
                    meta = self._record_metadata(record)
                    kept = []
                    for position, digest in enumerate(meta["pattern_hash"]):
                        digest = bytes(digest).decode()
                        if digest in seen:
                            report.patterns_dropped += 1
                        else:
                            seen.add(digest)
                            kept.append(position)
                else:
                    kept = list(range(record.num_stored))
                plans.append((record, kept))

            # Consecutive records sharing one shard form a group; a group
            # that keeps every pattern, covers its shard completely and
            # already meets the target is left in place (what makes a
            # second compact() a no-op instead of a full rewrite).
            groups: list[tuple[str, list[tuple[ChunkRecord, list[int]]]]] = []
            for record, kept in plans:
                if groups and groups[-1][0] == record.shard:
                    groups[-1][1].append((record, kept))
                else:
                    groups.append((record.shard, [(record, kept)]))
            for shard_name, members in groups:
                unchanged = all(len(k) == r.num_stored for r, k in members)
                total_kept = sum(len(k) for _, k in members)
                if (
                    unchanged
                    and shard_refs[shard_name] == len(members)
                    and total_kept >= target_shard_patterns
                    and self._shard_fully_covered(shard_name, members)
                ):
                    # Healthy full shard: keep in place, just ensure the
                    # sidecar exists for index rebuild / query.
                    if load_sidecar(self._sidecar_path(shard_name)) is None:
                        (record, _), = members
                        write_sidecar(
                            self._sidecar_path(shard_name),
                            self._record_metadata(record),
                        )
                    keep_shards.add(shard_name)
                    continue
                for record, kept in members:
                    if not kept:
                        self._apply_drop(record, kept)
                        record.shard = None
                        record.shard_start = 0
                        continue
                    pending.append((record, kept))
                    pending_size += len(kept)
                    if pending_size >= target_shard_patterns:
                        flush_pending()
            flush_pending()

            if report.patterns_dropped:
                # Dropped hashes would survive as stale positives in the
                # merged files — invalidate before any ledger references
                # the rewritten slices.
                fault_point("compact:index-invalidate")
                self._index.invalidate()
            for writer_id in sorted(self._ledgers):
                fault_point(f"compact:ledger:{writer_id}")
                self._ledgers[writer_id].write(self.root)
            if self._legacy_unmigrated and self.manifest_path.exists():
                # manifests/legacy.json now supersedes it (readers prefer
                # the ledger whenever both exist).
                fault_point("compact:drop-manifest")
                self.manifest_path.unlink()
            retired = old_shards - keep_shards
            for shard_name in sorted(retired):
                for stale in (
                    self.shard_dir / shard_name,
                    self._sidecar_path(shard_name),
                ):
                    fault_point(f"compact:unlink:{stale.name}")
                    stale.unlink(missing_ok=True)
            fault_point("compact:index-rebuild")
            self._index.rebuild(self.records_in_order(), self._record_hashes)
            self._refresh_v2()
            report.shards_after = len(
                {r.shard for r in self.records_in_order() if r.shard is not None}
            )
            return report

    def _shard_fully_covered(self, shard_name: str, members) -> bool:
        """Do ``members``' slices tile the whole shard contiguously from 0?"""
        offset = 0
        for start, count in sorted((r.shard_start, r.num_stored) for r, _ in members):
            if start != offset:
                return False
            offset += count
        sidecar = load_sidecar(self._sidecar_path(shard_name))
        if sidecar is None:
            # An exclusive per-chunk shard's length is validated against
            # num_stored on every load; merged shards without a sidecar are
            # rewritten rather than trusted.
            return len(members) == 1 and not shard_name.startswith(
                MERGED_SHARD_PREFIX
            )
        return int(sidecar["pattern_hash"].size) == offset

    @staticmethod
    def _migrate_record_counts(record: ChunkRecord) -> None:
        """Freeze a legacy record's introduced counts and drop its hash lists
        (their v2 home is the sidecar written alongside)."""
        if record.num_new_patterns < 0:
            record.num_new_patterns = len(record.new_pattern_hashes)
        if record.num_new_topologies < 0:
            record.num_new_topologies = len(record.new_topology_hashes)
        record.new_pattern_hashes = []
        record.new_topology_hashes = []

    @staticmethod
    def _apply_drop(record: ChunkRecord, kept: list[int]) -> None:
        """Account a compaction keep-list into the record's stored stats."""
        dropped = record.num_stored - len(kept)
        if dropped <= 0:
            return
        if record.pattern_clean:
            record.pattern_clean = [record.pattern_clean[i] for i in kept]
            record.num_clean = sum(1 for c in record.pattern_clean if c)
        else:
            record.num_clean = min(record.num_clean, len(kept))
        if record.pattern_sources:
            record.pattern_sources = [record.pattern_sources[i] for i in kept]
        record.num_stored = len(kept)
        record.duplicates_skipped += dropped

    def _next_merged_shard_index(self) -> int:
        if not self.shard_dir.is_dir():
            return 0
        highest = -1
        for path in self.shard_dir.glob(f"{MERGED_SHARD_PREFIX}*.npz"):
            stem = path.name[len(MERGED_SHARD_PREFIX) : -len(".npz")]
            if stem.isdigit():
                highest = max(highest, int(stem))
        return highest + 1

    def rebuild_index(self) -> dict:
        """Regenerate the on-disk index from the ledgers/shards (locked)."""
        if not self._v2:
            raise LibraryError(
                "a pure v1 library has no on-disk index; open it with "
                "writer=<id> or compact() it first"
            )
        with LibraryLock(self.root):
            self._refresh_v2()
            self._index.rebuild(self.records_in_order(), self._record_hashes)
            self._refresh_v2()
            return self._index.stats()

    # ------------------------------------------------------------------ #
    # manifest plumbing (v1)
    # ------------------------------------------------------------------ #
    def _write_manifest(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint,
            "dedup": self.dedup,
            "chunks": [record.as_dict() for record in self.own_records()],
        }
        atomic_write_text(
            self.manifest_path, json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )

    def _read_manifest_payload(self) -> dict:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise LibraryError(
                f"cannot read manifest {self.manifest_path}: {error}"
            ) from error
        if payload.get("version") != MANIFEST_VERSION:
            raise LibraryError(
                f"manifest {self.manifest_path} has unsupported version "
                f"{payload.get('version')!r} (expected {MANIFEST_VERSION})"
            )
        return payload

    def _load_manifest(self) -> None:
        payload = self._read_manifest_payload()
        self.fingerprint = payload.get("fingerprint", {})
        # The persisted mode wins: continuing a deduplicated library without
        # dedup (or vice versa) would silently change what gets stored.
        self.dedup = bool(payload.get("dedup", self.dedup))
        self.chunk_records = {
            record["chunk"]: ChunkRecord.from_dict(record)
            for record in payload.get("chunks", [])
        }
        # The hash registry is the union of every chunk's contribution.
        self._pattern_hashes = set()
        self._topology_hashes = set()
        for record in self.chunk_records.values():
            self._pattern_hashes.update(record.new_pattern_hashes)
            self._topology_hashes.update(record.new_topology_hashes)


# --------------------------------------------------------------------------- #
# shard codec
# --------------------------------------------------------------------------- #
def _savez_patterns(file_obj, patterns: list[SquishPattern]) -> None:
    arrays: dict[str, np.ndarray] = {
        "count": np.asarray(len(patterns), dtype=np.int64)
    }
    for index, pattern in enumerate(patterns):
        for key, value in pattern.as_arrays().items():
            arrays[f"p{index}_{key}"] = value
    np.savez_compressed(file_obj, **arrays)


def save_shard(path: "str | Path", patterns: list[SquishPattern]) -> None:
    """Write many patterns to one ``.npz`` shard (lossless).

    Uses the single-pattern :meth:`SquishPattern.as_arrays` codec under
    ``p<i>_`` key prefixes plus a ``count`` array.
    """
    with open(path, "wb") as handle:
        _savez_patterns(handle, patterns)


def load_shard_slice(
    path: "str | Path", start: int, count: int
) -> tuple[list[SquishPattern], int]:
    """Load ``count`` patterns at offset ``start`` of one shard.

    Returns ``(patterns, total)`` where ``total`` is the shard's full
    pattern count (callers validate it against their manifest record).
    """
    try:
        with np.load(path) as data:
            if "count" not in data.files:
                raise LibraryError(f"{path} is not a pattern shard (no count array)")
            total = int(data["count"])
            if start + count > total:
                raise LibraryError(
                    f"shard {path} holds {total} pattern(s); cannot load "
                    f"{count} at offset {start}"
                )
            patterns = []
            for index in range(start, start + count):
                prefix = f"p{index}_"
                arrays = {
                    key.removeprefix(prefix): data[key]
                    for key in data.files
                    if key.startswith(prefix)
                }
                try:
                    patterns.append(
                        SquishPattern.from_arrays(arrays, source=f"{path}[{index}]")
                    )
                except ValueError as error:
                    raise LibraryError(str(error)) from error
    except LibraryError:
        raise
    except Exception as error:  # torn zip/npy members surface many ways
        raise LibraryError(
            f"shard {path} is truncated or corrupt ({error})"
        ) from error
    return patterns, total


def load_shard(path: "str | Path") -> list[SquishPattern]:
    """Load the patterns of one shard written by :func:`save_shard`."""
    try:
        with np.load(path) as data:
            if "count" not in data.files:
                raise LibraryError(f"{path} is not a pattern shard (no count array)")
            total = int(data["count"])
    except LibraryError:
        raise
    except Exception as error:
        raise LibraryError(
            f"shard {path} is truncated or corrupt ({error})"
        ) from error
    patterns, _ = load_shard_slice(path, 0, total)
    return patterns

"""``python -m repro`` — the scenario-driven command-line front end.

Subcommands:

* ``list-scenarios``  — names, descriptions and key knobs of every registered
  scenario (built-ins plus any ``--scenario-file``).
* ``generate``        — lower a scenario and run it end to end (data →
  train → streamed sample/prefilter/legalize/DRC), optionally persisting a
  resumable :class:`~repro.library.PatternLibrary` with ``--out``.
* ``resume``          — continue a killed ``generate --out`` run from its
  manifest; completed chunks are folded from disk, never re-generated.
* ``inspect-library`` — summarise an on-disk library (chunks, patterns,
  unique topologies, diversity H, legality, per-chunk accounting) and run
  indexed queries (``--band``/``--topology``/``--regime``/``--from-writer``).
* ``compact-library`` — merge small shards, drop superseded duplicates and
  rebuild the on-disk index; migrates a v1 library to the sharded v2 layout.
* ``bench``           — run a scenario and report per-stage throughput
  (sampling, legalization, graph), optionally as machine-readable JSON.
* ``serve``           — run the long-lived generation daemon: concurrent
  requests are coalesced into shared sampling/legalization batches, results
  stream back per chunk, repeat windows are answered from the pattern cache
  (see ``docs/serving.md``).

Every subcommand accepts ``--scenario-file`` (repeatable, TOML or JSON) to
register user scenarios next to the built-ins; ``generate``/``resume``/
``bench`` accept knob flags (``--generate``, ``--seed``, ``--workers``, ...)
that layer over the named scenario exactly like an ``extends`` child.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .scenarios import (
    RunPlan,
    ScenarioError,
    ScenarioRegistry,
    builtin_registry,
    load_scenarios,
)

__all__ = ["main", "build_parser", "knob_overrides"]


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario-file",
        action="append",
        default=[],
        metavar="FILE",
        help="register extra scenarios from a TOML/JSON file (repeatable); "
        "file scenarios may extend the built-ins",
    )


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", required=True, help="scenario name to run")
    parser.add_argument(
        "--generate", type=int, default=None, metavar="N", help="override run.num_generated"
    )
    parser.add_argument(
        "--solutions", type=int, default=None, metavar="N", help="override run.num_solutions"
    )
    parser.add_argument("--seed", type=int, default=None, help="override run.seed")
    parser.add_argument(
        "--train-iterations", type=int, default=None, metavar="N",
        help="override training.iterations",
    )
    parser.add_argument(
        "--training-patterns", type=int, default=None, metavar="N",
        help="override training.num_patterns",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="override engine.workers (0 = auto-size to host CPUs)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="override engine.stream_chunk_size (memory knob only)",
    )
    parser.add_argument(
        "--solver-mode", choices=("auto", "slsqp"), default=None,
        help="override engine.solver_mode (auto = repair-first fast path, "
        "slsqp = full solve, bit-identical to the historical solver)",
    )
    parser.add_argument(
        "--batch-solve", choices=("on", "off"), default=None,
        help="override engine.batch_solve (on = cross-topology batched "
        "legalization: whole-chunk repair sweeps + block-diagonal SLSQP "
        "tail; off = serial per-topology reference path; bit-identical "
        "output either way)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, metavar="N",
        help="override sampling.steps: denoising steps per sample on the "
        "evenly respaced chain (0 = full trained chain; fewer steps = "
        "fewer U-Net evaluations, see docs/sampling.md)",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="single-barrier path instead of streaming (identical output)",
    )
    parser.add_argument(
        "--dedup", action="store_true",
        help="skip exact-duplicate patterns when persisting with --out",
    )
    parser.add_argument(
        "--writer", default=None, metavar="ID",
        help="writer id for --out: opens the library in the sharded v2 "
        "layout so several producers can append to one library "
        "concurrently (each writer keeps its own manifest ledger)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario-driven DiffPattern generation CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list-scenarios", help="list registered scenarios and their knobs"
    )
    _add_scenario_options(p_list)
    p_list.add_argument(
        "--verbose", action="store_true", help="print each resolved spec as JSON"
    )

    p_gen = sub.add_parser(
        "generate", help="run a scenario end to end (train + generate + assess)"
    )
    _add_scenario_options(p_gen)
    _add_run_options(p_gen)
    p_gen.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="persist a resumable pattern library (npz shards + manifest)",
    )
    p_gen.add_argument(
        "--resume", action="store_true",
        help="continue a killed --out run from its manifest",
    )

    p_res = sub.add_parser(
        "resume", help="shorthand for `generate --resume` on an existing library"
    )
    _add_scenario_options(p_res)
    _add_run_options(p_res)
    p_res.add_argument(
        "--out", type=Path, required=True, metavar="DIR",
        help="library directory of the run to continue",
    )

    p_ins = sub.add_parser("inspect-library", help="summarise an on-disk pattern library")
    p_ins.add_argument(
        "library", type=Path,
        help="library directory (holds manifest.json or manifests/)",
    )
    p_ins.add_argument(
        "--chunks", action="store_true", help="print the per-chunk accounting table"
    )
    p_ins.add_argument(
        "--band", default=None, metavar="LO:HI",
        help="query: inclusive complexity band on cx+cy (either end may be "
        "empty, e.g. ':24' or '16:')",
    )
    p_ins.add_argument(
        "--topology", default=None, metavar="HASH",
        help="query: exact topology hash (sha1 hex)",
    )
    p_ins.add_argument(
        "--regime", default=None, metavar="SUBSTR",
        help="query: substring matched against the owning run's rule/"
        "fingerprint regime (e.g. 'space_min.: 2')",
    )
    p_ins.add_argument(
        "--from-writer", default=None, metavar="ID",
        help="query: only patterns appended by this writer",
    )
    p_ins.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="print at most N query matches (default 20)",
    )

    p_cmp = sub.add_parser(
        "compact-library",
        help="merge small shards, drop superseded duplicates, rebuild the "
        "index (migrates a v1 library to the sharded v2 layout)",
    )
    p_cmp.add_argument("library", type=Path, help="library directory")
    p_cmp.add_argument(
        "--target-shard-patterns", type=int, default=512, metavar="N",
        help="pack merged shards up to N patterns each (default 512)",
    )
    p_cmp.add_argument(
        "--keep-duplicates", action="store_true",
        help="never drop patterns, even when the library was written with "
        "dedup (compaction then only merges shards and rebuilds the index)",
    )

    p_bench = sub.add_parser(
        "bench", help="run a scenario and report per-stage throughput"
    )
    _add_scenario_options(p_bench)
    _add_run_options(p_bench)
    p_bench.add_argument(
        "--metrics", type=Path, default=None, metavar="FILE",
        help="also write machine-readable metrics JSON",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived generation daemon (cross-request batching, "
        "streamed results, /healthz + /metrics; see docs/serving.md)",
    )
    _add_scenario_options(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8181, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=8, metavar="N",
        help="backpressure bound: in-flight requests before submits get 429",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="largest coalesced sampling/legalization batch (memory knob)",
    )
    p_serve.add_argument(
        "--library", type=Path, default=None, metavar="DIR",
        help="pattern-library directory backing the serve cache: generated "
        "chunks are persisted per stream writer and restored on restart",
    )
    p_serve.add_argument(
        "--supervised", action="store_true",
        help="run generation in supervised child worker processes: crashes "
        "and hangs are detected, the worker restarts, and the in-flight "
        "window is resubmitted deterministically",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline (requests may set their own)",
    )
    p_serve.add_argument(
        "--retry-budget", type=int, default=2, metavar="N",
        help="failed warmup/advance calls retried up to N times with "
        "exponential backoff before the request group fails (default 2)",
    )
    p_serve.add_argument(
        "--advance-timeout", type=float, default=None, metavar="SECONDS",
        help="supervised mode: a worker advance slower than this is treated "
        "as hung and the worker is restarted",
    )
    p_serve.add_argument(
        "--max-restarts", type=int, default=2, metavar="N",
        help="supervised mode: worker restarts allowed per advance before "
        "the failure is surfaced (default 2)",
    )
    return parser


# --------------------------------------------------------------------------- #
# scenario resolution
# --------------------------------------------------------------------------- #
def _registry_for(args: argparse.Namespace) -> ScenarioRegistry:
    registry = builtin_registry()
    for path in getattr(args, "scenario_file", []):
        load_scenarios(path, registry=registry)
    return registry


def knob_overrides(
    *,
    generate: "int | None" = None,
    solutions: "int | None" = None,
    seed: "int | None" = None,
    train_iterations: "int | None" = None,
    training_patterns: "int | None" = None,
    workers: "int | None" = None,
    chunk_size: "int | None" = None,
    solver_mode: "str | None" = None,
    batch_solve: "bool | None" = None,
    steps: "int | None" = None,
    stream: "bool | None" = None,
    dedup: bool = False,
) -> dict:
    """Knob values as a spec-override mapping (empty sections omitted).

    ``None`` means "keep the scenario's value" (``stream`` is tri-state for
    exactly that reason), and ``dedup`` only overrides when set — a
    scenario's own choice is never silently forced back to the default.
    Shared by the CLI flag handling and ``examples/quickstart.py`` so the
    two cannot drift.
    """
    training = {}
    if train_iterations is not None:
        training["iterations"] = train_iterations
    if training_patterns is not None:
        training["num_patterns"] = training_patterns
    engine = {}
    if workers is not None:
        engine["workers"] = workers
    if chunk_size is not None:
        engine["stream_chunk_size"] = chunk_size
    if solver_mode is not None:
        engine["solver_mode"] = solver_mode
    if batch_solve is not None:
        engine["batch_solve"] = batch_solve
    sampling = {}
    if steps is not None:
        # 0 keeps the TOML convention: "no null literal" -> full chain.
        sampling["steps"] = steps
    run = {}
    if generate is not None:
        run["num_generated"] = generate
    if solutions is not None:
        run["num_solutions"] = solutions
    if seed is not None:
        run["seed"] = seed
    if stream is not None:
        run["stream"] = stream
    if dedup:
        run["dedup"] = True
    overrides = {}
    if training:
        overrides["training"] = training
    if engine:
        overrides["engine"] = engine
    if sampling:
        overrides["sampling"] = sampling
    if run:
        overrides["run"] = run
    return overrides


def _overrides_from(args: argparse.Namespace) -> dict:
    """The parsed knob flags as a spec-override mapping."""
    return knob_overrides(
        generate=args.generate,
        solutions=args.solutions,
        seed=args.seed,
        train_iterations=args.train_iterations,
        training_patterns=args.training_patterns,
        workers=args.workers,
        chunk_size=args.chunk_size,
        solver_mode=args.solver_mode,
        batch_solve=None if args.batch_solve is None else args.batch_solve == "on",
        steps=args.steps,
        stream=False if args.batch else None,
        dedup=args.dedup,
    )


def _plan_for(args: argparse.Namespace) -> RunPlan:
    spec = _registry_for(args).resolve(args.scenario)
    overrides = _overrides_from(args)
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec.lower()


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    from .serve.server import servable_note

    registry = _registry_for(args)
    for name in registry.names():
        spec = registry.resolve(name)
        plan = spec.lower()
        print(f"{name:<20} {spec.description}")
        steps = plan.config.sampling_steps
        sampler = (
            f"  sampler={steps}/{plan.config.diffusion.num_steps} steps"
            if steps is not None
            else ""
        )
        print(
            f"{'':<20} preset={spec.preset or 'tiny'}  "
            f"generate={plan.num_generated}x{plan.num_solutions}  "
            f"rules(space={plan.config.rules.space_min}, "
            f"area<={plan.config.rules.area_max})  "
            f"train={plan.config.train_iterations} it{sampler}"
        )
        print(f"{'':<20} {servable_note(spec)}")
        if args.verbose:
            print(json.dumps(spec.as_dict(), indent=2, sort_keys=True))
    return 0


def _execute_plan(
    plan: RunPlan, out: "Path | None", resume: bool, writer: "str | None" = None
) -> tuple:
    """Run a lowered plan end to end; returns ``(result, library)``.

    Mirrors :meth:`~repro.pipeline.DiffPatternPipeline.run` (one rng drives
    data → train → generate, so a resumed run replays the identical seeds)
    with the plan's stream / dedup / retention knobs applied.
    """
    from .library import PatternLibrary
    from .pipeline import DiffPatternPipeline
    from .utils import as_rng

    if resume and out is None:
        raise ScenarioError("--resume needs --out: the manifest is what a run resumes from")
    if writer is not None and out is None:
        raise ScenarioError("--writer needs --out: a writer id names a library ledger")
    pipeline = DiffPatternPipeline(plan.config)
    gen = as_rng(plan.seed)
    print(f"[1/3] dataset: {plan.num_training_patterns} synthetic training patterns ...")
    pipeline.prepare_data(plan.num_training_patterns, rng=gen)
    print(f"[2/3] training: {plan.config.train_iterations} iterations ...")
    pipeline.train(rng=gen)
    library = (
        PatternLibrary(out, dedup=plan.dedup, writer=writer) if out is not None else None
    )
    mode = "streamed" if plan.stream else "batch"
    print(
        f"[3/3] generation graph ({mode}): {plan.num_generated} topologies "
        f"x {plan.num_solutions} solution(s) ..."
    )
    result = pipeline.generate_and_legalize(
        plan.num_generated,
        num_solutions=plan.num_solutions,
        rng=gen,
        stream=plan.stream,
        retain_topologies=plan.retain_topologies,
        library=library,
        resume=resume,
    )
    return result, library


def _print_result(plan: RunPlan, result, library, out: "Path | None") -> None:
    print()
    print(plan.summary())
    print()
    print(f"legal patterns         : {result.num_patterns}")
    print(f"prefilter reject rate  : {result.prefilter_reject_rate:.1%}")
    print(f"unsolved topologies    : {result.unsolved}")
    print(f"legality (DRC)         : {result.legality:.1%}")
    print(f"pattern diversity H    : {result.pattern_diversity:.4f}")
    if library is not None:
        print(f"library at {out}: {library.summary()}")
        print("(kill a generate run and use `python -m repro resume` to continue it)")


def _cmd_generate(args: argparse.Namespace, resume: "bool | None" = None) -> int:
    plan = _plan_for(args)
    resume = args.resume if resume is None else resume
    result, library = _execute_plan(plan, args.out, resume, writer=args.writer)
    _print_result(plan, result, library, args.out)
    return 0


def _parse_band(text: str) -> tuple:
    """``'LO:HI'`` → an inclusive ``(lo, hi)`` band; empty ends stay open."""
    lo_text, sep, hi_text = text.partition(":")
    if not sep:
        raise ScenarioError(f"--band wants LO:HI (either end may be empty), got {text!r}")
    try:
        lo = int(lo_text) if lo_text else None
        hi = int(hi_text) if hi_text else None
    except ValueError as error:
        raise ScenarioError(f"--band bounds must be integers: {error}") from None
    return lo, hi


def _cmd_inspect_library(args: argparse.Namespace) -> int:
    from .library import MANIFEST_DIR, LibraryError, PatternLibrary

    manifest = Path(args.library) / "manifest.json"
    manifests = Path(args.library) / MANIFEST_DIR
    if not manifest.exists() and not manifests.is_dir():
        raise LibraryError(
            f"{args.library} holds no pattern library "
            f"(missing {manifest} and {manifests}/)"
        )
    library = PatternLibrary(args.library)
    summary = library.summary()
    print(f"pattern library at {args.library}")
    for key, value in summary.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"  {key:<18} {rendered}")
    if library.writers:
        print(f"  {'layout':<18} v2 (sharded, {len(library.writers)} writer(s))")
        print(f"  {'writers':<18} {', '.join(library.writers)}")
        stats = library.index_stats()
        if stats is not None:
            print(
                f"  {'index':<18} covered_seq={stats['covered_seq']} "
                f"merged={stats['merged_patterns']} "
                f"delta_chunks={stats['delta_chunks']} "
                f"bloom_bits={stats['bloom_bits']}"
            )
    else:
        print(f"  {'layout':<18} v1 (single manifest.json)")
    if library.fingerprint:
        print("  fingerprint:")
        for key, value in sorted(library.fingerprint.items()):
            print(f"    {key:<16} {value}")
    if args.chunks:
        print()
        header = (
            f"{'chunk':>5} {'seq':>5} {'writer':>14} {'start':>6} {'sampled':>8} "
            f"{'kept':>5} {'patterns':>9} {'stored':>7} {'clean':>6} {'shard'}"
        )
        print(header)
        print("-" * len(header))
        for record in library.records_in_order():
            seq = "-" if record.seq is None else record.seq
            print(
                f"{record.chunk:>5} {seq:>5} "
                f"{(record.writer or '-'):>14} "
                f"{record.start:>6} {record.num_sampled:>8} "
                f"{record.num_kept:>5} {record.num_patterns:>9} "
                f"{record.num_stored:>7} {record.num_clean:>6} {record.shard or '-'}"
            )
    if args.band or args.topology or args.regime or args.from_writer:
        band = _parse_band(args.band) if args.band else None
        handles = library.query(
            complexity_band=band,
            rule_regime=args.regime,
            topology_hash=args.topology,
            writer=args.from_writer,
        )
        print()
        print(f"query matched {len(handles)} pattern(s)")
        for handle in handles[: max(args.limit, 0)]:
            print(
                f"  seq={handle.record.seq:>4} chunk={handle.record.chunk:>4} "
                f"pos={handle.position:>4} cx+cy={handle.cx + handle.cy:>3} "
                f"topology={handle.topology_hash[:12]} "
                f"pattern={handle.pattern_hash[:12]}"
            )
        if len(handles) > args.limit > 0:
            print(f"  ... {len(handles) - args.limit} more (raise --limit)")
    return 0


def _cmd_compact_library(args: argparse.Namespace) -> int:
    from .library import MANIFEST_DIR, LibraryError, PatternLibrary

    manifest = Path(args.library) / "manifest.json"
    manifests = Path(args.library) / MANIFEST_DIR
    if not manifest.exists() and not manifests.is_dir():
        raise LibraryError(
            f"{args.library} holds no pattern library "
            f"(missing {manifest} and {manifests}/)"
        )
    library = PatternLibrary(args.library)
    report = library.compact(
        target_shard_patterns=args.target_shard_patterns,
        drop_duplicates=False if args.keep_duplicates else None,
    )
    print(f"compacted pattern library at {args.library}")
    for key, value in sorted(report.as_dict().items()):
        print(f"  {key:<22} {value}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    plan = _plan_for(args)
    result, library = _execute_plan(plan, None, resume=False)
    _print_result(plan, result, library, None)
    sampling = result.sampling_report
    legalization = result.legalization_report
    if sampling is not None:
        print("\nsampling stage:")
        print(sampling.format())
    if legalization is not None and legalization.num_topologies:
        print("\nlegalization stage:")
        print(legalization.format())
    if args.metrics is not None:
        metrics = {
            "scenario": plan.scenario,
            "num_generated": plan.num_generated,
            "num_patterns": result.num_patterns,
            "legality": result.legality,
            "pattern_diversity": result.pattern_diversity,
            "sampling_samples_per_second": (
                sampling.samples_per_second if sampling is not None else None
            ),
            "sampling_steps": (
                sampling.num_steps if sampling is not None else None
            ),
            "sampling_chain_steps": (
                sampling.chain_steps if sampling is not None else None
            ),
            "sampling_model_evals": (
                sampling.model_evals if sampling is not None else None
            ),
            "legalize_topologies_per_second": (
                legalization.topologies_per_second
                if legalization is not None and legalization.num_topologies
                else None
            ),
        }
        args.metrics.parent.mkdir(parents=True, exist_ok=True)
        args.metrics.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        print(f"\nmetrics written to {args.metrics}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the generation daemon until interrupted (see docs/serving.md)."""
    import asyncio

    from .serve import ServeServer
    from .serve.server import _serve_until_interrupted, service_from_args

    registry = _registry_for(args)
    service = service_from_args(args, registry)
    server = ServeServer(service, host=args.host, port=args.port)
    try:
        asyncio.run(_serve_until_interrupted(server))
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Scenario/library errors print one diagnostic line on stderr and exit 1;
    argparse usage errors exit 2 as usual.
    """
    from .library import LibraryError

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-scenarios": _cmd_list_scenarios,
        "generate": _cmd_generate,
        "resume": lambda a: _cmd_generate(a, resume=True),
        "inspect-library": _cmd_inspect_library,
        "compact-library": _cmd_compact_library,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except (ScenarioError, LibraryError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (`... | head`); not an error.  Point
        # stdout at devnull so interpreter shutdown doesn't re-raise while
        # flushing the dead pipe.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

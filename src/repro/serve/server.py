"""Minimal HTTP/1.1 transport over the generation service.

``python -m repro serve`` (and the ``repro-serve`` console script) runs
:class:`ServeServer`: a dependency-free asyncio HTTP daemon — stdlib only,
hand-rolled request parsing over :func:`asyncio.start_server` — exposing

* ``GET /healthz`` — combined health: service state (``ok`` / ``degraded``
  / ``stopping``), liveness, readiness and the pending-request gauge;
* ``GET /healthz/live`` — **liveness** alone: 200 whenever the process
  answers (a live-but-degraded daemon must not be restarted by its
  orchestrator — restarts don't fix a failing backing store);
* ``GET /healthz/ready`` — **readiness**: 200 only when new live-generation
  work is being accepted, 503 while degraded or stopping (take the
  instance out of rotation, don't kill it);
* ``GET /metrics`` — the :meth:`~repro.serve.ServeMetrics.snapshot` JSON;
* ``GET /scenarios`` — the registry with per-scenario servability notes;
* ``POST /generate`` — a :class:`~repro.serve.protocol.GenerateRequest`
  JSON body, answered as a **chunked NDJSON stream**: one line per
  :class:`~repro.serve.protocol.ChunkPayload` as each shared batch
  completes, terminated by the request's
  :class:`~repro.serve.protocol.RequestSummary` line.  A client that
  disconnects mid-stream has its request cancelled: pending work is
  dropped, the batch slot is released, metrics/cache stay consistent.

Error mapping: malformed body / unknown scenario → 400, backpressure
rejection → 429 with a ``Retry-After`` hint, service stopping or degraded
(circuit breaker open) → 503 (degraded also carries ``Retry-After``),
unknown path → 404.  See ``docs/serving.md`` for the full lifecycle and
failure model.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from ..scenarios import ScenarioError, builtin_registry, load_scenarios
from .protocol import GenerateRequest, ProtocolError, RequestSummary
from .service import (
    GenerationService,
    ServiceBusyError,
    ServiceClosedError,
    ServiceDegradedError,
)
from .supervisor import WorkerConfig

__all__ = ["ServeServer", "main", "scenario_listing", "servable_note", "service_from_args"]

_MAX_BODY = 4 * 1024 * 1024


def servable_note(spec) -> str:
    """One-line servability note for a resolved scenario spec.

    Every registered scenario is servable with overrides; the note tells an
    operator what the first request will cost — the service trains the
    scenario's pipeline on demand, and a non-``tiny`` preset makes that
    warmup heavy.
    """
    preset = spec.preset or "tiny"
    if preset == "tiny":
        return "servable (tiny preset: fast warmup on first request)"
    return f"servable ({preset} preset: heavy warmup, trains at first request)"


def scenario_listing(registry) -> "list[dict]":
    """The ``GET /scenarios`` payload: name, description, servability."""
    listing = []
    for name in registry.names():
        spec = registry.resolve(name)
        listing.append(
            {
                "name": name,
                "description": spec.description,
                "preset": spec.preset or "tiny",
                "servable": servable_note(spec),
            }
        )
    return listing


class ServeServer:
    """The HTTP daemon: parses requests, maps them onto the service."""

    def __init__(self, service: GenerationService, host: str = "127.0.0.1", port: int = 8181) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> None:
        """Start the service worker and begin accepting connections.

        With ``port=0`` the OS picks a free port; :attr:`port` is updated to
        the bound value (how the tests run an ephemeral server).
        """
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, then stop the service cleanly (mid-stream safe)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as error:
                await self._respond(writer, 400, {"error": f"malformed request: {error}"})
                return
            await self._route(method, path, body, writer, reader)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line {request_line!r}")
        method, path, _version = parts
        headers: "dict[str, str]" = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length < 0 or length > _MAX_BODY:
            raise ValueError(f"content-length {length} out of bounds")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _route(
        self, method: str, path: str, body: bytes, writer, reader=None
    ) -> None:
        if method == "GET" and path == "/healthz":
            await self._respond(
                writer,
                200,
                {
                    "status": self.service.state,
                    "live": True,
                    "ready": self.service.ready,
                    "pending": self.service.pending,
                    "worker_restarts": self.service.metrics.worker_restarts,
                },
            )
        elif method == "GET" and path == "/healthz/live":
            # Liveness is the process answering at all — degraded included:
            # restarting a daemon whose *backing store* fails fixes nothing.
            await self._respond(writer, 200, {"live": True})
        elif method == "GET" and path == "/healthz/ready":
            ready = self.service.ready
            await self._respond(
                writer,
                200 if ready else 503,
                {"ready": ready, "status": self.service.state},
            )
        elif method == "GET" and path == "/metrics":
            await self._respond(writer, 200, self.service.metrics.snapshot())
        elif method == "GET" and path == "/scenarios":
            await self._respond(
                writer, 200, {"scenarios": scenario_listing(self.service.registry)}
            )
        elif method == "POST" and path == "/generate":
            await self._generate(body, writer, reader)
        else:
            await self._respond(writer, 404, {"error": f"no route {method} {path}"})

    @staticmethod
    def _retry_after_headers(error) -> "dict[str, str]":
        seconds = max(1, int(-(-float(getattr(error, "retry_after", 1.0)) // 1)))
        return {"Retry-After": str(seconds)}

    async def _generate(self, body: bytes, writer, reader=None) -> None:
        try:
            request = GenerateRequest.from_dict(json.loads(body.decode("utf-8")))
            ticket = self.service.submit(request)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            await self._respond(writer, 400, {"error": f"invalid JSON body: {error}"})
            return
        except (ProtocolError, ScenarioError) as error:
            await self._respond(writer, 400, {"error": str(error)})
            return
        except ServiceBusyError as error:
            await self._respond(
                writer, 429, {"error": str(error)},
                headers=self._retry_after_headers(error),
            )
            return
        except ServiceDegradedError as error:
            await self._respond(
                writer, 503, {"error": str(error)},
                headers=self._retry_after_headers(error),
            )
            return
        except ServiceClosedError as error:
            await self._respond(writer, 503, {"error": str(error)})
            return

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        # Race each event against connection EOF: a client that hangs up
        # mid-stream gets its request cancelled (slot released, pending
        # work dropped) instead of generating into a dead socket.
        eof = (
            asyncio.ensure_future(reader.read()) if reader is not None else None
        )
        try:
            while True:
                getter = asyncio.ensure_future(ticket._events.get())
                waiting = {getter} if eof is None else {getter, eof}
                done, _ = await asyncio.wait(
                    waiting, return_when=asyncio.FIRST_COMPLETED
                )
                if getter not in done:
                    getter.cancel()
                    self.service.cancel(ticket, reason="client disconnected")
                    return
                event = getter.result()
                if isinstance(event, RequestSummary):
                    ticket.summary = event
                    break
                await self._write_chunk(writer, event.as_dict())
            await self._write_chunk(writer, ticket.summary.as_dict())
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self.service.cancel(ticket, reason="client disconnected")
            raise
        finally:
            if eof is not None:
                eof.cancel()
                if eof.done() and not eof.cancelled():
                    eof.exception()  # consume a ConnectionResetError, if any

    @staticmethod
    async def _write_chunk(writer, document: dict) -> None:
        data = (json.dumps(document) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _respond(
        writer, status: int, document: dict, headers: "dict[str, str] | None" = None
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests", 503: "Service Unavailable"}.get(status, "Error")
        data = json.dumps(document).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + data
        )
        await writer.drain()


# ---------------------------------------------------------------------- #
# entry point
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running generation daemon with cross-request batching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8181, help="0 picks a free port")
    parser.add_argument(
        "--scenario-file",
        type=Path,
        action="append",
        default=[],
        help="extra scenario TOML/JSON file(s) layered over the builtins",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="backpressure bound: in-flight requests before submits get 429",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest coalesced sampling/legalization batch (memory knob)",
    )
    parser.add_argument(
        "--library",
        type=Path,
        default=None,
        help=(
            "pattern-library directory backing the serve cache: generated "
            "chunks are persisted per stream writer and restored on restart"
        ),
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help=(
            "run generation in supervised child worker processes: crashes "
            "and hangs are detected, the worker restarts, and the in-flight "
            "window is resubmitted deterministically"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override per call)",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=2,
        help="failed warmup/advance retries before a request group fails",
    )
    parser.add_argument(
        "--advance-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "supervised only: wall-clock budget per generation batch; a "
            "worker exceeding it is treated as hung and restarted"
        ),
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="supervised only: worker restarts tolerated per batch",
    )
    return parser


def service_from_args(args, registry) -> GenerationService:
    """Construct the :class:`GenerationService` a parsed CLI asks for."""
    worker_config = None
    if args.supervised:
        worker_config = WorkerConfig(
            advance_timeout=args.advance_timeout,
            max_restarts=args.max_restarts,
        )
    return GenerationService(
        registry=registry,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        library_root=args.library,
        supervised=args.supervised,
        worker_config=worker_config,
        deadline_seconds=args.deadline,
        retry_budget=args.retry_budget,
    )


async def _serve_until_interrupted(server: ServeServer) -> None:
    await server.start()
    print(f"repro serve listening on http://{server.host}:{server.port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    await stop.wait()
    print("repro serve: shutting down", flush=True)
    await server.stop()


def main(argv: "list[str] | None" = None) -> int:
    """Console entry point (``repro-serve`` / ``python -m repro serve``)."""
    args = build_parser().parse_args(argv)
    registry = builtin_registry()
    try:
        for path in args.scenario_file:
            load_scenarios(path, registry=registry)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    service = service_from_args(args, registry)
    server = ServeServer(service, host=args.host, port=args.port)
    try:
        asyncio.run(_serve_until_interrupted(server))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

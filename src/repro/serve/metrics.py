"""Operational metrics of the generation service (the ``/metrics`` payload).

One :class:`ServeMetrics` instance per :class:`~repro.serve.GenerationService`
accumulates the four signals the ISSUE's serving contract names:

* **request latency** — submit-to-summary wall clock, reported as p50/p95
  over a bounded window of recent requests;
* **batch occupancy** — how many requests each shared generation batch
  served (the whole point of cross-request coalescing: occupancy > 1 means
  the sampler amortised its fixed costs across clients);
* **cache hit rate** — fraction of served samples answered from the pattern
  cache instead of being re-generated;
* **queue depth** — requests admitted but not yet finished (the value the
  backpressure bound caps).

PR 8 adds the **legalization** signals: aggregated
:class:`~repro.legalization.LegalizationStats` counters per generated chunk
(fast-path fraction, batched sweep sizes, SLSQP tail volume) plus the
process-local ``compilation_cache_info()`` hits/misses, so the solver's
production ceiling is visible from ``/metrics`` instead of only from
offline benchmark reports.

All mutators take an internal lock: the service's worker updates from the
event loop while the executor thread serving a cached short-circuit updates
concurrently.  :meth:`snapshot` returns plain floats/ints, ready for JSON.
"""

from __future__ import annotations

import threading
from collections import deque

from ..legalization import compilation_cache_info

__all__ = ["ServeMetrics"]


def _percentile(values: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile (no interpolation, stable for tiny windows)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServeMetrics:
    """Thread-safe counters and windows behind the ``/metrics`` endpoint."""

    def __init__(self, window: int = 512) -> None:
        self._lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=window)
        self._batch_sizes: "deque[int]" = deque(maxlen=window)
        self._batch_requests: "deque[int]" = deque(maxlen=window)
        self.requests_admitted = 0
        self.requests_rejected = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_cancelled = 0
        self.deadline_exceeded = 0
        self.generation_failures = 0
        self.generation_retries = 0
        self.worker_restarts = 0
        self.breaker_trips = 0
        self.breaker_open = False
        self.samples_generated = 0
        self.samples_cached = 0
        self.queue_depth = 0
        self.library_restored_samples = 0
        self.library_persisted_chunks = 0
        self.library_persisted_patterns = 0
        self.legalize_attempted = 0
        self.legalize_solved = 0
        self.legalize_solutions = 0
        self.legalize_fast_path_solutions = 0
        self.legalize_batched_sweeps = 0
        self.legalize_batched_sweep_topologies = 0
        self.legalize_batched_tail_solves = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_admitted(self, queue_depth: int) -> None:
        """A request passed the backpressure gate (``queue_depth`` after it)."""
        with self._lock:
            self.requests_admitted += 1
            self.queue_depth = int(queue_depth)

    def record_rejected(self) -> None:
        """A request was refused because the pending bound was hit (HTTP 429)."""
        with self._lock:
            self.requests_rejected += 1

    def record_finished(self, latency_seconds: float, ok: bool, queue_depth: int) -> None:
        """A request reached its summary (successfully or not)."""
        with self._lock:
            if ok:
                self.requests_completed += 1
            else:
                self.requests_failed += 1
            self._latencies.append(float(latency_seconds))
            self.queue_depth = int(queue_depth)

    def record_batch(self, batch_size: int, num_requests: int) -> None:
        """One shared generation batch completed, serving ``num_requests``."""
        with self._lock:
            self._batch_sizes.append(int(batch_size))
            self._batch_requests.append(int(num_requests))
            self.samples_generated += int(batch_size)

    def record_cached(self, num_samples: int) -> None:
        """``num_samples`` of a request window were answered from the cache."""
        with self._lock:
            self.samples_cached += int(num_samples)

    def record_cancelled(self, deadline: bool = False) -> None:
        """A request was cancelled (client disconnect, or its deadline fired)."""
        with self._lock:
            self.requests_cancelled += 1
            if deadline:
                self.deadline_exceeded += 1

    def record_generation_failure(self) -> None:
        """One warmup/advance call raised (before any retry decision)."""
        with self._lock:
            self.generation_failures += 1

    def record_generation_retry(self) -> None:
        """A failed warmup/advance call is being retried (budget allowed it)."""
        with self._lock:
            self.generation_retries += 1

    def record_worker_restart(self) -> None:
        """The supervisor killed and respawned a generation worker."""
        with self._lock:
            self.worker_restarts += 1

    def record_breaker_state(self, open_: bool, tripped: bool = False) -> None:
        """The circuit breaker opened (``tripped``) or changed state."""
        with self._lock:
            self.breaker_open = bool(open_)
            if tripped:
                self.breaker_trips += 1

    def record_library_restored(self, num_samples: int) -> None:
        """A stream warmup recovered ``num_samples`` from the pattern library."""
        with self._lock:
            self.library_restored_samples += int(num_samples)

    def record_library_persisted(self, num_patterns: int) -> None:
        """One generated chunk was committed to the persistent library."""
        with self._lock:
            self.library_persisted_chunks += 1
            self.library_persisted_patterns += int(num_patterns)

    def record_legalization(self, stats) -> None:
        """Fold one chunk's :class:`~repro.legalization.LegalizationStats` in."""
        with self._lock:
            self.legalize_attempted += stats.attempted
            self.legalize_solved += stats.solved
            self.legalize_solutions += stats.solutions
            self.legalize_fast_path_solutions += stats.fast_path_solutions
            self.legalize_batched_sweeps += stats.batched_sweeps
            self.legalize_batched_sweep_topologies += stats.batched_sweep_topologies
            self.legalize_batched_tail_solves += stats.batched_tail_solves

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """All metrics as one JSON-ready dict (the ``/metrics`` body)."""
        with self._lock:
            latencies = list(self._latencies)
            batch_sizes = list(self._batch_sizes)
            batch_requests = list(self._batch_requests)
            served = self.samples_generated + self.samples_cached
            return {
                "requests_admitted": self.requests_admitted,
                "requests_rejected": self.requests_rejected,
                "requests_completed": self.requests_completed,
                "requests_failed": self.requests_failed,
                "requests_cancelled": self.requests_cancelled,
                "deadline_exceeded": self.deadline_exceeded,
                "generation_failures": self.generation_failures,
                "generation_retries": self.generation_retries,
                "worker_restarts": self.worker_restarts,
                "breaker_trips": self.breaker_trips,
                "breaker_open": self.breaker_open,
                "queue_depth": self.queue_depth,
                "request_latency_p50_seconds": _percentile(latencies, 0.50),
                "request_latency_p95_seconds": _percentile(latencies, 0.95),
                "batches": len(batch_sizes),
                "batch_occupancy_mean": (
                    sum(batch_requests) / len(batch_requests) if batch_requests else 0.0
                ),
                "batch_size_mean": (
                    sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
                ),
                "samples_generated": self.samples_generated,
                "samples_cached": self.samples_cached,
                "cache_hit_rate": (self.samples_cached / served) if served else 0.0,
                "library_restored_samples": self.library_restored_samples,
                "library_persisted_chunks": self.library_persisted_chunks,
                "library_persisted_patterns": self.library_persisted_patterns,
                "legalize_attempted": self.legalize_attempted,
                "legalize_solved": self.legalize_solved,
                "legalize_solutions": self.legalize_solutions,
                "legalize_fast_path_fraction": (
                    self.legalize_fast_path_solutions / self.legalize_solutions
                    if self.legalize_solutions
                    else 0.0
                ),
                "legalize_batched_sweeps": self.legalize_batched_sweeps,
                "legalize_batched_sweep_size_mean": (
                    self.legalize_batched_sweep_topologies
                    / self.legalize_batched_sweeps
                    if self.legalize_batched_sweeps
                    else 0.0
                ),
                "legalize_batched_tail_solves": self.legalize_batched_tail_solves,
                "compile_cache": compilation_cache_info(),
            }

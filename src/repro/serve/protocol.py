"""Request/response schema of the ``repro serve`` generation service.

Everything that crosses the service boundary — in-process through
:class:`~repro.serve.GenerationService`, or over HTTP through
:class:`~repro.serve.ServeClient` — is one of three JSON-serialisable
shapes:

* :class:`GenerateRequest` — what a client asks for: a scenario name, the
  optional section overrides :meth:`~repro.scenarios.ScenarioSpec.with_overrides`
  accepts, and a sample window (``count`` topologies starting at ``start``).
* :class:`ChunkPayload` — one streamed slice of results: the legal patterns
  whose source samples fall inside the request's window, delivered as each
  shared generation chunk completes (or straight from the cache).
* :class:`RequestSummary` — the terminal event of every request: totals,
  cache accounting, and the error message when the request did not finish.

Patterns travel in the :meth:`~repro.squish.SquishPattern.as_arrays` layout
with arrays flattened to nested lists (:func:`pattern_to_json` /
:func:`pattern_from_json`), so a decoded pattern is bit-identical to the
generated one — the wire format is part of the determinism contract.

Malformed payloads raise :class:`ProtocolError`, which the HTTP layer maps
to a 400 response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..squish import SquishPattern

__all__ = [
    "ChunkPayload",
    "GenerateRequest",
    "ProtocolError",
    "RequestSummary",
    "pattern_from_json",
    "pattern_to_json",
]


class ProtocolError(ValueError):
    """A request or response payload does not match the schema."""


def pattern_to_json(pattern: SquishPattern) -> dict:
    """Encode one pattern as a JSON-safe dict (lossless).

    The arrays of :meth:`~repro.squish.SquishPattern.as_arrays` become
    nested lists; dtypes are implied by the squish codec (uint8 topology,
    int64 deltas and origin) and restored exactly on decode.
    """
    arrays = pattern.as_arrays()
    return {
        "topology": np.asarray(arrays["topology"], dtype=np.uint8).tolist(),
        "delta_x": np.asarray(arrays["delta_x"], dtype=np.int64).tolist(),
        "delta_y": np.asarray(arrays["delta_y"], dtype=np.int64).tolist(),
        "origin": np.asarray(arrays["origin"], dtype=np.int64).tolist(),
    }


def pattern_from_json(data: Mapping[str, Any], source: str = "payload") -> SquishPattern:
    """Decode :func:`pattern_to_json` output back into a pattern.

    Raises
    ------
    ProtocolError
        When the payload is not a mapping or fails the squish-codec
        validation (missing arrays, shape mismatches).
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{source}: pattern must be a mapping")
    try:
        return SquishPattern.from_arrays(
            {
                "topology": np.asarray(data.get("topology"), dtype=np.uint8),
                "delta_x": np.asarray(data.get("delta_x"), dtype=np.int64),
                "delta_y": np.asarray(data.get("delta_y"), dtype=np.int64),
                "origin": np.asarray(data.get("origin", (0, 0)), dtype=np.int64),
            },
            source=source,
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"{source}: {error}") from error


def _int_field(data: Mapping[str, Any], key: str, minimum: int) -> "int | None":
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{key} must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"{key} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class GenerateRequest:
    """One client request against the generation service.

    Parameters
    ----------
    scenario:
        Name of a registered scenario (builtin or loaded from a scenario
        file at service start).
    count:
        Number of topology samples requested.  ``None`` uses the scenario's
        own ``run.num_generated``.
    start:
        Absolute sample index the window begins at.  ``None`` (the default)
        asks the service for the next unclaimed window of the scenario's
        sample stream — the tail allocation that makes concurrent clients
        compose into one deterministic run.  An explicit ``start`` re-reads
        an already-generated window (a repeat request), served from the
        pattern cache when possible.
    overrides:
        Scenario section overrides, validated exactly like a scenario file
        (:meth:`~repro.scenarios.ScenarioSpec.with_overrides`).  Overrides
        are part of the stream identity: two requests with different
        overrides never share a batch.
    deadline:
        Optional per-request deadline in seconds.  A request that has not
        reached its summary within the budget is cancelled cleanly: it
        receives a terminal summary with ``error_code="deadline_exceeded"``,
        chunks already delivered stay valid, and its batch slot is released.
        ``None`` falls back to the service-wide default (which may also be
        ``None``: no deadline).
    """

    scenario: str
    count: "int | None" = None
    start: "int | None" = None
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    deadline: "float | None" = None

    @classmethod
    def from_dict(cls, data: Any) -> "GenerateRequest":
        """Validate a decoded JSON body into a request.

        Raises
        ------
        ProtocolError
            On a non-mapping body, unknown keys, a missing/invalid
            ``scenario``, or malformed ``count`` / ``start`` / ``overrides``.
        """
        if not isinstance(data, Mapping):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(data) - {"scenario", "count", "start", "overrides", "deadline"}
        if unknown:
            raise ProtocolError(f"unknown request key(s): {sorted(unknown)}")
        scenario = data.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ProtocolError("scenario must be a non-empty string")
        overrides = data.get("overrides", {})
        if not isinstance(overrides, Mapping):
            raise ProtocolError("overrides must be a mapping of scenario sections")
        deadline = data.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
                raise ProtocolError(f"deadline must be a number, got {deadline!r}")
            if deadline <= 0:
                raise ProtocolError(f"deadline must be > 0, got {deadline}")
            deadline = float(deadline)
        return cls(
            scenario=scenario,
            count=_int_field(data, "count", 1),
            start=_int_field(data, "start", 0),
            overrides=overrides,
            deadline=deadline,
        )

    def as_dict(self) -> dict:
        """The inverse of :meth:`from_dict` (the HTTP request body)."""
        payload: dict[str, Any] = {"scenario": self.scenario}
        if self.count is not None:
            payload["count"] = int(self.count)
        if self.start is not None:
            payload["start"] = int(self.start)
        if self.overrides:
            payload["overrides"] = {
                section: dict(values) for section, values in self.overrides.items()
            }
        if self.deadline is not None:
            payload["deadline"] = float(self.deadline)
        return payload


@dataclass
class ChunkPayload:
    """One streamed slice of a request's results.

    Sample indices are *absolute* positions in the scenario's sample stream
    (the same indices ``SeedSequence(seed, index)`` owns), so a client can
    splice payloads from any mix of cached and live chunks into one
    deterministic sequence.
    """

    #: Absolute sample window ``[start, end)`` this payload covers.
    start: int
    end: int
    #: Legal patterns whose source sample lies in the window, in stream order.
    patterns: list = field(default_factory=list)
    #: Absolute source sample index per pattern.
    sources: list = field(default_factory=list)
    #: DRC verdict per pattern.
    clean: list = field(default_factory=list)
    #: True when the slice was served from the pattern cache.
    cached: bool = False

    def as_dict(self) -> dict:
        return {
            "kind": "chunk",
            "start": int(self.start),
            "end": int(self.end),
            "patterns": [pattern_to_json(p) for p in self.patterns],
            "sources": [int(s) for s in self.sources],
            "clean": [bool(c) for c in self.clean],
            "cached": bool(self.cached),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChunkPayload":
        if not isinstance(data, Mapping) or data.get("kind") != "chunk":
            raise ProtocolError("chunk payload must be a mapping with kind='chunk'")
        try:
            return cls(
                start=int(data["start"]),
                end=int(data["end"]),
                patterns=[
                    pattern_from_json(p, source="chunk pattern")
                    for p in data.get("patterns", [])
                ],
                sources=[int(s) for s in data.get("sources", [])],
                clean=[bool(c) for c in data.get("clean", [])],
                cached=bool(data.get("cached", False)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed chunk payload: {error}") from error


@dataclass
class RequestSummary:
    """Terminal event of a request: what was served, and how.

    ``ok=False`` means the request ended early — ``error`` says why (a
    human-readable message) and ``error_code`` says why *mechanically*
    (``"service_stopped"``, ``"deadline_exceeded"``, ``"cancelled"``,
    ``"warmup_failed"``, ``"generation_failed"``, ``"degraded"``) so
    clients can branch on failure class without parsing prose; every chunk
    delivered before the failure is still valid.
    """

    ok: bool
    scenario: str
    start: int
    end: int
    num_patterns: int = 0
    num_clean: int = 0
    #: Samples of the window served from the pattern cache.
    cached_samples: int = 0
    #: Live generation chunks that contributed to the window.
    live_chunks: int = 0
    elapsed_seconds: float = 0.0
    error: "str | None" = None
    #: Machine-readable failure class (``None`` when ``ok``).
    error_code: "str | None" = None

    def as_dict(self) -> dict:
        payload = {
            "kind": "summary",
            "ok": bool(self.ok),
            "scenario": self.scenario,
            "start": int(self.start),
            "end": int(self.end),
            "num_patterns": int(self.num_patterns),
            "num_clean": int(self.num_clean),
            "cached_samples": int(self.cached_samples),
            "live_chunks": int(self.live_chunks),
            "elapsed_seconds": float(self.elapsed_seconds),
        }
        if self.error is not None:
            payload["error"] = str(self.error)
        if self.error_code is not None:
            payload["error_code"] = str(self.error_code)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequestSummary":
        if not isinstance(data, Mapping) or data.get("kind") != "summary":
            raise ProtocolError("summary payload must be a mapping with kind='summary'")
        try:
            return cls(
                ok=bool(data["ok"]),
                scenario=str(data["scenario"]),
                start=int(data["start"]),
                end=int(data["end"]),
                num_patterns=int(data.get("num_patterns", 0)),
                num_clean=int(data.get("num_clean", 0)),
                cached_samples=int(data.get("cached_samples", 0)),
                live_chunks=int(data.get("live_chunks", 0)),
                elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
                error=data.get("error"),
                error_code=data.get("error_code"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed summary payload: {error}") from error

"""Supervised multi-process generation workers for ``repro serve``.

The single-process service runs ``GenerationStream.advance`` on an executor
thread of the serving process: a segfault, an OOM kill, or a wedged solver
takes the whole daemon down with it.  This module moves advancement into a
**child process** under a supervisor that treats worker death as a
first-class event:

* :func:`_worker_main` — the child: owns the trained pipeline and the
  generation stream, answers ``advance`` commands over a duplex pipe, and
  emits heartbeats from a side thread so the parent can tell *dead* from
  *slow* from *busy*.
* :class:`SupervisedWorker` — the parent-side handle: spawns/respawns the
  child, watches heartbeats and per-call wall-clock budgets, and on a crash
  or hang kills the child, restarts it, **resyncs it to the committed
  stream frontier**, and resubmits the in-flight window.
* :class:`SupervisedStreamBatcher` — a drop-in
  :class:`~repro.serve.StreamBatcher` whose engine calls go through the
  worker.

**Why resubmission is safe (the determinism argument).**  A generation
stream's entire future is determined by three counters — ``next_start``,
``next_chunk`` and ``num_kept`` — because every sample owns
``SeedSequence(sample_seed, index)`` and every kept topology owns
``SeedSequence(legal_seed, kept_index)``; there is no other carried state.
The supervisor therefore tracks the **committed frontier**: the counters as
of the last chunk that was persisted and folded into the pattern cache.  A
restarted worker is synced to exactly that frontier, so recomputing the
window that was in flight when the old worker died reproduces it bit for
bit — the client-visible stream is indistinguishable from a run with no
failure at all (gated by ``tests/test_serve_chaos.py`` at every registered
fault point).

Two idempotence latches close the remaining races:

* the child caches its **last computed chunk** and resends it when the
  parent retries the same ``(start, size)`` — so a reply lost to a pipe
  error is not recomputed, and a worker that advanced past the parent's
  view is never double-advanced;
* the parent sends its **expected start** with every advance — a child
  whose counters disagree (e.g. a stale pre-restart process) answers
  ``desync`` and is resynced instead of generating the wrong window.

Start method: **fork** where available (Linux — inherits the installed
fault hook and closure-based pipeline factories), ``spawn`` otherwise
(factories must then be picklable; fault plans travel via the
``REPRO_FAULTS`` environment variable, see :mod:`repro.faults`).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field

from ..faults import InjectedCrash, declare_fault_points, fault_point
from .batcher import StreamBatcher, _default_pipeline_factory

__all__ = [
    "SupervisedStreamBatcher",
    "SupervisedWorker",
    "WorkerChunk",
    "WorkerConfig",
    "WorkerCrash",
    "WorkerError",
    "WorkerFailure",
]

declare_fault_points("worker:warmup", "worker:advance", "worker:send")


class WorkerCrash(RuntimeError):
    """The child died or went silent; the supervisor may restart it."""


class WorkerError(RuntimeError):
    """The child reported a deterministic failure; the child is still alive."""


class WorkerFailure(RuntimeError):
    """The restart budget is exhausted; the stream cannot make progress."""


@dataclass
class WorkerConfig:
    """Supervision knobs for one worker process.

    Parameters
    ----------
    heartbeat_interval:
        Cadence of the child's liveness beacon.
    heartbeat_timeout:
        Silence (no heartbeat, no reply) after which the child is declared
        dead.  Generous by default: warmup trains a model, and the beacon
        thread beats straight through it.
    advance_timeout:
        Optional wall-clock budget for one ``advance`` call.  Heartbeats
        prove the process is *alive*, not that it is *making progress*; this
        cap is what catches a wedged solver or an injected delay.  ``None``
        (default) trusts heartbeats alone.
    warmup_timeout:
        Same, for the warmup call (``None``: heartbeats only — training
        legitimately takes minutes at paper scale).
    max_restarts:
        Worker restarts tolerated **per advance call** before the failure is
        surfaced to the admission layer (which has its own retry budget).
    restart_backoff:
        Base of the exponential backoff slept before each respawn.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` when the
        platform offers it, else ``spawn``.
    """

    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 30.0
    advance_timeout: "float | None" = None
    warmup_timeout: "float | None" = None
    max_restarts: int = 2
    restart_backoff: float = 0.05
    start_method: "str | None" = None

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class WorkerChunk:
    """The picklable projection of a :class:`~repro.pipeline.StreamChunk`.

    Carries everything the serving side consumes — patterns with source/DRC
    attribution, the accounting the metrics and the persistent library
    record need — and drops the bulky intermediates (raw topology matrices,
    per-topology solver results) that would otherwise cross the pipe with
    every batch.
    """

    chunk: int
    start: int
    size: int
    num_kept: int
    num_rejected: int
    unsolved: int
    patterns: list = field(repr=False)
    pattern_sources: list
    clean_mask: object = field(repr=False)
    num_clean: int
    topology_histogram: object = field(repr=False)
    pattern_histogram: object = field(repr=False)
    sampling_report: object = field(repr=False)
    legalization_report: object = field(repr=False)

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def chunk_patterns(self) -> list:
        # The serve graph never attaches a deduplicating library, so the
        # kept patterns are exactly the produced patterns.
        return self.patterns

    @classmethod
    def from_stream_chunk(cls, chunk) -> "WorkerChunk":
        return cls(
            chunk=chunk.chunk,
            start=chunk.start,
            size=chunk.size,
            num_kept=chunk.num_kept,
            num_rejected=chunk.num_rejected,
            unsolved=chunk.unsolved,
            patterns=chunk.patterns,
            pattern_sources=chunk.pattern_sources,
            clean_mask=chunk.clean_mask,
            num_clean=chunk.num_clean,
            topology_histogram=chunk.topology_histogram,
            pattern_histogram=chunk.pattern_histogram,
            sampling_report=chunk.sampling_report,
            legalization_report=chunk.legalization_report,
        )


# --------------------------------------------------------------------------- #
# the child
# --------------------------------------------------------------------------- #
def _worker_main(conn, plan, pipeline_factory, heartbeat_interval: float) -> None:
    """Child process body: heartbeat thread + command loop over ``conn``.

    Commands are ``(verb, payload)`` tuples; every reply is too.  A
    deterministic exception is reported as ``("error", message)`` and the
    loop continues; an :class:`~repro.faults.InjectedCrash` hard-exits the
    process (that is the failure it simulates).
    """
    import os

    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            conn.send(message)

    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.wait(heartbeat_interval):
            try:
                send(("hb", time.monotonic()))
            except OSError:
                return

    threading.Thread(target=beat, name="worker-heartbeat", daemon=True).start()

    stream = None
    #: Idempotent-resend latch: ``(start, size, WorkerChunk)`` of the last
    #: computed chunk, until the next command proves the parent moved on.
    last = None
    while True:
        try:
            verb, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if verb == "warmup":
                fault_point("worker:warmup")
                if stream is None:
                    factory = pipeline_factory or _default_pipeline_factory
                    pipeline, gen = factory(plan)
                    graph = pipeline.generation_graph(
                        num_solutions=plan.num_solutions,
                        retain_topologies=False,
                    )
                    stream = graph.open_stream(gen)
                fingerprint = stream.graph.fingerprint(
                    -1, stream.sample_seed, stream.legal_seed
                )
                send(("ready", fingerprint))
            elif verb == "sync":
                next_start, next_chunk, num_kept = payload
                stream.next_start = int(next_start)
                stream.next_chunk = int(next_chunk)
                stream.num_kept = int(num_kept)
                last = None
                send(("synced", payload))
            elif verb == "advance":
                size, expected_start = payload
                if last is not None and (last[0], last[1]) == (expected_start, size):
                    send(("chunk", last[2]))
                elif stream.next_start == expected_start:
                    fault_point("worker:advance")
                    chunk = WorkerChunk.from_stream_chunk(stream.advance(size))
                    last = (expected_start, size, chunk)
                    fault_point("worker:send")
                    send(("chunk", chunk))
                else:
                    send(("desync", (stream.next_start, expected_start)))
            elif verb == "ping":
                send(("pong", None))
            elif verb == "stop":
                send(("stopped", None))
                break
            else:
                send(("error", f"unknown command {verb!r}"))
        except InjectedCrash:
            # Simulated process death: no reply, no unwinding past here.
            os._exit(70)
        except Exception as error:  # noqa: BLE001 - reported, worker survives
            send(("error", f"{type(error).__name__}: {error}"))
    stop_beat.set()
    conn.close()


# --------------------------------------------------------------------------- #
# the parent-side handle
# --------------------------------------------------------------------------- #
class SupervisedWorker:
    """Owns one child worker process: spawn, watch, restart, resubmit.

    All methods run on the service's executor thread (never the event
    loop).  The restart loop lives in :meth:`advance`: a crash or hang is
    retried against a fresh child synced to ``committed`` — the stream
    frontier as of the last chunk the batcher durably exposed — up to
    ``config.max_restarts`` times per call.
    """

    def __init__(self, plan, pipeline_factory=None, config: "WorkerConfig | None" = None,
                 metrics=None) -> None:
        self.plan = plan
        self.pipeline_factory = pipeline_factory
        self.config = config or WorkerConfig()
        self.metrics = metrics
        self.fingerprint: "dict | None" = None
        #: Lifetime restart count (exported on ``/metrics`` via the service).
        self.restarts = 0
        #: Windows recomputed after a restart.
        self.resubmissions = 0
        self._ctx = multiprocessing.get_context(self.config.resolved_start_method())
        self._process = None
        self._conn = None

    # -- lifecycle -------------------------------------------------------- #
    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def start(self, committed: "tuple[int, int, int]" = (0, 0, 0)) -> dict:
        """Spawn the child, run warmup, sync to ``committed``.

        Returns the stream fingerprint the child resolved — the parent has
        no stream of its own, so this is what the persistent library binds
        against.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self._process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.plan, self.pipeline_factory,
                  self.config.heartbeat_interval),
            name="repro-serve-worker",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        kind, payload = self._request(("warmup", None), self.config.warmup_timeout)
        if kind != "ready":
            raise WorkerCrash(f"warmup answered {kind!r}: {payload}")
        self.fingerprint = payload
        self.sync(committed)
        return payload

    def stop(self) -> None:
        """Terminate the child (graceful stop, then SIGTERM/SIGKILL)."""
        process, conn = self._process, self._conn
        self._process = self._conn = None
        if conn is not None:
            try:
                conn.send(("stop", None))
            except OSError:
                pass
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join()
        if conn is not None:
            conn.close()

    # -- protocol --------------------------------------------------------- #
    def _request(self, message, timeout: "float | None"):
        """Send one command and wait for its reply through the heartbeats.

        ``timeout`` caps the *whole call* (hang detection); independently,
        heartbeat silence longer than ``heartbeat_timeout`` declares the
        child dead even with no call budget set.
        """
        conn = self._conn
        if conn is None:
            raise WorkerCrash("worker is not running")
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            conn.send(message)
            last_beat = time.monotonic()
            while True:
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    raise WorkerCrash(
                        f"worker exceeded its {timeout:.1f}s call budget"
                    )
                wait = self.config.heartbeat_timeout - (now - last_beat)
                if wait <= 0:
                    raise WorkerCrash(
                        f"no heartbeat for {self.config.heartbeat_timeout:.1f}s"
                    )
                if deadline is not None:
                    wait = min(wait, deadline - now)
                if not conn.poll(wait):
                    continue
                reply = conn.recv()
                if isinstance(reply, tuple) and reply and reply[0] == "hb":
                    last_beat = time.monotonic()
                    continue
                return reply
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise WorkerCrash(f"worker connection lost: {error}") from error

    def sync(self, committed: "tuple[int, int, int]") -> None:
        """Pin the child's stream counters to the committed frontier."""
        kind, payload = self._request(("sync", tuple(committed)),
                                      self.config.heartbeat_timeout)
        if kind != "synced":
            raise WorkerCrash(f"sync answered {kind!r}: {payload}")

    # -- the supervised call ---------------------------------------------- #
    def advance(self, size: int, committed: "tuple[int, int, int]") -> WorkerChunk:
        """One supervised advance of ``size`` samples at the committed frontier.

        Crashes and hangs consume the per-call restart budget; a restarted
        child is resynced to ``committed`` and the window is recomputed —
        bit-identical, per the stream's counter-determinism.  A
        deterministic child-side exception raises :class:`WorkerError`
        without a restart (the child is fine; the admission layer owns that
        retry policy).
        """
        expected_start = int(committed[0])
        restarts_used = 0
        resyncs = 0
        while True:
            try:
                if not self.alive:
                    raise WorkerCrash("worker process is not alive")
                kind, payload = self._request(
                    ("advance", (size, expected_start)), self.config.advance_timeout
                )
                if kind == "chunk":
                    return payload
                if kind == "error":
                    raise WorkerError(payload)
                if kind == "desync":
                    # Alive but at the wrong frontier (lost sync reply, stale
                    # process): repin and retry.  Bounded: a child that keeps
                    # desyncing after a successful sync is broken.
                    resyncs += 1
                    if resyncs > self.config.max_restarts + 1:
                        raise WorkerCrash(f"worker desynced {resyncs} times")
                    self.sync(committed)
                    continue
                raise WorkerCrash(f"advance answered {kind!r}: {payload}")
            except WorkerCrash as crash:
                restarts_used += 1
                if restarts_used > self.config.max_restarts:
                    raise WorkerFailure(
                        f"worker failed {restarts_used} times advancing "
                        f"[{expected_start}, {expected_start + size}); "
                        f"last cause: {crash}"
                    ) from crash
                self._restart(committed, restarts_used)

    def _restart(self, committed: "tuple[int, int, int]", attempt: int) -> None:
        self.stop()
        self.restarts += 1
        self.resubmissions += 1
        if self.metrics is not None:
            self.metrics.record_worker_restart()
        time.sleep(self.config.restart_backoff * (2 ** (attempt - 1)))
        self.start(committed)


# --------------------------------------------------------------------------- #
# the batcher over the worker
# --------------------------------------------------------------------------- #
class SupervisedStreamBatcher(StreamBatcher):
    """A :class:`~repro.serve.StreamBatcher` whose engines run out-of-process.

    Same ledger, same cache, same persistent-library protocol — but
    :meth:`ensure_ready` spawns a supervised child instead of opening a
    local stream, and each advance round-trips the worker.  The committed
    frontier (counters as of the last cache-committed chunk) is the sync
    point every worker (re)start pins the child to; because the base class
    latches computed-but-uncommitted chunks, a parent-side failure between
    compute and commit replays the same chunk rather than advancing the
    frontier twice.
    """

    def __init__(self, plan, pipeline_factory=None, max_batch: int = 64,
                 library_root=None, metrics=None,
                 worker_config: "WorkerConfig | None" = None) -> None:
        super().__init__(plan, pipeline_factory, max_batch=max_batch,
                         library_root=library_root, metrics=metrics)
        self.worker_config = worker_config or WorkerConfig()
        self._worker: "SupervisedWorker | None" = None
        #: Stream counters ``(next_start, next_chunk, num_kept)`` as of the
        #: last chunk committed to the cache (and library, when backed).
        self._committed = (0, 0, 0)

    @property
    def ready(self) -> bool:
        return self._worker is not None

    @property
    def worker(self) -> "SupervisedWorker | None":
        return self._worker

    def ensure_ready(self) -> None:
        """Spawn + warm the supervised worker.  Idempotent."""
        if self._worker is not None:
            return
        fault_point("serve:warmup")
        worker = SupervisedWorker(
            self.plan,
            pipeline_factory=self._pipeline_factory,
            config=self.worker_config,
            metrics=self.metrics,
        )
        worker.start(self._committed)
        self._worker = worker
        if self.library_root is not None:
            self._attach_library()
            # Restored chunks moved the committed frontier; the child is
            # still at the pre-restore counters.
            worker.sync(self._committed)

    def _library_fingerprint(self) -> dict:
        fingerprint = dict(self._worker.fingerprint)
        fingerprint["stream_key"] = self.key
        return fingerprint

    def _skip_record(self, record) -> None:
        start, chunk, kept = self._committed
        self._committed = (
            start + record.num_sampled,
            chunk + 1,
            kept + record.num_kept,
        )

    def _compute_chunk(self, size: int) -> WorkerChunk:
        if self._worker is None:
            raise RuntimeError("SupervisedStreamBatcher.advance before ensure_ready")
        return self._worker.advance(size, self._committed)

    def _commit_chunk(self, chunk) -> None:
        super()._commit_chunk(chunk)
        start, index, kept = self._committed
        self._committed = (start + chunk.size, index + 1, kept + chunk.num_kept)

    def close(self) -> None:
        """Stop the worker process (idempotent)."""
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.stop()

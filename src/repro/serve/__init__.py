"""Long-running generation service with cross-request batching.

``repro serve`` turns the one-shot DiffPattern CLI into a daemon: concurrent
clients ask for sample windows of a named scenario, the service coalesces
every waiting window into shared sampling/legalization batches over one
:class:`~repro.pipeline.GenerationStream` per scenario identity, streams
per-chunk results back as they complete, answers repeat windows from a
pattern-hash cache, and rejects load beyond a bounded pending count instead
of queueing it.

Layering (one module per concern):

* :mod:`repro.serve.protocol` — the request/response schema and the
  lossless JSON pattern codec;
* :mod:`repro.serve.batcher` — per-stream warmup, window ledger,
  coalesced generation and the pattern cache;
* :mod:`repro.serve.supervisor` — the supervised multi-process worker
  pool: generation runs in child processes, crashes and hangs restart the
  worker, and the in-flight window is resubmitted deterministically;
* :mod:`repro.serve.service` — admission, backpressure, deadlines,
  retries and the circuit breaker, the worker that coalesces and routes,
  clean shutdown;
* :mod:`repro.serve.metrics` — the ``/metrics`` counters;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the stdlib
  HTTP/1.1 transport and its retrying client.

The service inherits the pipeline's determinism contract: any window
``[a, b)`` it serves is bit-identical to samples ``[a, b)`` of a one-shot
``repro generate`` run of the same scenario/seed — including through
injected worker crashes (see ``docs/serving.md`` and :mod:`repro.faults`).
"""

from .batcher import CachedChunk, StreamBatcher, stream_key
from .client import ServeClient, ServeHTTPError
from .metrics import ServeMetrics
from .protocol import (
    ChunkPayload,
    GenerateRequest,
    ProtocolError,
    RequestSummary,
    pattern_from_json,
    pattern_to_json,
)
from .server import ServeServer, scenario_listing, servable_note, service_from_args
from .service import (
    GenerationService,
    RequestTicket,
    ServedWindow,
    ServiceBusyError,
    ServiceClosedError,
    ServiceDegradedError,
)
from .supervisor import (
    SupervisedStreamBatcher,
    SupervisedWorker,
    WorkerChunk,
    WorkerConfig,
    WorkerCrash,
    WorkerError,
    WorkerFailure,
)

__all__ = [
    "CachedChunk",
    "ChunkPayload",
    "GenerateRequest",
    "GenerationService",
    "ProtocolError",
    "RequestSummary",
    "RequestTicket",
    "ServeClient",
    "ServeHTTPError",
    "ServeMetrics",
    "ServeServer",
    "ServedWindow",
    "ServiceBusyError",
    "ServiceClosedError",
    "ServiceDegradedError",
    "StreamBatcher",
    "SupervisedStreamBatcher",
    "SupervisedWorker",
    "WorkerChunk",
    "WorkerConfig",
    "WorkerCrash",
    "WorkerError",
    "WorkerFailure",
    "pattern_from_json",
    "pattern_to_json",
    "scenario_listing",
    "servable_note",
    "service_from_args",
    "stream_key",
]

"""Cross-request batching state for one scenario stream.

The service groups requests by *stream identity* — scenario config +
training size + solutions + seed, digested by :func:`stream_key` — and
gives each group one :class:`StreamBatcher`.  The batcher owns:

* the **deterministic warmup** (data → train, consuming the run generator
  exactly like ``repro generate`` does, so the stream's two base seeds come
  out identical to the one-shot CLI run);
* the single :class:`~repro.pipeline.GenerationStream` all requests share —
  every ``advance`` is one coalesced sampling/legalization batch covering
  whichever request windows are waiting;
* the **window ledger**: a reservation frontier handing each tail request
  the next unclaimed ``[start, start + count)`` window, and the ``done``
  frontier of samples already generated;
* the **pattern cache**: per-chunk hash records (via
  :func:`repro.library.pattern_hash` — the same dedup identity the
  :class:`~repro.library.PatternLibrary` uses) plus one shared pattern
  store, so a repeat window is answered without touching the engines.

Thread model: the service's event loop calls :meth:`reserve` /
:meth:`cover` / :meth:`covered_through`; :meth:`ensure_ready` and
:meth:`advance` run on an executor thread.  The internal lock keeps the
ledger and cache coherent between the two.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from ..faults import declare_fault_points, fault_point
from ..library import ChunkRecord, LibraryError, PatternLibrary, pattern_hash
from ..pipeline import DiffPatternPipeline
from ..utils import as_rng

__all__ = ["CachedChunk", "StreamBatcher", "stream_key"]

declare_fault_points(
    "serve:warmup",
    "serve:advance",
    "serve:persist",
    "serve:cache-commit",
)


def stream_key(plan) -> str:
    """Digest of everything that shapes a scenario's sample stream.

    Two requests share a batcher (and therefore batches and cache) iff
    their lowered plans agree on the pipeline config, the training run and
    the per-run seeds/solutions.  Window-shaping knobs (``num_generated``,
    ``stream``, ``dedup``, ``retain_topologies``) are deliberately *not*
    part of the key: they change how much is asked for, not what sample
    ``i`` contains.
    """
    digest = hashlib.sha1()
    digest.update(repr(plan.config).encode())
    digest.update(str(plan.num_training_patterns).encode())
    digest.update(str(plan.num_solutions).encode())
    digest.update(str(plan.seed).encode())
    return digest.hexdigest()


@dataclass
class CachedChunk:
    """Cache record of one generated chunk (hashes, not patterns).

    Patterns themselves live once in the batcher's shared store keyed by
    :func:`repro.library.pattern_hash`; the chunk keeps the hash sequence so
    a window replay reconstructs the exact pattern order.
    """

    #: Absolute sample window ``[start, end)`` the chunk covered.
    start: int
    end: int
    #: Pattern hash per produced pattern, in stream order.
    hashes: list = field(default_factory=list)
    #: Absolute source sample index per pattern.
    sources: list = field(default_factory=list)
    #: DRC verdict per pattern.
    clean: list = field(default_factory=list)


def _default_pipeline_factory(plan):
    """Train a pipeline exactly like ``repro generate`` warms one up.

    One generator seeded from the plan drives data synthesis and training
    in sequence and is returned still positioned for generation — the same
    draws ``repro.cli._execute_plan`` makes, which is what makes served
    windows bit-identical to the one-shot CLI run.
    """
    pipeline = DiffPatternPipeline(plan.config)
    gen = as_rng(plan.seed)
    pipeline.prepare_data(plan.num_training_patterns, rng=gen)
    pipeline.train(rng=gen)
    return pipeline, gen


class StreamBatcher:
    """Shared generation stream + window ledger + pattern cache.

    Parameters
    ----------
    plan:
        The lowered :class:`~repro.scenarios.RunPlan` defining the stream.
    pipeline_factory:
        ``plan -> (trained pipeline, generator)`` hook.  The default trains
        from scratch on first use; tests and benchmarks inject a pre-trained
        pipeline with a generator restored to its post-training state so a
        suite pays for training once.
    max_batch:
        Upper bound on samples per coalesced :meth:`advance` call (a memory
        knob, like the graph's ``chunk_size`` — output is identical for any
        value).
    library_root:
        Optional directory of a (possibly shared) v2
        :class:`~repro.library.PatternLibrary`.  The batcher becomes writer
        ``serve-<stream key>`` of that library: every generated chunk is
        persisted with per-pattern source/DRC attribution, and on warmup the
        writer's committed chunks are restored into the pattern cache — the
        stream fast-forwards over them — so repeat windows survive a server
        restart, and concurrently running servers/CLI runs grow one library.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics` receiving the library
        restore/persist counters.
    """

    def __init__(
        self,
        plan,
        pipeline_factory=None,
        max_batch: int = 64,
        library_root=None,
        metrics=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.plan = plan
        self.key = stream_key(plan)
        self.max_batch = int(max_batch)
        self.library_root = library_root
        self.metrics = metrics
        self._pipeline_factory = pipeline_factory or _default_pipeline_factory
        self._lock = threading.Lock()
        self._stream = None
        self._library = None
        #: Samples recovered from the persistent library at warmup.
        self.restored_samples = 0
        #: Chunks committed to the persistent library by this batcher.
        self.persisted_chunks = 0
        #: Next unclaimed sample index (grows at reservation time).
        self.reserved = 0
        #: Samples generated so far (grows as chunks complete).
        self.done = 0
        self._chunks: "list[CachedChunk]" = []
        self._patterns: dict = {}
        # Crash-atomicity latches for :meth:`advance`: a chunk that was
        # computed but not yet committed to the cache survives here, so a
        # retried advance re-exposes the same chunk instead of re-running
        # the engines (which would skip a window of samples).
        self._pending_chunk = None
        self._pending_persisted = False

    # ------------------------------------------------------------------ #
    # warmup
    # ------------------------------------------------------------------ #
    @property
    def ready(self) -> bool:
        """True once the pipeline is trained and the stream is open."""
        return self._stream is not None

    def ensure_ready(self) -> None:
        """Train (if needed) and open the shared stream.  Idempotent.

        Runs on the service's executor thread — warmup for a paper-scale
        scenario is minutes of training, and must not block the event loop.
        """
        if self._stream is not None:
            return
        fault_point("serve:warmup")
        pipeline, gen = self._pipeline_factory(self.plan)
        graph = pipeline.generation_graph(
            num_solutions=self.plan.num_solutions,
            retain_topologies=False,
        )
        # Resolves the same two base seeds the one-shot run draws from the
        # post-training generator: bit-identity with `repro generate`.
        self._stream = graph.open_stream(gen)
        if self.library_root is not None:
            self._attach_library()

    # ------------------------------------------------------------------ #
    # persistent backing
    # ------------------------------------------------------------------ #
    @property
    def writer_id(self) -> str:
        """This stream's writer identity in the shared pattern library."""
        return f"serve-{self.key[:12]}"

    def _library_fingerprint(self) -> dict:
        """The resume-safety identity of this served stream.

        The graph fingerprint pins seeds/rules/knobs (``num_samples`` is -1:
        a served stream is open-ended); the stream key pins the scenario
        identity the server groups by.
        """
        stream = self._stream
        fingerprint = stream.graph.fingerprint(
            -1, stream.sample_seed, stream.legal_seed
        )
        fingerprint["stream_key"] = self.key
        return fingerprint

    def _attach_library(self) -> None:
        """Bind the stream's writer ledger and restore its cached chunks.

        Restored chunks replay exactly like live ones — patterns enter the
        shared store, the window ledger's ``done`` frontier advances, and
        the stream's counters skip forward — so a window served before the
        restart is answered from the cache, bit-identical, without touching
        the engines.
        """
        library = PatternLibrary(self.library_root, writer=self.writer_id)
        records = library.bind(self._library_fingerprint(), resume=True)
        with self._lock:
            for record in records:
                patterns = library.load_record_patterns(record)
                if not (
                    len(record.pattern_sources)
                    == len(record.pattern_clean)
                    == len(patterns)
                ):
                    raise LibraryError(
                        f"chunk {record.chunk} of writer {self.writer_id!r} "
                        "carries no per-pattern attribution; the library was "
                        "not written by a serve batcher"
                    )
                cached = CachedChunk(
                    start=record.start, end=record.start + record.num_sampled
                )
                for pattern, source, flag in zip(
                    patterns, record.pattern_sources, record.pattern_clean
                ):
                    digest = pattern_hash(pattern)
                    self._patterns.setdefault(digest, pattern)
                    cached.hashes.append(digest)
                    cached.sources.append(int(source))
                    cached.clean.append(bool(flag))
                self._chunks.append(cached)
                self._skip_record(record)
                self.done = cached.end
                self.restored_samples += record.num_sampled
        self._library = library
        if self.metrics is not None and self.restored_samples:
            self.metrics.record_library_restored(self.restored_samples)

    def _skip_record(self, record) -> None:
        """Fast-forward the generation state over one restored chunk."""
        self._stream.skip_record(record)

    def _persist_chunk(self, chunk) -> None:
        """Commit one generated chunk to the shared library (with attribution)."""
        fault_point("serve:persist")
        stats = chunk.legalization_report.stats
        record = ChunkRecord(
            chunk=chunk.chunk,
            start=chunk.start,
            num_sampled=chunk.size,
            num_kept=chunk.num_kept,
            num_rejected=chunk.num_rejected,
            unsolved=chunk.unsolved,
            num_patterns=len(chunk.chunk_patterns),
            num_stored=0,
            duplicates_skipped=0,
            num_clean=chunk.num_clean,
            shard=None,
            topology_complexity_counts=chunk.topology_histogram.as_records(),
            pattern_complexity_counts=chunk.pattern_histogram.as_records(),
            stats={
                "attempted": stats.attempted,
                "solved": stats.solved,
                "failed": stats.failed,
                "solutions": stats.solutions,
                "total_iterations": stats.total_iterations,
                "total_solver_time": stats.total_solver_time,
            },
            pattern_sources=[int(source) for source in chunk.pattern_sources],
            pattern_clean=[int(bool(flag)) for flag in chunk.clean_mask],
        )
        self._library.append_chunk(record, chunk.patterns)
        self.persisted_chunks += 1
        if self.metrics is not None:
            self.metrics.record_library_persisted(len(chunk.patterns))

    # ------------------------------------------------------------------ #
    # window ledger
    # ------------------------------------------------------------------ #
    def reserve(self, count: int, start: "int | None" = None) -> "tuple[int, int]":
        """Claim a sample window and return it as ``(start, end)``.

        With ``start=None`` the window is the next unclaimed tail slice —
        reservation order is submission order, which is what pins the
        request→sample mapping regardless of how generation later
        interleaves.  An explicit ``start`` may re-read old samples and may
        extend the frontier past the current tail.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        with self._lock:
            if start is None:
                start = self.reserved
            end = start + count
            if end > self.reserved:
                self.reserved = end
            return start, end

    def covered_through(self) -> int:
        """The ``done`` frontier: every sample below it is in the cache."""
        with self._lock:
            return self.done

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def advance(self, size: int):
        """Generate the next ``size`` samples and fold them into the cache.

        Runs on the executor thread; returns the
        :class:`~repro.pipeline.StreamChunk` so the service can route the
        slice to every waiting request.

        **Retry-safe**: the computed chunk is latched before the persist and
        cache-commit steps, so if either fails the service may call
        ``advance`` again and receive the *same* chunk — the stream never
        skips a window, and a chunk persisted before the failure is not
        persisted twice.
        """
        if not self.ready:
            raise RuntimeError("StreamBatcher.advance before ensure_ready")
        fault_point("serve:advance")
        chunk = self._pending_chunk
        if chunk is None:
            chunk = self._compute_chunk(size)
            self._pending_chunk = chunk
        if self._library is not None and not self._pending_persisted:
            # Commit before exposing: a chunk a client has seen is always
            # recoverable after a restart.
            self._persist_chunk(chunk)
        self._pending_persisted = True
        self._commit_chunk(chunk)
        self._pending_chunk = None
        self._pending_persisted = False
        return chunk

    def _compute_chunk(self, size: int):
        """Run the engines for the next ``size`` samples (overridable)."""
        return self._stream.advance(size)

    def _commit_chunk(self, chunk) -> None:
        """Fold a computed chunk into the pattern cache and ``done`` frontier."""
        fault_point("serve:cache-commit")
        record = CachedChunk(start=chunk.start, end=chunk.end)
        with self._lock:
            for pattern, source, clean in zip(
                chunk.patterns, chunk.pattern_sources, chunk.clean_mask
            ):
                digest = pattern_hash(pattern)
                self._patterns.setdefault(digest, pattern)
                record.hashes.append(digest)
                record.sources.append(int(source))
                record.clean.append(bool(clean))
            self._chunks.append(record)
            self.done = chunk.end

    def close(self) -> None:
        """Release generation resources (the supervised batcher's worker)."""

    # ------------------------------------------------------------------ #
    # cache reads
    # ------------------------------------------------------------------ #
    def cover(self, start: int, end: int) -> "list[tuple[CachedChunk, list, list, list]]":
        """Cached slices intersecting ``[start, end)``, in stream order.

        Each element is ``(record, patterns, sources, clean)`` restricted to
        the window — ready to become one cached
        :class:`~repro.serve.protocol.ChunkPayload`.  Only the part of the
        window below the ``done`` frontier is returned; the caller generates
        the rest.
        """
        slices = []
        with self._lock:
            for record in self._chunks:
                if record.end <= start or record.start >= end:
                    continue
                patterns, sources, clean = [], [], []
                for digest, source, flag in zip(
                    record.hashes, record.sources, record.clean
                ):
                    if start <= source < end:
                        patterns.append(self._patterns[digest])
                        sources.append(source)
                        clean.append(flag)
                slices.append((record, patterns, sources, clean))
        return slices

"""Asyncio client for the ``repro serve`` HTTP daemon.

:class:`ServeClient` speaks the transport :mod:`repro.serve.server`
exposes — stdlib only, one connection per call:

* :meth:`ServeClient.stream` POSTs a
  :class:`~repro.serve.protocol.GenerateRequest` and yields decoded
  :class:`~repro.serve.protocol.ChunkPayload` events as the daemon streams
  them, finishing with the :class:`~repro.serve.protocol.RequestSummary`;
* :meth:`ServeClient.generate` collects a whole request into one
  :class:`~repro.serve.ServedWindow` (patterns bit-identical to the
  server-side ones — the JSON pattern codec is lossless);
* :meth:`ServeClient.healthz` / :meth:`ServeClient.metrics` /
  :meth:`ServeClient.scenarios` wrap the JSON GET endpoints.

Non-2xx responses raise :class:`ServeHTTPError` carrying the status code,
so a caller can distinguish backpressure (429) from a bad request (400).

**Retries** are opt-in (``max_retries > 0``) and bounded: connection
failures, 429 backpressure and 503 degraded/stopping responses are retried
with capped exponential backoff + jitter, honoring the server's
``Retry-After`` hint when one is sent.  Only *transient* classes retry —
a 400 never will — and :meth:`stream` retries only until the first event
has been yielded (a half-consumed stream is the caller's to resume, since
blindly re-POSTing a tail-allocated window would claim a second window).
"""

from __future__ import annotations

import asyncio
import json
import random

from .protocol import ChunkPayload, GenerateRequest, ProtocolError, RequestSummary
from .service import ServedWindow

__all__ = ["ServeClient", "ServeHTTPError"]

#: HTTP statuses worth retrying: backpressure and not-ready, never 4xx logic
#: errors.
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServeHTTPError(RuntimeError):
    """A non-2xx response; :attr:`status` holds the HTTP status code.

    :attr:`retry_after` carries the server's ``Retry-After`` hint in
    seconds when the response included one (backpressure and degraded-mode
    rejections do), else ``None``.
    """

    def __init__(self, status: int, message: str, retry_after: "float | None" = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.retry_after = retry_after


class ServeClient:
    """Thin per-request HTTP client (no pooling, no external deps).

    Parameters
    ----------
    host / port:
        The daemon's address.
    max_retries:
        Transient-failure retries per call (0, the default, preserves the
        historical fail-fast behaviour).
    backoff_base / backoff_cap:
        Exponential backoff bounds in seconds; the server's ``Retry-After``
        hint overrides the computed delay when it is larger.
    rng:
        Jitter source (seeded under test for reproducible schedules).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8181,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: "random.Random | None" = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._rng = rng if rng is not None else random.Random()

    def _retry_delay(self, attempt: int, retry_after: "float | None") -> float:
        """Backoff for retry ``attempt`` (1-based), honoring ``Retry-After``."""
        delay = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        delay *= 1.0 + 0.25 * self._rng.random()
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    @staticmethod
    def _transient(error: BaseException) -> "tuple[bool, float | None]":
        """``(retryable, retry_after_hint)`` classification of a failure."""
        if isinstance(error, ServeHTTPError):
            return error.status in _RETRYABLE_STATUSES, error.retry_after
        if isinstance(error, (ConnectionError, asyncio.IncompleteReadError, OSError)):
            return True, None  # connection refused / reset: retryable, no hint
        return False, None

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    async def _open(self, method: str, path: str, body: "bytes | None" = None):
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = body if body is not None else b""
        writer.write(
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + payload
        )
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1").strip()
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            writer.close()
            raise ProtocolError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: "dict[str, str]" = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, reader, writer

    @staticmethod
    async def _read_body(headers: dict, reader: asyncio.StreamReader) -> bytes:
        if headers.get("transfer-encoding", "").lower() == "chunked":
            chunks = []
            async for piece in ServeClient._iter_chunks(reader):
                chunks.append(piece)
            return b"".join(chunks)
        length = int(headers.get("content-length", "0"))
        return await reader.readexactly(length) if length else b""

    @staticmethod
    async def _iter_chunks(reader: asyncio.StreamReader):
        while True:
            size_line = (await reader.readline()).decode("latin-1").strip()
            size = int(size_line.split(";", 1)[0], 16)
            if size == 0:
                await reader.readline()  # trailing CRLF after the last chunk
                return
            data = await reader.readexactly(size)
            await reader.readexactly(2)  # chunk-terminating CRLF
            yield data

    async def _raise_for_status(self, status: int, headers: dict, reader, writer) -> None:
        body = await self._read_body(headers, reader)
        writer.close()
        try:
            message = json.loads(body.decode("utf-8")).get("error", body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            message = repr(body)
        retry_after: "float | None" = None
        header = headers.get("retry-after")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass  # HTTP-date form: ignore, backoff computes its own delay
        raise ServeHTTPError(status, message, retry_after=retry_after)

    # ------------------------------------------------------------------ #
    # JSON endpoints
    # ------------------------------------------------------------------ #
    async def get_json(self, path: str) -> dict:
        """GET ``path`` and decode the JSON body (raises on non-200).

        Retries transient failures up to ``max_retries`` times.
        """
        attempt = 0
        while True:
            try:
                status, headers, reader, writer = await self._open("GET", path)
                if status != 200:
                    await self._raise_for_status(status, headers, reader, writer)
                body = await self._read_body(headers, reader)
                writer.close()
                return json.loads(body.decode("utf-8"))
            except Exception as error:
                retryable, hint = self._transient(error)
                attempt += 1
                if not retryable or attempt > self.max_retries:
                    raise
                await asyncio.sleep(self._retry_delay(attempt, hint))

    async def healthz(self) -> dict:
        return await self.get_json("/healthz")

    async def metrics(self) -> dict:
        return await self.get_json("/metrics")

    async def scenarios(self) -> dict:
        return await self.get_json("/scenarios")

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    async def stream(self, request: GenerateRequest):
        """Yield each event of one request as the daemon streams it.

        Yields :class:`ChunkPayload` objects; the terminating
        :class:`RequestSummary` is yielded last (callers can type-check, or
        use :meth:`generate` for the collected form).
        """
        body = json.dumps(request.as_dict()).encode("utf-8")
        attempt = 0
        while True:
            yielded = False
            try:
                status, headers, reader, writer = await self._open("POST", "/generate", body)
                if status != 200:
                    await self._raise_for_status(status, headers, reader, writer)
                buffer = b""
                try:
                    async for piece in self._iter_chunks(reader):
                        buffer += piece
                        while b"\n" in buffer:
                            line, buffer = buffer.split(b"\n", 1)
                            if not line.strip():
                                continue
                            document = json.loads(line.decode("utf-8"))
                            yielded = True
                            if document.get("kind") == "summary":
                                yield RequestSummary.from_dict(document)
                            else:
                                yield ChunkPayload.from_dict(document)
                finally:
                    writer.close()
                return
            except Exception as error:
                retryable, hint = self._transient(error)
                attempt += 1
                if yielded or not retryable or attempt > self.max_retries:
                    raise
                await asyncio.sleep(self._retry_delay(attempt, hint))

    async def generate(self, request: GenerateRequest) -> ServedWindow:
        """Run one request to completion and collect its window.

        With ``max_retries > 0``, a whole failed attempt (rejected POST or a
        stream that broke before any event arrived) is retried; a stream
        that breaks mid-flight is not, for the reasons in :meth:`stream`.
        """
        window = ServedWindow()
        async for event in self.stream(request):
            if isinstance(event, RequestSummary):
                window.summary = event
            else:
                window.patterns.extend(event.patterns)
                window.sources.extend(event.sources)
                window.clean.extend(event.clean)
        return window

"""Asyncio generation service: admission, coalescing, caching, shutdown.

:class:`GenerationService` is the in-process heart of ``repro serve`` (the
HTTP daemon in :mod:`repro.serve.server` is a thin transport over it):

* **Admission** (:meth:`GenerationService.submit`) is synchronous on the
  event loop.  The request's scenario is resolved and lowered, its sample
  window is reserved on the stream's ledger *in submission order* — that
  reservation, not the later generation schedule, pins which samples the
  request owns — and a bounded pending count applies backpressure: when
  ``max_pending`` requests are already in flight the submit raises
  :class:`ServiceBusyError` (HTTP 429) instead of queueing unboundedly.
* **Coalescing**: one worker task drains every waiting request at once,
  groups them by stream identity, and advances each group's shared
  :class:`~repro.serve.StreamBatcher` in batches spanning all waiting
  windows — concurrent clients are served by the same sampling and
  legalization calls.  Each completed chunk is routed to every request
  whose window it intersects, as a streamed
  :class:`~repro.serve.protocol.ChunkPayload`.
* **Caching**: a window that is already fully generated is answered from
  the batcher's pattern cache at submit time, without occupying a pending
  slot; partially-covered windows get their cached prefix before any new
  generation runs.
* **Shutdown** (:meth:`GenerationService.stop`) is clean mid-stream: the
  worker finishes the chunk in flight (executor work cannot be interrupted),
  then every unfinished request receives a terminal
  :class:`~repro.serve.protocol.RequestSummary` with ``ok=False`` — chunks
  already delivered remain valid.
* **Failure model** (see ``docs/serving.md``): per-request **deadlines**
  cancel cleanly (terminal summary, batch slot released, delivered chunks
  valid); failed warmup/advance calls are retried with budgeted
  exponential backoff + jitter at the admission layer; repeated group
  failures trip a **circuit breaker** that rejects non-cached windows with
  :class:`ServiceDegradedError` (503 + ``Retry-After``) while continuing to
  serve fully cached windows; with ``supervised=True`` each stream's
  engines run in a child process under
  :class:`~repro.serve.supervisor.SupervisedWorker`, which restarts dead or
  hung workers and deterministically resubmits the in-flight window.

Determinism contract (asserted by ``tests/test_serve.py`` and the
``serve_parity`` benchmark gate): the patterns served for window
``[a, b)`` are bit-identical to samples ``[a, b)`` of a one-shot
``repro generate`` of the same scenario/seed, for any number of concurrent
clients, any interleaving, and any ``max_batch``.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from dataclasses import dataclass, field

from ..scenarios import builtin_registry
from .batcher import StreamBatcher, stream_key
from .metrics import ServeMetrics
from .protocol import ChunkPayload, GenerateRequest, RequestSummary
from .supervisor import SupervisedStreamBatcher, WorkerConfig

__all__ = [
    "GenerationService",
    "RequestTicket",
    "ServedWindow",
    "ServiceBusyError",
    "ServiceClosedError",
    "ServiceDegradedError",
]


class ServiceBusyError(RuntimeError):
    """The pending-request bound is hit; the caller should retry later (429)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Hint for the HTTP ``Retry-After`` header (seconds).
        self.retry_after = float(retry_after)


class ServiceClosedError(RuntimeError):
    """The service is stopping or stopped and admits no new requests (503)."""


class ServiceDegradedError(ServiceClosedError):
    """The circuit breaker is open: generation is failing repeatedly.

    Fully cached windows are still served; anything needing live generation
    is rejected until the breaker's reset window elapses (503 with a
    ``Retry-After`` hint over HTTP).
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        #: Seconds until the breaker half-opens (the ``Retry-After`` hint).
        self.retry_after = float(retry_after)


@dataclass
class ServedWindow:
    """Everything one finished request produced, collected in stream order."""

    patterns: list = field(default_factory=list)
    sources: list = field(default_factory=list)
    clean: list = field(default_factory=list)
    summary: "RequestSummary | None" = None

    @property
    def ok(self) -> bool:
        return self.summary is not None and self.summary.ok


class RequestTicket:
    """Handle to one admitted request: an async stream of its events.

    Iterate :meth:`events` for per-chunk streaming, or await
    :meth:`collect` for the whole window at once.  Exactly one
    :class:`~repro.serve.protocol.RequestSummary` terminates the stream.
    """

    def __init__(self, request: GenerateRequest, scenario: str, start: int, end: int) -> None:
        self.request = request
        self.scenario = scenario
        #: Absolute sample window ``[start, end)`` reserved for this request.
        self.start = start
        self.end = end
        self.summary: "RequestSummary | None" = None
        self._events: "asyncio.Queue" = asyncio.Queue()
        self._submitted = time.perf_counter()
        self._covered = start
        self._admitted = False
        self._finished = False
        self._batcher: "StreamBatcher | None" = None
        #: ``loop.call_later`` handle of the request's deadline, if any.
        self._deadline_handle = None
        self.num_patterns = 0
        self.num_clean = 0
        self.cached_samples = 0
        self.live_chunks = 0

    async def events(self):
        """Yield :class:`ChunkPayload` events until the summary arrives.

        The terminating summary is not yielded; it lands on
        :attr:`summary`.
        """
        while True:
            event = await self._events.get()
            if isinstance(event, RequestSummary):
                self.summary = event
                return
            yield event

    async def collect(self) -> ServedWindow:
        """Drain the whole event stream into one :class:`ServedWindow`."""
        window = ServedWindow()
        async for payload in self.events():
            window.patterns.extend(payload.patterns)
            window.sources.extend(payload.sources)
            window.clean.extend(payload.clean)
        window.summary = self.summary
        return window


class GenerationService:
    """Coalescing generation service over the scenario registry.

    Parameters
    ----------
    registry:
        A :class:`~repro.scenarios.ScenarioRegistry`; defaults to the
        builtins.
    max_pending:
        Backpressure bound: requests admitted but not yet finished.  A
        submit beyond it raises :class:`ServiceBusyError`.
    max_batch:
        Largest coalesced batch one engine call may span (memory knob;
        results are identical for any value).
    pipeline_factory:
        Optional ``plan -> (trained pipeline, generator)`` hook forwarded
        to each :class:`~repro.serve.StreamBatcher` (tests inject
        pre-trained pipelines).
    metrics:
        A :class:`~repro.serve.ServeMetrics`; a fresh one by default.
    library_root:
        Optional directory of a shared v2
        :class:`~repro.library.PatternLibrary`.  Each stream batcher
        becomes a writer of that library: generated chunks are persisted
        with per-pattern attribution and restored into the pattern cache on
        warmup, so the serve cache survives restarts and many servers/CLI
        runs can grow one library concurrently.
    supervised:
        Run each stream's engines in a supervised child process
        (:class:`~repro.serve.supervisor.SupervisedStreamBatcher`): worker
        death and hangs are detected, the worker is restarted, and the
        in-flight window is deterministically resubmitted.
    worker_config:
        :class:`~repro.serve.supervisor.WorkerConfig` supervision knobs
        (heartbeats, timeouts, restart budget); defaults when ``None``.
    deadline_seconds:
        Service-wide default per-request deadline (``None``: no deadline).
        A request's own ``deadline`` field overrides it.
    retry_budget:
        Failed warmup/advance calls are retried this many times (with
        exponential backoff + jitter) before the group's requests fail.
    retry_backoff / retry_backoff_cap:
        Base and cap of the retry backoff, in seconds.
    breaker_threshold:
        Consecutive retry-exhausted group failures that trip the circuit
        breaker.
    breaker_reset_seconds:
        How long the breaker stays open before a half-open trial.
    """

    def __init__(
        self,
        registry=None,
        max_pending: int = 8,
        max_batch: int = 64,
        pipeline_factory=None,
        metrics: "ServeMetrics | None" = None,
        library_root=None,
        supervised: bool = False,
        worker_config: "WorkerConfig | None" = None,
        deadline_seconds: "float | None" = None,
        retry_budget: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.registry = registry if registry is not None else builtin_registry()
        self.max_pending = int(max_pending)
        self.max_batch = int(max_batch)
        self.pipeline_factory = pipeline_factory
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.library_root = library_root
        self.supervised = bool(supervised)
        self.worker_config = worker_config
        self.deadline_seconds = deadline_seconds
        self.retry_budget = int(retry_budget)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_cap = float(retry_backoff_cap)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_seconds = float(breaker_reset_seconds)
        self._batchers: "dict[str, StreamBatcher]" = {}
        self._queue: "deque[RequestTicket]" = deque()
        self._wake = asyncio.Event()
        self._pending = 0
        self._stopping = False
        self._worker: "asyncio.Task | None" = None
        #: Consecutive retry-exhausted group failures (breaker input).
        self._breaker_failures = 0
        #: ``time.monotonic()`` until which the breaker stays open.
        self._breaker_open_until: "float | None" = None
        # Seeded: retry jitter stays reproducible under test.
        self._retry_rng = random.Random(0)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the worker task.  Requests submitted earlier drain at once
        — which is also how the throughput benchmark forces a maximally
        coalesced first batch."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop cleanly: finish the chunk in flight, fail the rest.

        Every admitted-but-unfinished request receives a terminal summary
        with ``ok=False`` (``error_code="service_stopped"``);
        already-delivered chunks stay valid.  Supervised worker processes
        are terminated.  Idempotent and safe to call concurrently.
        """
        self._stopping = True
        self._wake.set()
        worker, self._worker = self._worker, None
        if worker is not None:
            await worker
        while self._queue:
            self._finish(
                self._queue.popleft(),
                ok=False,
                error="service stopped",
                error_code="service_stopped",
            )
        loop = asyncio.get_running_loop()
        for batcher in self._batchers.values():
            await loop.run_in_executor(None, batcher.close)

    @property
    def stopping(self) -> bool:
        return self._stopping

    @property
    def pending(self) -> int:
        """Requests admitted and not yet finished (the queue-depth gauge)."""
        return self._pending

    @property
    def degraded(self) -> bool:
        """True while the circuit breaker is open."""
        return (
            self._breaker_open_until is not None
            and time.monotonic() < self._breaker_open_until
        )

    @property
    def state(self) -> str:
        """``"ok"`` | ``"degraded"`` | ``"stopping"`` (the readiness triage)."""
        if self._stopping:
            return "stopping"
        if self.degraded:
            return "degraded"
        return "ok"

    @property
    def ready(self) -> bool:
        """Readiness: accepting live-generation work right now."""
        return self.state == "ok"

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def plan_for(self, request: GenerateRequest):
        """Resolve and lower the request's scenario (+ overrides).

        Raises :class:`~repro.scenarios.ScenarioError` on an unknown
        scenario or invalid overrides — mapped to HTTP 400 by the server.
        """
        spec = self.registry.resolve(request.scenario)
        if request.overrides:
            spec = spec.with_overrides(request.overrides)
        return spec.lower()

    def submit(self, request: GenerateRequest) -> RequestTicket:
        """Admit one request and return its ticket.

        Runs synchronously on the event loop: scenario resolution, window
        reservation and the cache/backpressure decision all happen before
        control returns, so the request→window mapping is fixed by
        submission order alone.

        Raises
        ------
        ServiceClosedError
            After :meth:`stop` has begun.
        ServiceDegradedError
            While the circuit breaker is open, for any window that needs
            live generation (fully cached windows are still served).
        ServiceBusyError
            When ``max_pending`` requests are already in flight (the
            explicit-reject backpressure contract; never silently queues
            past the bound).
        repro.scenarios.ScenarioError
            On an unknown scenario or invalid overrides.
        """
        if self._stopping:
            raise ServiceClosedError("service is stopping")
        plan = self.plan_for(request)
        count = request.count if request.count is not None else plan.num_generated
        batcher = self._batcher_for(plan)
        start, end = batcher.reserve(count, request.start)
        ticket = RequestTicket(request, plan.scenario, start, end)
        ticket._batcher = batcher

        # Fully-cached window: answer immediately, never occupy a pending
        # slot — repeat requests cost nothing even under full load, and
        # stay served while the breaker is open (graceful degradation).
        if batcher.ready and end <= batcher.covered_through():
            self.metrics.record_admitted(self._pending)
            self._serve_cached_prefix(ticket, batcher)
            self._finish(ticket, ok=True)
            return ticket

        if self.degraded:
            remaining = self._breaker_open_until - time.monotonic()
            raise ServiceDegradedError(
                "service degraded: generation is failing repeatedly "
                f"(circuit breaker open for {remaining:.1f}s more)",
                retry_after=max(0.0, remaining),
            )

        if self._pending >= self.max_pending:
            self.metrics.record_rejected()
            raise ServiceBusyError(
                f"{self._pending} requests already pending (max {self.max_pending})"
            )
        self._pending += 1
        ticket._admitted = True
        self.metrics.record_admitted(self._pending)
        self._queue.append(ticket)
        self._wake.set()
        deadline = (
            request.deadline if request.deadline is not None else self.deadline_seconds
        )
        if deadline is not None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = None  # no loop yet: the deadline cannot be armed
            if loop is not None:
                ticket._deadline_handle = loop.call_later(
                    deadline, self._expire, ticket, float(deadline)
                )
        return ticket

    def cancel(
        self,
        ticket: RequestTicket,
        reason: str = "cancelled by client",
        error_code: str = "cancelled",
    ) -> bool:
        """Cancel an admitted request cleanly (disconnects, deadlines).

        The ticket receives its terminal summary immediately, its batch
        slot (pending count) is released, and the coalescing worker drops
        it from any in-flight group — generation already paid for is still
        folded into the cache, so nothing is wasted or leaked.  Returns
        False if the request already finished.
        """
        if ticket._finished:
            return False
        try:
            self._queue.remove(ticket)
        except ValueError:
            pass
        self.metrics.record_cancelled(deadline=error_code == "deadline_exceeded")
        self._finish(ticket, ok=False, error=reason, error_code=error_code)
        return True

    def _expire(self, ticket: RequestTicket, deadline: float) -> None:
        self.cancel(
            ticket,
            reason=f"deadline of {deadline:g}s exceeded",
            error_code="deadline_exceeded",
        )

    def _batcher_for(self, plan) -> StreamBatcher:
        key = stream_key(plan)
        existing = self._batchers.get(key)
        if existing is not None:
            return existing
        if self.supervised:
            batcher: StreamBatcher = SupervisedStreamBatcher(
                plan,
                self.pipeline_factory,
                max_batch=self.max_batch,
                library_root=self.library_root,
                metrics=self.metrics,
                worker_config=self.worker_config,
            )
        else:
            batcher = StreamBatcher(
                plan,
                self.pipeline_factory,
                max_batch=self.max_batch,
                library_root=self.library_root,
                metrics=self.metrics,
            )
        self._batchers[key] = batcher
        return batcher

    # ------------------------------------------------------------------ #
    # the circuit breaker
    # ------------------------------------------------------------------ #
    def _record_group_failure(self) -> None:
        """One request group exhausted its retry budget."""
        self._breaker_failures += 1
        if self._breaker_failures >= self.breaker_threshold and not self.degraded:
            self._breaker_open_until = time.monotonic() + self.breaker_reset_seconds
            # Half-open bookkeeping: when the window elapses, one more
            # failure re-trips immediately.
            self._breaker_failures = self.breaker_threshold - 1
            self.metrics.record_breaker_state(True, tripped=True)

    def _record_group_success(self) -> None:
        """A live generation call succeeded: close the breaker."""
        self._breaker_failures = 0
        if self._breaker_open_until is not None:
            self._breaker_open_until = None
            self.metrics.record_breaker_state(False)

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            if not self._queue:
                self._wake.clear()
                if self._queue or self._stopping:
                    continue
                await self._wake.wait()
                continue
            # Drain *everything* waiting right now: this is the coalescing
            # moment — all windows reserved so far are served together.
            drained = list(self._queue)
            self._queue.clear()
            groups: "dict[str, list[RequestTicket]]" = {}
            for ticket in drained:
                groups.setdefault(ticket._batcher.key, []).append(ticket)
            for tickets in groups.values():
                await self._process_group(tickets[0]._batcher, tickets, loop)

    async def _call_with_retries(self, loop, fn, *args):
        """Run a batcher call on the executor under the admission retry budget.

        Exponential backoff with deterministic jitter between attempts; the
        budget is per call, and a success resets nothing here (the breaker
        tracks consecutive *exhausted* failures, not attempts).
        """
        attempt = 0
        while True:
            try:
                return await loop.run_in_executor(None, fn, *args)
            except Exception:
                self.metrics.record_generation_failure()
                attempt += 1
                if self._stopping or attempt > self.retry_budget:
                    raise
                self.metrics.record_generation_retry()
                delay = min(
                    self.retry_backoff * (2 ** (attempt - 1)), self.retry_backoff_cap
                )
                await asyncio.sleep(delay * (1.0 + 0.25 * self._retry_rng.random()))

    async def _process_group(
        self, batcher: StreamBatcher, tickets: "list[RequestTicket]", loop
    ) -> None:
        if self._stopping:
            # A request admitted in the same loop tick `stop()` began must
            # not pay for warmup: fail it with the typed shutdown error.
            for ticket in tickets:
                self._finish(
                    ticket,
                    ok=False,
                    error="service stopped",
                    error_code="service_stopped",
                )
            return
        try:
            if not batcher.ready:
                await self._call_with_retries(loop, batcher.ensure_ready)
        except Exception as error:  # noqa: BLE001 - reported to every client
            self._record_group_failure()
            for ticket in tickets:
                self._finish(
                    ticket,
                    ok=False,
                    error=f"warmup failed: {error}",
                    error_code="warmup_failed",
                )
            return

        live: "list[RequestTicket]" = []
        for ticket in tickets:
            if ticket._finished:  # cancelled/expired while queued
                continue
            self._serve_cached_prefix(ticket, batcher)
            if ticket._covered >= ticket.end:
                self._finish(ticket, ok=True)
            else:
                live.append(ticket)

        while True:
            # Cancellations and deadlines may fire between awaits: drop
            # finished tickets so their batch demand is released, and
            # re-aim the target at what is still wanted.
            live = [t for t in live if not t._finished]
            if not live or self._stopping:
                break
            target = max(ticket.end for ticket in live)
            if batcher.covered_through() >= target:
                break
            size = min(self.max_batch, target - batcher.covered_through())
            try:
                chunk = await self._call_with_retries(loop, batcher.advance, size)
            except Exception as error:  # noqa: BLE001 - reported to every client
                self._record_group_failure()
                for ticket in live:
                    self._finish(
                        ticket,
                        ok=False,
                        error=f"generation failed: {error}",
                        error_code="generation_failed",
                    )
                return
            self._record_group_success()
            occupancy = sum(
                1 for t in live if t.start < chunk.end and t.end > chunk.start
            )
            self.metrics.record_batch(chunk.size, occupancy)
            self.metrics.record_legalization(chunk.legalization_report.stats)
            for ticket in live:
                if ticket._finished:
                    continue
                self._deliver_chunk(ticket, chunk)
                if ticket._covered >= ticket.end:
                    self._finish(ticket, ok=True)
        for ticket in live:
            if not ticket._finished:
                self._finish(
                    ticket,
                    ok=False,
                    error="service stopped mid-stream",
                    error_code="service_stopped",
                )

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def _serve_cached_prefix(self, ticket: RequestTicket, batcher: StreamBatcher) -> None:
        hi = min(ticket.end, batcher.covered_through())
        if hi <= ticket._covered:
            return
        lo = ticket._covered
        for record, patterns, sources, clean in batcher.cover(lo, hi):
            payload = ChunkPayload(
                start=max(record.start, lo),
                end=min(record.end, hi),
                patterns=patterns,
                sources=sources,
                clean=clean,
                cached=True,
            )
            ticket.num_patterns += len(patterns)
            ticket.num_clean += sum(1 for flag in clean if flag)
            ticket._events.put_nowait(payload)
        ticket.cached_samples += hi - lo
        self.metrics.record_cached(hi - lo)
        ticket._covered = hi

    def _deliver_chunk(self, ticket: RequestTicket, chunk) -> None:
        lo = max(ticket.start, chunk.start)
        hi = min(ticket.end, chunk.end)
        if lo >= hi:
            return
        patterns, sources, clean = [], [], []
        for pattern, source, flag in zip(
            chunk.patterns, chunk.pattern_sources, chunk.clean_mask
        ):
            if lo <= source < hi:
                patterns.append(pattern)
                sources.append(int(source))
                clean.append(bool(flag))
        ticket._events.put_nowait(
            ChunkPayload(
                start=lo, end=hi, patterns=patterns, sources=sources, clean=clean
            )
        )
        ticket.num_patterns += len(patterns)
        ticket.num_clean += sum(1 for flag in clean if flag)
        ticket.live_chunks += 1
        ticket._covered = max(ticket._covered, hi)

    def _finish(
        self,
        ticket: RequestTicket,
        ok: bool,
        error: "str | None" = None,
        error_code: "str | None" = None,
    ) -> None:
        if ticket._finished:
            return
        ticket._finished = True
        if ticket._deadline_handle is not None:
            ticket._deadline_handle.cancel()
            ticket._deadline_handle = None
        if ticket._admitted:
            self._pending -= 1
        elapsed = time.perf_counter() - ticket._submitted
        ticket._events.put_nowait(
            RequestSummary(
                ok=ok,
                scenario=ticket.scenario,
                start=ticket.start,
                end=ticket.end,
                num_patterns=ticket.num_patterns,
                num_clean=ticket.num_clean,
                cached_samples=ticket.cached_samples,
                live_chunks=ticket.live_chunks,
                elapsed_seconds=elapsed,
                error=error,
                error_code=error_code,
            )
        )
        self.metrics.record_finished(elapsed, ok, self._pending)

"""Asyncio generation service: admission, coalescing, caching, shutdown.

:class:`GenerationService` is the in-process heart of ``repro serve`` (the
HTTP daemon in :mod:`repro.serve.server` is a thin transport over it):

* **Admission** (:meth:`GenerationService.submit`) is synchronous on the
  event loop.  The request's scenario is resolved and lowered, its sample
  window is reserved on the stream's ledger *in submission order* — that
  reservation, not the later generation schedule, pins which samples the
  request owns — and a bounded pending count applies backpressure: when
  ``max_pending`` requests are already in flight the submit raises
  :class:`ServiceBusyError` (HTTP 429) instead of queueing unboundedly.
* **Coalescing**: one worker task drains every waiting request at once,
  groups them by stream identity, and advances each group's shared
  :class:`~repro.serve.StreamBatcher` in batches spanning all waiting
  windows — concurrent clients are served by the same sampling and
  legalization calls.  Each completed chunk is routed to every request
  whose window it intersects, as a streamed
  :class:`~repro.serve.protocol.ChunkPayload`.
* **Caching**: a window that is already fully generated is answered from
  the batcher's pattern cache at submit time, without occupying a pending
  slot; partially-covered windows get their cached prefix before any new
  generation runs.
* **Shutdown** (:meth:`GenerationService.stop`) is clean mid-stream: the
  worker finishes the chunk in flight (executor work cannot be interrupted),
  then every unfinished request receives a terminal
  :class:`~repro.serve.protocol.RequestSummary` with ``ok=False`` — chunks
  already delivered remain valid.

Determinism contract (asserted by ``tests/test_serve.py`` and the
``serve_parity`` benchmark gate): the patterns served for window
``[a, b)`` are bit-identical to samples ``[a, b)`` of a one-shot
``repro generate`` of the same scenario/seed, for any number of concurrent
clients, any interleaving, and any ``max_batch``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

from ..scenarios import builtin_registry
from .batcher import StreamBatcher
from .metrics import ServeMetrics
from .protocol import ChunkPayload, GenerateRequest, RequestSummary

__all__ = [
    "GenerationService",
    "RequestTicket",
    "ServedWindow",
    "ServiceBusyError",
    "ServiceClosedError",
]


class ServiceBusyError(RuntimeError):
    """The pending-request bound is hit; the caller should retry later (429)."""


class ServiceClosedError(RuntimeError):
    """The service is stopping or stopped and admits no new requests (503)."""


@dataclass
class ServedWindow:
    """Everything one finished request produced, collected in stream order."""

    patterns: list = field(default_factory=list)
    sources: list = field(default_factory=list)
    clean: list = field(default_factory=list)
    summary: "RequestSummary | None" = None

    @property
    def ok(self) -> bool:
        return self.summary is not None and self.summary.ok


class RequestTicket:
    """Handle to one admitted request: an async stream of its events.

    Iterate :meth:`events` for per-chunk streaming, or await
    :meth:`collect` for the whole window at once.  Exactly one
    :class:`~repro.serve.protocol.RequestSummary` terminates the stream.
    """

    def __init__(self, request: GenerateRequest, scenario: str, start: int, end: int) -> None:
        self.request = request
        self.scenario = scenario
        #: Absolute sample window ``[start, end)`` reserved for this request.
        self.start = start
        self.end = end
        self.summary: "RequestSummary | None" = None
        self._events: "asyncio.Queue" = asyncio.Queue()
        self._submitted = time.perf_counter()
        self._covered = start
        self._admitted = False
        self._finished = False
        self._batcher: "StreamBatcher | None" = None
        self.num_patterns = 0
        self.num_clean = 0
        self.cached_samples = 0
        self.live_chunks = 0

    async def events(self):
        """Yield :class:`ChunkPayload` events until the summary arrives.

        The terminating summary is not yielded; it lands on
        :attr:`summary`.
        """
        while True:
            event = await self._events.get()
            if isinstance(event, RequestSummary):
                self.summary = event
                return
            yield event

    async def collect(self) -> ServedWindow:
        """Drain the whole event stream into one :class:`ServedWindow`."""
        window = ServedWindow()
        async for payload in self.events():
            window.patterns.extend(payload.patterns)
            window.sources.extend(payload.sources)
            window.clean.extend(payload.clean)
        window.summary = self.summary
        return window


class GenerationService:
    """Coalescing generation service over the scenario registry.

    Parameters
    ----------
    registry:
        A :class:`~repro.scenarios.ScenarioRegistry`; defaults to the
        builtins.
    max_pending:
        Backpressure bound: requests admitted but not yet finished.  A
        submit beyond it raises :class:`ServiceBusyError`.
    max_batch:
        Largest coalesced batch one engine call may span (memory knob;
        results are identical for any value).
    pipeline_factory:
        Optional ``plan -> (trained pipeline, generator)`` hook forwarded
        to each :class:`~repro.serve.StreamBatcher` (tests inject
        pre-trained pipelines).
    metrics:
        A :class:`~repro.serve.ServeMetrics`; a fresh one by default.
    library_root:
        Optional directory of a shared v2
        :class:`~repro.library.PatternLibrary`.  Each stream batcher
        becomes a writer of that library: generated chunks are persisted
        with per-pattern attribution and restored into the pattern cache on
        warmup, so the serve cache survives restarts and many servers/CLI
        runs can grow one library concurrently.
    """

    def __init__(
        self,
        registry=None,
        max_pending: int = 8,
        max_batch: int = 64,
        pipeline_factory=None,
        metrics: "ServeMetrics | None" = None,
        library_root=None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.registry = registry if registry is not None else builtin_registry()
        self.max_pending = int(max_pending)
        self.max_batch = int(max_batch)
        self.pipeline_factory = pipeline_factory
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.library_root = library_root
        self._batchers: "dict[str, StreamBatcher]" = {}
        self._queue: "deque[RequestTicket]" = deque()
        self._wake = asyncio.Event()
        self._pending = 0
        self._stopping = False
        self._worker: "asyncio.Task | None" = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the worker task.  Requests submitted earlier drain at once
        — which is also how the throughput benchmark forces a maximally
        coalesced first batch."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop cleanly: finish the chunk in flight, fail the rest.

        Every admitted-but-unfinished request receives a terminal summary
        with ``ok=False``; already-delivered chunks stay valid.  Idempotent.
        """
        self._stopping = True
        self._wake.set()
        if self._worker is not None:
            await self._worker
            self._worker = None
        while self._queue:
            self._finish(self._queue.popleft(), ok=False, error="service stopped")

    @property
    def stopping(self) -> bool:
        return self._stopping

    @property
    def pending(self) -> int:
        """Requests admitted and not yet finished (the queue-depth gauge)."""
        return self._pending

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def plan_for(self, request: GenerateRequest):
        """Resolve and lower the request's scenario (+ overrides).

        Raises :class:`~repro.scenarios.ScenarioError` on an unknown
        scenario or invalid overrides — mapped to HTTP 400 by the server.
        """
        spec = self.registry.resolve(request.scenario)
        if request.overrides:
            spec = spec.with_overrides(request.overrides)
        return spec.lower()

    def submit(self, request: GenerateRequest) -> RequestTicket:
        """Admit one request and return its ticket.

        Runs synchronously on the event loop: scenario resolution, window
        reservation and the cache/backpressure decision all happen before
        control returns, so the request→window mapping is fixed by
        submission order alone.

        Raises
        ------
        ServiceClosedError
            After :meth:`stop` has begun.
        ServiceBusyError
            When ``max_pending`` requests are already in flight (the
            explicit-reject backpressure contract; never silently queues
            past the bound).
        repro.scenarios.ScenarioError
            On an unknown scenario or invalid overrides.
        """
        if self._stopping:
            raise ServiceClosedError("service is stopping")
        plan = self.plan_for(request)
        count = request.count if request.count is not None else plan.num_generated
        batcher = self._batcher_for(plan)
        start, end = batcher.reserve(count, request.start)
        ticket = RequestTicket(request, plan.scenario, start, end)
        ticket._batcher = batcher

        # Fully-cached window: answer immediately, never occupy a pending
        # slot — repeat requests cost nothing even under full load.
        if batcher.ready and end <= batcher.covered_through():
            self.metrics.record_admitted(self._pending)
            self._serve_cached_prefix(ticket, batcher)
            self._finish(ticket, ok=True)
            return ticket

        if self._pending >= self.max_pending:
            self.metrics.record_rejected()
            raise ServiceBusyError(
                f"{self._pending} requests already pending (max {self.max_pending})"
            )
        self._pending += 1
        ticket._admitted = True
        self.metrics.record_admitted(self._pending)
        self._queue.append(ticket)
        self._wake.set()
        return ticket

    def _batcher_for(self, plan) -> StreamBatcher:
        probe = StreamBatcher(
            plan,
            self.pipeline_factory,
            max_batch=self.max_batch,
            library_root=self.library_root,
            metrics=self.metrics,
        )
        existing = self._batchers.get(probe.key)
        if existing is not None:
            return existing
        self._batchers[probe.key] = probe
        return probe

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            if not self._queue:
                self._wake.clear()
                if self._queue or self._stopping:
                    continue
                await self._wake.wait()
                continue
            # Drain *everything* waiting right now: this is the coalescing
            # moment — all windows reserved so far are served together.
            drained = list(self._queue)
            self._queue.clear()
            groups: "dict[str, list[RequestTicket]]" = {}
            for ticket in drained:
                groups.setdefault(ticket._batcher.key, []).append(ticket)
            for tickets in groups.values():
                await self._process_group(tickets[0]._batcher, tickets, loop)

    async def _process_group(
        self, batcher: StreamBatcher, tickets: "list[RequestTicket]", loop
    ) -> None:
        try:
            if not batcher.ready:
                await loop.run_in_executor(None, batcher.ensure_ready)
        except Exception as error:  # noqa: BLE001 - reported to every client
            for ticket in tickets:
                self._finish(ticket, ok=False, error=f"warmup failed: {error}")
            return

        live: "list[RequestTicket]" = []
        for ticket in tickets:
            self._serve_cached_prefix(ticket, batcher)
            if ticket._covered >= ticket.end:
                self._finish(ticket, ok=True)
            else:
                live.append(ticket)
        if not live:
            return

        target = max(ticket.end for ticket in live)
        while live and batcher.covered_through() < target:
            if self._stopping:
                break
            size = min(self.max_batch, target - batcher.covered_through())
            try:
                chunk = await loop.run_in_executor(None, batcher.advance, size)
            except Exception as error:  # noqa: BLE001 - reported to every client
                for ticket in live:
                    self._finish(ticket, ok=False, error=f"generation failed: {error}")
                return
            occupancy = sum(
                1 for t in live if t.start < chunk.end and t.end > chunk.start
            )
            self.metrics.record_batch(chunk.size, occupancy)
            self.metrics.record_legalization(chunk.legalization_report.stats)
            remaining = []
            for ticket in live:
                self._deliver_chunk(ticket, chunk)
                if ticket._covered >= ticket.end:
                    self._finish(ticket, ok=True)
                else:
                    remaining.append(ticket)
            live = remaining
        for ticket in live:
            self._finish(ticket, ok=False, error="service stopped mid-stream")

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def _serve_cached_prefix(self, ticket: RequestTicket, batcher: StreamBatcher) -> None:
        hi = min(ticket.end, batcher.covered_through())
        if hi <= ticket._covered:
            return
        lo = ticket._covered
        for record, patterns, sources, clean in batcher.cover(lo, hi):
            payload = ChunkPayload(
                start=max(record.start, lo),
                end=min(record.end, hi),
                patterns=patterns,
                sources=sources,
                clean=clean,
                cached=True,
            )
            ticket.num_patterns += len(patterns)
            ticket.num_clean += sum(1 for flag in clean if flag)
            ticket._events.put_nowait(payload)
        ticket.cached_samples += hi - lo
        self.metrics.record_cached(hi - lo)
        ticket._covered = hi

    def _deliver_chunk(self, ticket: RequestTicket, chunk) -> None:
        lo = max(ticket.start, chunk.start)
        hi = min(ticket.end, chunk.end)
        if lo >= hi:
            return
        patterns, sources, clean = [], [], []
        for pattern, source, flag in zip(
            chunk.patterns, chunk.pattern_sources, chunk.clean_mask
        ):
            if lo <= source < hi:
                patterns.append(pattern)
                sources.append(int(source))
                clean.append(bool(flag))
        ticket._events.put_nowait(
            ChunkPayload(
                start=lo, end=hi, patterns=patterns, sources=sources, clean=clean
            )
        )
        ticket.num_patterns += len(patterns)
        ticket.num_clean += sum(1 for flag in clean if flag)
        ticket.live_chunks += 1
        ticket._covered = max(ticket._covered, hi)

    def _finish(
        self, ticket: RequestTicket, ok: bool, error: "str | None" = None
    ) -> None:
        if ticket._finished:
            return
        ticket._finished = True
        if ticket._admitted:
            self._pending -= 1
        elapsed = time.perf_counter() - ticket._submitted
        ticket._events.put_nowait(
            RequestSummary(
                ok=ok,
                scenario=ticket.scenario,
                start=ticket.start,
                end=ticket.end,
                num_patterns=ticket.num_patterns,
                num_clean=ticket.num_clean,
                cached_samples=ticket.cached_samples,
                live_chunks=ticket.live_chunks,
                elapsed_seconds=elapsed,
                error=error,
            )
        )
        self.metrics.record_finished(elapsed, ok, self._pending)

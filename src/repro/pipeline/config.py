"""Configuration objects for the end-to-end DiffPattern pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data import DatasetConfig
from ..diffusion import DiffusionConfig
from ..legalization import DesignRules
from ..nn import UNetConfig
from ..prefilter import PrefilterConfig


@dataclass
class DiffPatternConfig:
    """Everything needed to train and run the full DiffPattern framework.

    Three preset scales are provided:

    * :meth:`tiny` — seconds-scale settings used by the unit tests,
    * :meth:`laptop` — the default, minutes-scale and CPU-friendly,
    * :meth:`paper` — the configuration reported in the paper
      (16x32x32 tensors, K=1000, 128-channel U-Net, 0.5 M iterations);
      valid but only practical with substantial compute.

    Config literals are normally not written by hand: a
    :class:`~repro.scenarios.ScenarioSpec` names a preset plus per-section
    overrides and lowers into this class (see ``docs/scenarios.md``).
    """

    #: Active design rules; single-sourced — ``__post_init__`` re-threads
    #: them into :attr:`dataset` so legaliser, DRC and data agree.
    rules: DesignRules = field(default_factory=DesignRules)
    #: Topology-dataset shape and split (matrix size, channels, test split).
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    #: Discrete-diffusion hyper-parameters (steps, betas, loss weights).
    diffusion: DiffusionConfig = field(default_factory=DiffusionConfig)
    #: Which rule-based screens run before the legalisation solve.
    prefilter: PrefilterConfig = field(default_factory=PrefilterConfig)
    #: Base channel width of the U-Net denoiser.
    model_channels: int = 32
    #: Per-resolution channel multipliers (also sets the U-Net depth).
    channel_mult: tuple[int, ...] = (1, 2, 2)
    #: Residual blocks per U-Net resolution level.
    num_res_blocks: int = 2
    #: Spatial sizes at which the U-Net applies self-attention.
    attention_resolutions: tuple[int, ...] = (4,)
    #: Dropout rate inside the U-Net residual blocks.
    dropout: float = 0.1
    #: Default optimisation steps for :meth:`DiffPatternPipeline.train`.
    train_iterations: int = 200
    #: Training mini-batch size.
    batch_size: int = 16
    #: Chunk size of the batched sampling engine: how many topologies are
    #: denoised per reverse pass.  Purely a memory/throughput trade-off — the
    #: generated samples are identical for any value (per-sample seeding).
    sample_batch_size: int = 32
    #: Process-pool width of the legalization engine.  ``1`` legalises
    #: serially in-process; ``None`` sizes the pool to the host CPU count
    #: (capped at 8 — see ``repro.legalization.default_workers``).  Output is
    #: element-wise identical for any value (per-index seeding).
    workers: "int | None" = 1
    #: Topologies per legalization pool task; ``None`` derives a balanced
    #: default from the batch and worker count.  Never changes output values.
    legalize_chunk_size: "int | None" = None
    #: Legalisation solve strategy: ``"auto"`` tries the deterministic repair
    #: projection before falling back to SLSQP (fastest; deterministic per
    #: seed), ``"slsqp"`` always runs the full solve (bit-identical to the
    #: historical solver — the ``paper-tables`` scenario pins it).
    solver_mode: str = "auto"
    #: Route legalization chunks through the cross-topology batched path
    #: (whole-chunk repair sweeps + block-diagonal SLSQP tail — see
    #: ``docs/legalization.md``).  Output is bit-identical to the serial
    #: per-topology path in every mode, so this is a pure throughput knob;
    #: ``False`` pins the serial reference oracle.
    batch_solve: bool = True
    #: Samples pulled per streaming-generation-graph step (``None`` falls
    #: back to ``sample_batch_size``).  Bounds peak memory of a streamed
    #: ``run()``; the generated result is identical for any value.
    stream_chunk_size: "int | None" = None
    #: Denoising steps the sampler walks per sample.  ``None`` walks the
    #: full trained chain; a smaller value samples the evenly respaced
    #: few-step chain (that many U-Net evaluations per sample — see
    #: ``docs/sampling.md``).  Unlike the chunk/worker knobs this *changes
    #: the sampled values* (except at the full chain length, which is
    #: bit-identical to ``None``); the few-step quality gate in
    #: ``benchmarks/bench_fewstep_sampling.py`` bounds the cost.
    sampling_steps: "int | None" = None
    #: Base random seed: drives dataset synthesis, weight init, training
    #: order, and generation when no explicit ``rng`` is passed.
    seed: int = 0

    def __post_init__(self) -> None:
        from ..legalization import SOLVER_MODES

        if self.solver_mode not in SOLVER_MODES:
            raise ValueError(
                f"solver_mode must be one of {SOLVER_MODES}, got {self.solver_mode!r}"
            )
        if self.sampling_steps is not None and not (
            1 <= self.sampling_steps <= self.diffusion.num_steps
        ):
            raise ValueError(
                f"sampling_steps must lie in [1, {self.diffusion.num_steps}] "
                f"(the trained chain length), got {self.sampling_steps}"
            )
        if self.dataset.rules != self.rules:
            # Keep one source of truth for the rules across the pipeline.
            self.dataset = DatasetConfig(
                matrix_size=self.dataset.matrix_size,
                channels=self.dataset.channels,
                test_fraction=self.dataset.test_fraction,
                rules=self.rules,
            )

    # ------------------------------------------------------------------ #
    @property
    def tensor_size(self) -> int:
        """Spatial side of the deep-squish topology tensor."""
        return self.dataset.tensor_size

    def unet_config(self) -> UNetConfig:
        """The U-Net configuration implied by this pipeline configuration."""
        return UNetConfig(
            in_channels=self.dataset.channels,
            num_classes=self.diffusion.num_states,
            image_size=self.tensor_size,
            model_channels=self.model_channels,
            channel_mult=self.channel_mult,
            num_res_blocks=self.num_res_blocks,
            attention_resolutions=self.attention_resolutions,
            dropout=self.dropout,
            seed=self.seed,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def tiny(cls, rules: "DesignRules | None" = None) -> "DiffPatternConfig":
        """Seconds-scale configuration for tests and CI."""
        rules = rules if rules is not None else DesignRules()
        return cls(
            rules=rules,
            dataset=DatasetConfig(matrix_size=16, channels=4, rules=rules),
            diffusion=DiffusionConfig(num_steps=8, lambda_ce=0.05),
            model_channels=8,
            channel_mult=(1, 2),
            num_res_blocks=1,
            attention_resolutions=(4,),
            dropout=0.0,
            train_iterations=10,
            batch_size=8,
        )

    @classmethod
    def laptop(cls, rules: "DesignRules | None" = None) -> "DiffPatternConfig":
        """Minutes-scale configuration: the repository default for examples."""
        rules = rules if rules is not None else DesignRules()
        return cls(
            rules=rules,
            dataset=DatasetConfig(matrix_size=32, channels=16, rules=rules),
            diffusion=DiffusionConfig(num_steps=64, lambda_ce=0.01),
            model_channels=32,
            channel_mult=(1, 2, 2),
            num_res_blocks=2,
            attention_resolutions=(4,),
            dropout=0.1,
            train_iterations=300,
            batch_size=16,
        )

    @classmethod
    def paper(cls, rules: "DesignRules | None" = None) -> "DiffPatternConfig":
        """The configuration reported in Section IV-A of the paper."""
        rules = rules if rules is not None else DesignRules()
        return cls(
            rules=rules,
            dataset=DatasetConfig(matrix_size=128, channels=16, rules=rules),
            diffusion=DiffusionConfig(num_steps=1000, lambda_ce=0.001),
            model_channels=128,
            channel_mult=(1, 2, 2, 2),
            num_res_blocks=2,
            attention_resolutions=(16,),
            dropout=0.1,
            train_iterations=500_000,
            batch_size=128,
        )

"""End-to-end DiffPattern pipeline, comparison and experiment harnesses."""

from .comparison import (
    MethodRow,
    attach_reference_geometry,
    complexity_histogram,
    evaluate_baseline,
    evaluate_diffpattern,
    evaluate_real_patterns,
    format_table,
)
from .config import DiffPatternConfig
from .diffpattern import (
    DiffPatternPipeline,
    DiffPatternTopologyGenerator,
    GenerationResult,
)
from .efficiency import (
    EfficiencyReport,
    EfficiencyRow,
    StreamingMeasurement,
    measure_batch_legalization,
    measure_sampling_time,
    measure_solving_time,
    measure_streamed_generation,
    run_efficiency_experiment,
)
from .sampling_engine import SamplingEngine, SamplingReport, resolve_seed
from .stages import GenerationGraph, GenerationGraphReport, GenerationStream, StreamChunk
from .figures import (
    ComplexityComparison,
    DenoisingChain,
    RuleScenario,
    compare_complexity_distributions,
    compare_complexity_histograms,
    geometry_signatures,
    patterns_from_single_topology,
    patterns_under_rule_scenarios,
    render_pattern,
    render_topology,
    run_denoising_chain,
)

__all__ = [
    "DiffPatternConfig",
    "DiffPatternPipeline",
    "DiffPatternTopologyGenerator",
    "GenerationResult",
    "MethodRow",
    "evaluate_real_patterns",
    "evaluate_baseline",
    "evaluate_diffpattern",
    "attach_reference_geometry",
    "format_table",
    "complexity_histogram",
    "EfficiencyRow",
    "EfficiencyReport",
    "StreamingMeasurement",
    "measure_batch_legalization",
    "measure_sampling_time",
    "measure_solving_time",
    "measure_streamed_generation",
    "run_efficiency_experiment",
    "SamplingEngine",
    "SamplingReport",
    "GenerationGraph",
    "GenerationGraphReport",
    "GenerationStream",
    "StreamChunk",
    "resolve_seed",
    "DenoisingChain",
    "run_denoising_chain",
    "patterns_from_single_topology",
    "geometry_signatures",
    "RuleScenario",
    "patterns_under_rule_scenarios",
    "ComplexityComparison",
    "compare_complexity_distributions",
    "compare_complexity_histograms",
    "render_topology",
    "render_pattern",
]

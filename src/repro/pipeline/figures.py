"""Harnesses for the paper's qualitative figures (Fig. 6, 7, 8, 9).

Each function returns plain data (arrays / pattern lists) plus an ASCII
rendering helper so the benchmarks can print the same information the paper
shows graphically, without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..drc import DesignRuleChecker
from ..legalization import DesignRules, LegalizationEngine
from ..metrics import ComplexityHistogram, complexity_distribution, pattern_complexity
from ..squish import SquishPattern, unfold
from ..utils import child_rng, resolve_seed
from .diffpattern import DiffPatternPipeline


# --------------------------------------------------------------------------- #
# ASCII rendering helpers
# --------------------------------------------------------------------------- #
def render_topology(topology: np.ndarray, filled: str = "#", empty: str = ".") -> str:
    """Render a binary topology matrix as ASCII art."""
    arr = np.asarray(topology)
    return "\n".join("".join(filled if v else empty for v in row) for row in arr)


def render_pattern(pattern: SquishPattern, width: int = 48) -> str:
    """Render a squish pattern to a fixed-width ASCII raster (approximate)."""
    layout = pattern.to_layout()
    window = layout.window
    scale_x = width / max(window.width, 1)
    height = max(1, int(round(window.height * scale_x)))
    height = min(height, width)
    canvas = np.zeros((height, width), dtype=np.uint8)
    for rect in layout.all_rects():
        c1 = int((rect.x1 - window.x1) * scale_x)
        c2 = max(c1 + 1, int((rect.x2 - window.x1) * scale_x))
        r1 = int((rect.y1 - window.y1) * height / max(window.height, 1))
        r2 = max(r1 + 1, int((rect.y2 - window.y1) * height / max(window.height, 1)))
        canvas[r1:r2, c1:c2] = 1
    return render_topology(canvas)


# --------------------------------------------------------------------------- #
# Fig. 6 — denoising chain
# --------------------------------------------------------------------------- #
@dataclass
class DenoisingChain:
    """Intermediate topology matrices of one reverse-diffusion run."""

    steps: list[int]
    matrices: list[np.ndarray]

    def fill_ratios(self) -> list[float]:
        """Fraction of shape pixels at each recorded step."""
        return [float(m.mean()) for m in self.matrices]


def run_denoising_chain(
    pipeline: DiffPatternPipeline,
    chain_stride: int = 1,
    rng: "int | np.random.Generator | None" = None,
) -> DenoisingChain:
    """Sample one topology, keeping the intermediate states (Fig. 6)."""
    if pipeline.diffusion is None:
        raise RuntimeError("the pipeline has no trained diffusion model")
    _, chain = pipeline.sampling_engine().sample_chain(1, seed=rng, chain_stride=chain_stride)
    num_steps = pipeline.config.diffusion.num_steps
    steps = list(range(num_steps, -1, -chain_stride))
    steps = steps[: len(chain)]
    matrices = [unfold(state[0]) for state in chain]
    return DenoisingChain(steps=steps, matrices=matrices)


# --------------------------------------------------------------------------- #
# Fig. 7 — many legal patterns from a single topology
# --------------------------------------------------------------------------- #
def patterns_from_single_topology(
    topology: np.ndarray,
    rules: DesignRules,
    num_patterns: int = 6,
    rng: "int | np.random.Generator | None" = None,
) -> list[SquishPattern]:
    """Generate several distinct legal patterns sharing one topology (Fig. 7).

    Runs through the legalization engine for its seeding contract.  A single
    topology never shards (its solutions are sequential draws from one
    per-index stream), so this is inherently serial.
    """
    engine = LegalizationEngine(rules, workers=1)
    results = engine.legalize_batch([topology], num_solutions=num_patterns, seed=rng)
    return results[0].patterns


def geometry_signatures(patterns: list[SquishPattern]) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Hashable (delta_x, delta_y) signatures used to verify distinctness."""
    return [(tuple(p.delta_x.tolist()), tuple(p.delta_y.tolist())) for p in patterns]


# --------------------------------------------------------------------------- #
# Fig. 8 — same topology under different design rules
# --------------------------------------------------------------------------- #
@dataclass
class RuleScenario:
    """One design-rule scenario of Fig. 8 and its legalisation outcome."""

    name: str
    rules: DesignRules
    pattern: "SquishPattern | None"
    legal: bool


def patterns_under_rule_scenarios(
    topology: np.ndarray,
    scenarios: list[tuple[str, DesignRules]],
    rng: "int | np.random.Generator | None" = None,
) -> list[RuleScenario]:
    """Legalise the same topology under several rule sets without retraining.

    One single-topology engine run per scenario (each rule set needs its own
    engine); inherently serial, like :func:`patterns_from_single_topology`.
    """
    base_seed = resolve_seed(rng)
    results = []
    for index, (name, rules) in enumerate(scenarios):
        engine = LegalizationEngine(rules, workers=1)
        # Each scenario owns the stream at its position, so appending new
        # scenarios never perturbs the earlier ones' solutions (reordering
        # reassigns streams, since they are positional).
        outcome = engine.legalize_batch(
            [topology], num_solutions=1, seed=child_rng(base_seed, index)
        )[0]
        pattern = outcome.patterns[0] if outcome.solved else None
        legal = bool(pattern is not None and DesignRuleChecker(rules).is_legal(pattern))
        results.append(RuleScenario(name=name, rules=rules, pattern=pattern, legal=legal))
    return results


# --------------------------------------------------------------------------- #
# Fig. 9 — complexity distribution
# --------------------------------------------------------------------------- #
@dataclass
class ComplexityComparison:
    """Complexity distributions of the real and generated libraries."""

    real_distribution: np.ndarray
    generated_distribution: np.ndarray
    bins: int

    def overlap(self) -> float:
        """Histogram intersection in [0, 1]; higher means closer distributions."""
        return float(np.minimum(self.real_distribution, self.generated_distribution).sum())

    def mean_complexity(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """Mean (cx, cy) of each library."""
        def mean_of(dist: np.ndarray) -> tuple[float, float]:
            xs = np.arange(dist.shape[0])
            ys = np.arange(dist.shape[1])
            total = dist.sum()
            if total == 0:
                return 0.0, 0.0
            return (
                float((dist.sum(axis=1) * xs).sum() / total),
                float((dist.sum(axis=0) * ys).sum() / total),
            )

        return mean_of(self.real_distribution), mean_of(self.generated_distribution)


def compare_complexity_distributions(
    real_patterns: list[SquishPattern],
    generated_patterns: list[SquishPattern],
    bins: "int | None" = None,
) -> ComplexityComparison:
    """Build the two 2-D complexity histograms of Fig. 9."""
    real = [pattern_complexity(p) for p in real_patterns]
    generated = [pattern_complexity(p) for p in generated_patterns]
    if bins is None:
        largest = max(max((c for pair in real + generated for c in pair), default=0) + 1, 2)
        bins = largest
    real_dist, _, _ = complexity_distribution(real, bins=bins)
    generated_dist, _, _ = complexity_distribution(generated, bins=bins)
    return ComplexityComparison(
        real_distribution=real_dist, generated_distribution=generated_dist, bins=bins
    )


def compare_complexity_histograms(
    real: ComplexityHistogram,
    generated: ComplexityHistogram,
    bins: "int | None" = None,
) -> ComplexityComparison:
    """Fig. 9 comparison from streaming accumulators instead of pattern lists.

    A streamed run (or a resumed :class:`~repro.library.PatternLibrary`)
    carries :class:`~repro.metrics.ComplexityHistogram` accumulators; this
    builds the same two 2-D distributions without materialising the pattern
    libraries, and matches :func:`compare_complexity_distributions` exactly
    on the same complexity multisets.
    """
    if bins is None:
        largest = max(real.max_coordinate(), generated.max_coordinate(), 0)
        bins = max(largest + 1, 2)
    real_dist, _, _ = real.distribution(bins=bins)
    generated_dist, _, _ = generated.distribution(bins=bins)
    return ComplexityComparison(
        real_distribution=real_dist, generated_distribution=generated_dist, bins=bins
    )

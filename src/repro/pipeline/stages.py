"""Streaming generation stage graph: sample → prefilter → legalize → DRC.

:class:`GenerationGraph` replaces the barrier orchestration of the original
``DiffPatternPipeline.run`` (materialise *every* sample, then prefilter all
of them, then legalise all of them, then compute metrics once) with a pull
pipeline over fixed-size chunks:

.. code-block:: text

    SamplingEngine ──chunk──▶ unfold ──▶ TopologyPrefilter ──kept──▶
        LegalizationEngine ──patterns──▶ DesignRuleChecker ──▶
            incremental accumulators (+ optional PatternLibrary shard)

Each chunk flows through every stage before the next chunk is sampled, so

* peak memory is bounded by the chunk size, not the run size (pass
  ``retain_topologies=False`` to also drop the raw matrices),
* legalisation starts after the first chunk instead of after the last, and
* a run wired to a :class:`~repro.library.PatternLibrary` persists every
  completed chunk and can be killed and resumed from the manifest.

**Parity contract.**  Both engines seed every element index independently
(``SeedSequence(seed, index)``) and accept a ``first_index`` stream offset,
and the metric accumulators (:class:`~repro.metrics.ComplexityHistogram`,
integer legality counters) reproduce the batch formulas exactly — so the
streamed :class:`~repro.pipeline.GenerationResult` is element-wise identical
to the monolithic run for *any* chunk size and worker count: same patterns,
same diversity H bit for bit, same legality.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..drc import DesignRuleChecker
from ..faults import declare_fault_points, fault_point
from ..legalization import LegalizationEngine, LegalizationReport, LegalizationStats
from ..library import ChunkRecord, PatternLibrary
from ..metrics import ComplexityHistogram, pattern_complexity, topology_complexity
from ..prefilter import TopologyPrefilter
from ..squish import SquishPattern, unfold
from ..utils import resolve_seed
from .diffpattern import GenerationResult
from .sampling_engine import SamplingEngine, SamplingReport

__all__ = ["GenerationGraph", "GenerationGraphReport", "GenerationStream", "StreamChunk"]

declare_fault_points("stream:advance")


def _references_digest(references: "list[tuple[np.ndarray, np.ndarray]]") -> str:
    """Stable digest of a warm-start reference-geometry library.

    The references steer the legaliser's ``Solving-E`` targets, so two runs
    with different libraries produce different patterns — the digest makes
    that visible to the resume fingerprint.
    """
    digest = hashlib.sha1()
    digest.update(str(len(references)).encode())
    for pair in references:
        for vector in pair:
            arr = np.ascontiguousarray(np.asarray(vector, dtype=np.float64))
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
    return digest.hexdigest()


@dataclass
class GenerationGraphReport:
    """Per-stage accounting of one streamed generation run."""

    num_requested: int
    chunk_size: int
    num_chunks: int
    chunks_live: int = 0
    chunks_resumed: int = 0
    total_seconds: float = 0.0
    prefilter_seconds: float = 0.0
    drc_seconds: float = 0.0
    #: Merged engine reports; cover only the chunks generated live (resumed
    #: chunks replay their stored solver statistics but not wall-clock).
    sampling_report: "SamplingReport | None" = field(default=None, repr=False)
    legalization_report: "LegalizationReport | None" = field(default=None, repr=False)

    def format(self) -> str:
        lines = [
            f"chunks             {self.num_chunks} x <= {self.chunk_size} "
            f"({self.chunks_live} generated, {self.chunks_resumed} resumed)",
            f"total              {self.total_seconds:.4f} s "
            f"(prefilter {self.prefilter_seconds:.4f} s, DRC {self.drc_seconds:.4f} s)",
        ]
        if self.sampling_report is not None:
            lines += ["", "sampling stage:", self.sampling_report.format()]
        if self.legalization_report is not None:
            lines += ["", "legalization stage:", self.legalization_report.format()]
        return "\n".join(lines)


class _Accumulators:
    """Streaming state folded chunk by chunk (or from resumed records)."""

    def __init__(self, retain_topologies: bool) -> None:
        self.retain_topologies = retain_topologies
        self.topology_chunks: list[np.ndarray] = []
        self.kept_topologies: list[np.ndarray] = []
        self.patterns: list[SquishPattern] = []
        self.topology_histogram = ComplexityHistogram()
        self.pattern_histogram = ComplexityHistogram()
        self.num_sampled = 0
        self.num_kept = 0
        self.num_rejected = 0
        self.unsolved = 0
        self.num_patterns = 0
        self.num_clean = 0

    # -- formulas identical to the batch path -------------------------- #
    @property
    def prefilter_reject_rate(self) -> float:
        total = self.num_kept + self.num_rejected
        if not total:
            return 0.0
        return 1.0 - self.num_kept / total

    @property
    def topology_diversity(self) -> float:
        return self.topology_histogram.diversity() if self.num_sampled else 0.0

    @property
    def pattern_diversity(self) -> float:
        return self.pattern_histogram.diversity() if self.num_patterns else 0.0

    @property
    def legality(self) -> float:
        return float(self.num_clean) / self.num_patterns if self.num_patterns else 0.0

    def topologies_array(self) -> np.ndarray:
        if not self.topology_chunks:
            return np.empty((0, 0, 0), dtype=np.uint8)
        if len(self.topology_chunks) == 1:
            return np.asarray(self.topology_chunks[0])
        return np.concatenate(self.topology_chunks, axis=0)


@dataclass
class StreamChunk:
    """Everything one completed graph chunk produced, with per-sample attribution.

    Produced by :meth:`GenerationStream.advance`.  Beyond the aggregate
    accounting the batch path needs, every pattern carries the absolute
    sample index it descends from (:attr:`pattern_sources`), so a consumer
    sharing one stream between several clients — the ``repro serve``
    cross-request batcher — can route each pattern to the request window
    that owns its sample.
    """

    #: Sequential chunk index within the stream.
    chunk: int
    #: Absolute sample index of the chunk's first sample.
    start: int
    #: Number of samples pulled for this chunk.
    size: int
    #: Raw unfolded topology matrices, shape ``(size, H, W)``.
    matrices: np.ndarray = field(repr=False)
    #: Absolute sample indices that survived the prefilter, in order.
    kept_indices: list[int]
    #: The surviving topology matrices (aligned with :attr:`kept_indices`).
    kept: list[np.ndarray] = field(repr=False)
    num_rejected: int
    #: One ``LegalizedTopology`` per kept topology (aligned with
    #: :attr:`kept_indices`); unsolved entries carry no patterns.
    results: list = field(repr=False)
    #: Every legal pattern the chunk produced, before any dedup planning.
    chunk_patterns: list[SquishPattern] = field(repr=False)
    #: The patterns the caller keeps (identical to :attr:`chunk_patterns`
    #: unless a deduplicating library planned some away).
    patterns: list[SquishPattern] = field(repr=False)
    #: Absolute source sample index per entry of :attr:`patterns`.
    pattern_sources: list[int]
    #: DRC verdict per entry of :attr:`patterns`.
    clean_mask: np.ndarray = field(repr=False)
    num_clean: int
    topology_histogram: ComplexityHistogram = field(repr=False)
    pattern_histogram: ComplexityHistogram = field(repr=False)
    #: Chunk-local engine reports (the graph merges them into its aggregate).
    sampling_report: SamplingReport = field(repr=False)
    legalization_report: LegalizationReport = field(repr=False)
    prefilter_seconds: float = 0.0
    drc_seconds: float = 0.0

    @property
    def end(self) -> int:
        """One past the last absolute sample index of the chunk."""
        return self.start + self.size

    @property
    def num_kept(self) -> int:
        """Topologies that survived the prefilter in this chunk."""
        return len(self.kept)

    @property
    def unsolved(self) -> int:
        """Kept topologies for which no legal geometry was found."""
        return sum(1 for result in self.results if not result.solved)


class GenerationStream:
    """Incremental pull handle over a :class:`GenerationGraph`.

    Where :meth:`GenerationGraph.run` walks a fixed number of samples to
    completion, a stream advances the same stage pipeline chunk by chunk on
    demand — :meth:`advance` pulls the next ``size`` samples through
    sample → prefilter → legalize → DRC and returns the fully-attributed
    :class:`StreamChunk`.  The ``repro serve`` daemon drives one stream per
    scenario identity, growing it with whatever batch the coalesced demand
    of the moment calls for.

    The determinism contract is untouched: samples are owned by their
    absolute index (``SeedSequence(sample_seed, index)``), the legalization
    offset is the number of previously *kept* topologies, and chunk
    boundaries never change a value — any sequence of ``advance`` sizes
    covering ``[0, N)`` yields results element-wise identical to one
    monolithic ``run(N)`` under the same seeds.

    Obtain instances through :meth:`GenerationGraph.open_stream`; the two
    base seeds are resolved there exactly as ``run`` resolves them.
    """

    def __init__(self, graph: "GenerationGraph", sample_seed: int, legal_seed: int) -> None:
        self.graph = graph
        self.sample_seed = int(sample_seed)
        self.legal_seed = int(legal_seed)
        #: Absolute sample index the next chunk starts at.
        self.next_start = 0
        #: Sequential index assigned to the next chunk.
        self.next_chunk = 0
        #: Topologies kept by the prefilter so far — the ``first_index``
        #: stream offset handed to the legalization engine.
        self.num_kept = 0

    def advance(self, size: int) -> StreamChunk:
        """Pull the next ``size`` samples through every stage.

        Returns
        -------
        StreamChunk
            The completed chunk, with per-pattern source attribution.

        Raises
        ------
        ValueError
            If ``size`` < 1.
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        # Counters mutate only after the chunk is fully built (below), so a
        # crash here — or anywhere inside the stage walk — leaves the stream
        # exactly at the pre-call frontier: a retried advance reproduces the
        # same chunk bit for bit.
        fault_point("stream:advance")
        graph = self.graph
        start = self.next_start
        tensors, sampling_report = graph.sampling_engine.sample_with_report(
            size, seed=self.sample_seed, first_index=start
        )
        matrices = np.stack([unfold(t) for t in tensors], axis=0)

        tic = time.perf_counter()
        kept: list[np.ndarray] = []
        kept_indices: list[int] = []
        num_rejected = 0
        for offset, matrix in enumerate(matrices):
            if graph.prefilter.reject_reason(matrix) is None:
                kept.append(np.asarray(matrix, dtype=np.uint8))
                kept_indices.append(start + offset)
            else:
                num_rejected += 1
        prefilter_seconds = time.perf_counter() - tic

        # The stream offset is the number of topologies that survived the
        # prefilter in *earlier* chunks: kept topology k owns the stream
        # (legal_seed, k) exactly as in the monolithic batch call.
        results, legalization_report = graph.legalization_engine.legalize_batch_with_report(
            kept,
            num_solutions=graph.num_solutions,
            seed=self.legal_seed,
            first_index=self.num_kept,
        )

        chunk_patterns: list[SquishPattern] = []
        sources: list[int] = []
        for index, result in zip(kept_indices, results):
            chunk_patterns.extend(result.patterns)
            sources.extend([index] * len(result.patterns))
        # With a deduplicating library, the chunk (and every metric on it)
        # describes exactly the patterns that are kept — otherwise legality
        # and diversity would be computed over patterns the caller never
        # sees.  Without dedup (the default) every produced pattern is kept,
        # which is what the batch-parity contract requires.
        if graph.library is not None and graph.library.dedup:
            keep = graph.library.plan_chunk(chunk_patterns)
            patterns = [p for p, flag in zip(chunk_patterns, keep) if flag]
            pattern_sources = [s for s, flag in zip(sources, keep) if flag]
        else:
            patterns = chunk_patterns
            pattern_sources = sources

        tic = time.perf_counter()
        clean_mask = (
            np.asarray(graph.checker.legality_mask(patterns), dtype=bool)
            if patterns
            else np.zeros(0, dtype=bool)
        )
        drc_seconds = time.perf_counter() - tic

        chunk = StreamChunk(
            chunk=self.next_chunk,
            start=start,
            size=size,
            matrices=matrices,
            kept_indices=kept_indices,
            kept=kept,
            num_rejected=num_rejected,
            results=results,
            chunk_patterns=chunk_patterns,
            patterns=patterns,
            pattern_sources=pattern_sources,
            clean_mask=clean_mask,
            num_clean=int(clean_mask.sum()),
            topology_histogram=ComplexityHistogram(
                [topology_complexity(m) for m in matrices]
            ),
            pattern_histogram=ComplexityHistogram(
                [pattern_complexity(p) for p in patterns]
            ),
            sampling_report=sampling_report,
            legalization_report=legalization_report,
            prefilter_seconds=prefilter_seconds,
            drc_seconds=drc_seconds,
        )
        self.next_start += size
        self.next_chunk += 1
        self.num_kept += len(kept)
        return chunk

    def skip_record(self, record: ChunkRecord) -> None:
        """Advance the stream counters over one resumed (already-stored) chunk.

        The chunk's samples are never re-generated; only the index frontier,
        chunk counter and legalization offset move, so the chunks that follow
        stay bit-identical to the uninterrupted run.
        """
        self.next_start += record.num_sampled
        self.next_chunk += 1
        self.num_kept += record.num_kept


class GenerationGraph:
    """Chunked streaming orchestration of the three DiffPattern phases.

    Parameters
    ----------
    sampling_engine / prefilter / legalization_engine / checker:
        The stage implementations (the pipeline wires its own).
    chunk_size:
        Samples pulled per graph step.  A pure memory/latency knob — output
        is element-wise identical for any value.
    num_solutions:
        Geometric solutions per kept topology (DiffPattern-S/L).
    retain_topologies:
        Keep the raw/kept topology matrices on the result.  Disable for
        bounded-memory production runs; metrics are unaffected (they are
        accumulated incrementally either way).
    library:
        Optional :class:`~repro.library.PatternLibrary`.  Every completed
        chunk is persisted (shard + manifest record); with ``resume=True``
        chunks already in the manifest are folded from disk instead of
        re-generated.  A library opened with ``writer=<id>`` appends under
        the shared library lock, so several graphs (or serve workers) can
        grow one library concurrently — each run resumes against its own
        writer ledger.
    on_chunk:
        Optional callback invoked with each live :class:`StreamChunk` right
        after it has been folded into the run (and, when a library is
        attached, after the chunk's shard has been committed).  Resumed
        chunks do not fire it — their samples were never re-generated.  This
        is the hook the serving layer uses to stream per-chunk results to
        waiting requests.
    """

    def __init__(
        self,
        sampling_engine: SamplingEngine,
        prefilter: TopologyPrefilter,
        legalization_engine: LegalizationEngine,
        checker: DesignRuleChecker,
        chunk_size: int = 32,
        num_solutions: int = 1,
        retain_topologies: bool = True,
        library: "PatternLibrary | None" = None,
        on_chunk: "callable | None" = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if num_solutions < 1:
            raise ValueError("num_solutions must be >= 1")
        self.sampling_engine = sampling_engine
        self.prefilter = prefilter
        self.legalization_engine = legalization_engine
        self.checker = checker
        self.chunk_size = int(chunk_size)
        self.num_solutions = int(num_solutions)
        self.retain_topologies = bool(retain_topologies)
        self.library = library
        self.on_chunk = on_chunk
        self.last_report: "GenerationGraphReport | None" = None

    # ------------------------------------------------------------------ #
    def open_stream(self, seed: "int | np.random.Generator | None" = 0) -> GenerationStream:
        """Open an incremental :class:`GenerationStream` over this graph.

        Resolves the two base seeds exactly as :meth:`run` does — one draw
        for the sampling stage, then a second for legalization — so a stream
        advanced over ``[0, N)`` in any chunking matches ``run(N, seed)``
        element for element.
        """
        sample_seed = resolve_seed(seed)
        legal_seed = resolve_seed(seed)
        return GenerationStream(self, sample_seed, legal_seed)

    # ------------------------------------------------------------------ #
    def fingerprint(self, num_samples: int, sample_seed: int, legal_seed: int) -> dict:
        """The resume-safety identity of a run.

        Covers the seeds, the shape-changing knobs, the active design rules /
        prefilter configuration and the warm-start reference library —
        resuming under different rules or references would silently mix
        incompatibly-legalised chunks.  Model weights are *not*
        fingerprinted: reload the same checkpoint before resuming (the
        per-index seeding makes any weight change visibly alter the output,
        but the manifest cannot detect it).
        """
        return {
            "num_samples": int(num_samples),
            "sample_seed": int(sample_seed),
            "legal_seed": int(legal_seed),
            # The respaced step count changes the sampled values (unlike the
            # chunk/worker knobs), so resuming under a different schedule
            # must be rejected.
            "sampling_steps": self.sampling_engine.steps,
            "chunk_size": self.chunk_size,
            "num_solutions": self.num_solutions,
            "rules": repr(self.legalization_engine.rules),
            "prefilter": repr(self.prefilter.config),
            "references": _references_digest(self.legalization_engine.reference_geometries),
        }

    # ------------------------------------------------------------------ #
    def run(
        self,
        num_samples: int,
        seed: "int | np.random.Generator | None" = 0,
        resume: bool = False,
        stop_after_chunks: "int | None" = None,
    ) -> GenerationResult:
        """Stream ``num_samples`` topologies through the full graph.

        ``seed`` follows the pipeline convention: the sampling stage resolves
        one base seed from it, then the legalization stage resolves a second
        — the exact draws the batch path makes, so batch and streamed runs
        coincide.  ``stop_after_chunks`` ends the run early after that many
        chunks (the "kill" half of the resume tests and of incremental
        library building); the returned result covers only the completed
        chunks.

        A resumed result carries no raw ``topologies`` / ``kept_topologies``
        (the matrices of resumed chunks were never persisted and a partial
        array would misrepresent the run); patterns, reports and metrics
        still cover every chunk.

        Returns
        -------
        GenerationResult
            Element-wise identical to the monolithic batch run for any
            chunk size and worker count (the parity contract above).

        Raises
        ------
        ValueError
            If ``num_samples`` < 1.
        repro.library.LibraryError
            If the attached library's fingerprint does not match this run,
            or it holds completed chunks and ``resume`` is not set.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        sample_seed = resolve_seed(seed)
        legal_seed = resolve_seed(seed)

        starts = list(range(0, num_samples, self.chunk_size))
        report = GenerationGraphReport(
            num_requested=num_samples,
            chunk_size=self.chunk_size,
            num_chunks=len(starts),
        )
        resumed: dict[int, ChunkRecord] = {}
        if self.library is not None:
            records = self.library.bind(
                self.fingerprint(num_samples, sample_seed, legal_seed), resume=resume
            )
            resumed = {record.chunk: record for record in records}

        acc = _Accumulators(self.retain_topologies)
        resumed_stats = LegalizationStats()
        stream = GenerationStream(self, sample_seed, legal_seed)
        start_total = time.perf_counter()
        # One process pool for the whole run (no-op at workers=1): without it
        # a streamed run would pay pool startup — and re-ship the reference
        # library to every worker — once per chunk instead of once.
        with self.legalization_engine.pool():
            for chunk_index, start in enumerate(starts):
                if stop_after_chunks is not None and chunk_index >= stop_after_chunks:
                    break
                size = min(self.chunk_size, num_samples - start)
                if chunk_index in resumed:
                    self._fold_record(resumed[chunk_index], acc, resumed_stats)
                    stream.skip_record(resumed[chunk_index])
                    report.chunks_resumed += 1
                    continue
                chunk = stream.advance(size)
                self._fold_chunk(chunk, acc, report)
                report.chunks_live += 1
                if self.on_chunk is not None:
                    self.on_chunk(chunk)
        report.total_seconds = time.perf_counter() - start_total

        if report.chunks_resumed:
            # Raw matrices of resumed chunks were never persisted; a partial
            # topologies array would silently misrepresent the run, so a
            # resumed result carries none (patterns and metrics still cover
            # every chunk).
            acc.topology_chunks = []
            acc.kept_topologies = []

        legalization_report = report.legalization_report
        if resumed_stats.attempted:
            # Solver statistics of resumed chunks replay from the manifest so
            # the merged stats cover the whole library, not just live chunks.
            if legalization_report is None:
                legalization_report = LegalizationReport(
                    num_topologies=0,
                    num_solutions=self.num_solutions,
                    workers=self.legalization_engine.workers,
                    chunk_size=self.chunk_size,
                    num_chunks=0,
                )
                report.legalization_report = legalization_report
            legalization_report.stats.merge(resumed_stats)
            legalization_report.solver_seconds = legalization_report.stats.total_solver_time

        self.last_report = report
        return GenerationResult(
            topologies=acc.topologies_array(),
            kept_topologies=acc.kept_topologies,
            prefilter_reject_rate=acc.prefilter_reject_rate,
            patterns=acc.patterns,
            unsolved=acc.unsolved,
            topology_diversity=acc.topology_diversity,
            pattern_diversity=acc.pattern_diversity,
            legality=acc.legality,
            legalization_report=report.legalization_report,
            sampling_report=report.sampling_report,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _fold_chunk(
        self,
        chunk: StreamChunk,
        acc: _Accumulators,
        report: GenerationGraphReport,
    ) -> None:
        """Fold one live :class:`StreamChunk` into ``acc`` and ``report``."""
        if report.sampling_report is None:
            report.sampling_report = chunk.sampling_report
        else:
            report.sampling_report.merge(chunk.sampling_report)
        if report.legalization_report is None:
            report.legalization_report = chunk.legalization_report
        else:
            report.legalization_report.merge(chunk.legalization_report)
        report.prefilter_seconds += chunk.prefilter_seconds
        report.drc_seconds += chunk.drc_seconds

        acc.num_sampled += chunk.size
        acc.num_kept += len(chunk.kept)
        acc.num_rejected += chunk.num_rejected
        acc.unsolved += chunk.unsolved
        acc.num_patterns += len(chunk.patterns)
        acc.num_clean += chunk.num_clean
        acc.topology_histogram.merge(chunk.topology_histogram)
        acc.pattern_histogram.merge(chunk.pattern_histogram)
        if acc.retain_topologies:
            acc.topology_chunks.append(chunk.matrices)
            acc.kept_topologies.extend(chunk.kept)

        stored = chunk.patterns
        if self.library is not None:
            record = ChunkRecord(
                chunk=chunk.chunk,
                start=chunk.start,
                num_sampled=chunk.size,
                num_kept=len(chunk.kept),
                num_rejected=chunk.num_rejected,
                unsolved=chunk.unsolved,
                num_patterns=len(chunk.chunk_patterns),
                num_stored=0,
                duplicates_skipped=0,
                num_clean=chunk.num_clean,
                shard=None,
                topology_complexity_counts=chunk.topology_histogram.as_records(),
                pattern_complexity_counts=chunk.pattern_histogram.as_records(),
                stats={
                    "attempted": chunk.legalization_report.stats.attempted,
                    "solved": chunk.legalization_report.stats.solved,
                    "failed": chunk.legalization_report.stats.failed,
                    "solutions": chunk.legalization_report.stats.solutions,
                    "total_iterations": chunk.legalization_report.stats.total_iterations,
                    "total_solver_time": chunk.legalization_report.stats.total_solver_time,
                },
            )
            stored = self.library.append_chunk(record, chunk.chunk_patterns)
        acc.patterns.extend(stored)

    def _fold_record(
        self,
        record: ChunkRecord,
        acc: _Accumulators,
        resumed_stats: LegalizationStats,
    ) -> None:
        """Fold one already-completed chunk (manifest + shard) into ``acc``."""
        acc.num_sampled += record.num_sampled
        acc.num_kept += record.num_kept
        acc.num_rejected += record.num_rejected
        acc.unsolved += record.unsolved
        acc.num_patterns += record.num_stored
        acc.num_clean += record.num_clean
        acc.topology_histogram.merge(
            ComplexityHistogram.from_records(record.topology_complexity_counts)
        )
        acc.pattern_histogram.merge(
            ComplexityHistogram.from_records(record.pattern_complexity_counts)
        )
        acc.patterns.extend(self.library.load_record_patterns(record))
        stats = record.stats
        if stats:
            resumed_stats.merge(
                LegalizationStats(
                    attempted=int(stats.get("attempted", 0)),
                    solved=int(stats.get("solved", 0)),
                    failed=int(stats.get("failed", 0)),
                    total_solver_time=float(stats.get("total_solver_time", 0.0)),
                    total_iterations=int(stats.get("total_iterations", 0)),
                    solutions=int(stats.get("solutions", 0)),
                )
            )

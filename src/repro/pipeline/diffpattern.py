"""End-to-end DiffPattern pipeline (Fig. 4 of the paper).

Chains the three phases of the framework:

1. **Deep Squish Pattern Representation** — dataset patterns are padded to a
   fixed matrix size and folded into topology tensors.
2. **Topology Tensor Generation** — a discrete diffusion model is trained on
   the tensors and sampled to produce fresh topologies.
3. **2D Legal Pattern Assessment** — generated topologies are pre-filtered and
   legalised under the active design rules, yielding the final pattern
   library together with diversity / legality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import TopologyGenerator
from ..data import LayoutPatternDataset
from ..diffusion import DiscreteDiffusion
from ..drc import DesignRuleChecker
from ..legalization import LegalizationEngine, LegalizationReport, SolverOptions
from ..metrics import pattern_diversity, topology_diversity
from ..nn import UNet
from ..prefilter import TopologyPrefilter
from ..squish import SquishPattern, unfold
from ..utils import as_rng
from .config import DiffPatternConfig
from .sampling_engine import SamplingEngine, SamplingReport


@dataclass
class GenerationResult:
    """Everything produced by one generation run."""

    topologies: np.ndarray                       # raw generated matrices (N, H, W)
    kept_topologies: list[np.ndarray] = field(default_factory=list)
    prefilter_reject_rate: float = 0.0
    patterns: list[SquishPattern] = field(default_factory=list)
    unsolved: int = 0
    topology_diversity: float = 0.0
    pattern_diversity: float = 0.0
    legality: float = 0.0
    #: Throughput / statistics of the legalization engine run that produced
    #: ``patterns``.
    legalization_report: "LegalizationReport | None" = field(default=None, repr=False)
    #: Throughput of the sampling engine run that produced ``topologies``
    #: (``None`` for assessment-only results, e.g. :meth:`DiffPatternPipeline.legalize`).
    sampling_report: "SamplingReport | None" = field(default=None, repr=False)

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)


class DiffPatternPipeline:
    """Train-and-generate orchestration for the DiffPattern framework."""

    def __init__(self, config: "DiffPatternConfig | None" = None) -> None:
        self.config = config if config is not None else DiffPatternConfig()
        self.dataset: "LayoutPatternDataset | None" = None
        self.diffusion: "DiscreteDiffusion | None" = None
        self.prefilter = TopologyPrefilter(self.config.prefilter)
        self.checker = DesignRuleChecker(self.config.rules)
        self.training_history: list[dict[str, float]] = []
        self._engine: "SamplingEngine | None" = None
        self._engine_key: "tuple | None" = None
        self._sampling_report: "SamplingReport | None" = None
        self._legalization_report: "LegalizationReport | None" = None
        self._legalization_engine: "LegalizationEngine | None" = None
        self._legalization_engine_key: "tuple | None" = None
        self._legalization_engine_dataset: "LayoutPatternDataset | None" = None

    # ------------------------------------------------------------------ #
    # phase 1: data
    # ------------------------------------------------------------------ #
    def prepare_data(
        self,
        num_patterns: int = 200,
        dataset: "LayoutPatternDataset | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> LayoutPatternDataset:
        """Synthesize (or adopt) the training dataset.

        Parameters
        ----------
        num_patterns:
            Library size to synthesize; ignored when ``dataset`` is given.
        dataset:
            An already-built dataset to adopt instead of synthesizing.
        rng:
            Seed or generator for synthesis (``config.seed`` by default).

        Returns
        -------
        LayoutPatternDataset
            The dataset now bound to the pipeline (also at :attr:`dataset`).
        """
        if dataset is not None:
            self.dataset = dataset
        else:
            self.dataset = LayoutPatternDataset.synthesize(
                num_patterns, self.config.dataset, rng=rng if rng is not None else self.config.seed
            )
        return self.dataset

    # ------------------------------------------------------------------ #
    # phase 2: diffusion training / sampling
    # ------------------------------------------------------------------ #
    def build_model(self) -> DiscreteDiffusion:
        """Instantiate the diffusion generator (fresh U-Net weights)."""
        self.diffusion = DiscreteDiffusion(UNet(self.config.unet_config()), self.config.diffusion)
        return self.diffusion

    def train(
        self,
        iterations: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
    ) -> list[dict[str, float]]:
        """Train the diffusion model on the prepared dataset.

        Parameters
        ----------
        iterations:
            Optimisation steps (``config.train_iterations`` by default).
        rng:
            Seed or generator driving batching and noise draws.

        Returns
        -------
        list[dict[str, float]]
            Per-logging-step loss history of this call (also appended to
            :attr:`training_history`).

        Raises
        ------
        RuntimeError
            If :meth:`prepare_data` has not been called.
        """
        if self.dataset is None:
            raise RuntimeError("prepare_data must be called before train")
        if self.diffusion is None:
            self.build_model()
        tensors = self.dataset.topology_tensors("train")
        history = self.diffusion.fit(
            tensors,
            iterations=iterations if iterations is not None else self.config.train_iterations,
            batch_size=self.config.batch_size,
            rng=rng if rng is not None else self.config.seed,
        )
        self.training_history.extend(history)
        return history

    def sampling_engine(self) -> SamplingEngine:
        """The batched inference engine over the pipeline's diffusion model.

        Built lazily and rebuilt if the underlying model is replaced (e.g. by
        :meth:`build_model` after a checkpoint load) or a sampler knob
        (:attr:`DiffPatternConfig.sample_batch_size`,
        :attr:`DiffPatternConfig.sampling_steps`) changes.  The engine walks
        the full chain unless ``sampling_steps`` asks for a respaced
        few-step schedule.

        Raises
        ------
        RuntimeError
            If no diffusion model exists yet (call :meth:`train` or
            :meth:`build_model` first).
        """
        if self.diffusion is None:
            raise RuntimeError("train (or build_model) must be called before sampling")
        key = (self.config.sample_batch_size, self.config.sampling_steps)
        if (
            self._engine is None
            or self._engine.diffusion is not self.diffusion
            or self._engine_key != key
        ):
            self._engine = SamplingEngine(
                self.diffusion,
                batch_size=self.config.sample_batch_size,
                steps=self.config.sampling_steps,
            )
            self._engine_key = key
        return self._engine

    @property
    def last_sampling_report(self) -> "SamplingReport | None":
        """Per-phase throughput of the most recent generation run.

        For a streamed run this is the aggregate over every chunk (the
        engine's own ``last_report`` only covers the final chunk).
        """
        if self._sampling_report is not None:
            return self._sampling_report
        return self._engine.last_report if self._engine is not None else None

    def generate_topologies(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        """Sample topology tensors and unfold them into flat matrices.

        Returns
        -------
        numpy.ndarray
            ``(count, H, W)`` binary topology matrices, element-wise
            identical for any engine batch size (per-index seeding).
        """
        engine = self.sampling_engine()
        tensors = engine.sample(count, seed=rng)
        self._sampling_report = engine.last_report
        return np.stack([unfold(t) for t in tensors], axis=0)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def save_model(self, path) -> None:
        """Save the trained U-Net weights to an ``.npz`` checkpoint.

        Raises
        ------
        RuntimeError
            If no model exists (call :meth:`train` or :meth:`build_model`).
        """
        if self.diffusion is None:
            raise RuntimeError("there is no model to save; call train or build_model first")
        from ..nn import save_checkpoint

        save_checkpoint(self.diffusion.model, path)

    def load_model(self, path) -> None:
        """Load U-Net weights saved by :meth:`save_model`.

        The pipeline configuration must match the checkpoint's architecture;
        a shape mismatch raises immediately instead of silently degrading.
        """
        from ..nn import load_checkpoint

        if self.diffusion is None:
            self.build_model()
        load_checkpoint(self.diffusion.model, path)
        # A loaded model counts as trained for the purposes of run().
        if not self.training_history:
            self.training_history.append({"loss": float("nan"), "iteration": -1.0})

    # ------------------------------------------------------------------ #
    # phase 3: assessment
    # ------------------------------------------------------------------ #
    def legalization_engine(
        self,
        use_reference_geometries: bool = True,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
    ) -> LegalizationEngine:
        """A legalization engine configured for this pipeline.

        ``workers`` / ``chunk_size`` default to the config knobs
        (:attr:`DiffPatternConfig.workers`,
        :attr:`DiffPatternConfig.legalize_chunk_size`).  The engine is
        cached until the dataset or a knob changes, so repeated legalise
        calls skip re-extracting the reference geometries from the dataset
        (the engine itself re-buckets them once per batch call).
        """
        workers = workers if workers is not None else self.config.workers
        chunk_size = (
            chunk_size if chunk_size is not None else self.config.legalize_chunk_size
        )
        # The dataset is compared by identity (and retained, so a freed
        # object's address can never alias it); dataclass equality would
        # compare whole pattern arrays.
        key = (
            use_reference_geometries,
            workers,
            chunk_size,
            self.config.solver_mode,
            self.config.batch_solve,
        )
        if (
            self._legalization_engine is None
            or self._legalization_engine_dataset is not self.dataset
            or self._legalization_engine_key != key
        ):
            references = (
                self.dataset.reference_geometries("train")
                if (use_reference_geometries and self.dataset is not None)
                else None
            )
            self._legalization_engine = LegalizationEngine(
                self.config.rules,
                reference_geometries=references,
                options=SolverOptions(
                    solver_mode=self.config.solver_mode,
                    batch_solve=self.config.batch_solve,
                ),
                workers=workers,
                chunk_size=chunk_size,
            )
            self._legalization_engine_key = key
            self._legalization_engine_dataset = self.dataset
        return self._legalization_engine

    @property
    def last_legalization_report(self) -> "LegalizationReport | None":
        """Per-phase throughput of the most recent legalisation run."""
        return self._legalization_report

    def legalize(
        self,
        topologies: np.ndarray,
        num_solutions: int = 1,
        use_reference_geometries: bool = True,
        rng: "int | np.random.Generator | None" = None,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
    ) -> GenerationResult:
        """Pre-filter and legalise generated topologies into a pattern library.

        ``num_solutions=1`` is DiffPattern-S; larger values give DiffPattern-L.
        The batch is sharded across ``workers`` processes (config default);
        results are element-wise identical for any worker count / chunk size.

        Returns
        -------
        GenerationResult
            Patterns plus diversity / legality metrics and the
            legalization report (no sampling report: the topologies were
            supplied, not sampled here).
        """
        filtered = self.prefilter.filter(list(topologies))
        engine = self.legalization_engine(
            use_reference_geometries=use_reference_geometries,
            workers=workers,
            chunk_size=chunk_size,
        )
        results, report = engine.legalize_batch_with_report(
            filtered.kept, num_solutions=num_solutions, seed=rng
        )
        self._legalization_report = report
        patterns = [p for r in results for p in r.patterns]
        unsolved = sum(1 for r in results if not r.solved)
        result = GenerationResult(
            topologies=np.asarray(topologies),
            kept_topologies=filtered.kept,
            prefilter_reject_rate=filtered.reject_rate,
            patterns=patterns,
            unsolved=unsolved,
            topology_diversity=topology_diversity(list(topologies)) if len(topologies) else 0.0,
            pattern_diversity=pattern_diversity(patterns) if patterns else 0.0,
            legality=self.checker.legality_rate(patterns) if patterns else 0.0,
            legalization_report=report,
        )
        return result

    # ------------------------------------------------------------------ #
    # streaming generation graph
    # ------------------------------------------------------------------ #
    def generation_graph(
        self,
        chunk_size: "int | None" = None,
        num_solutions: int = 1,
        workers: "int | None" = None,
        legalize_chunk_size: "int | None" = None,
        retain_topologies: bool = True,
        library=None,
        on_chunk=None,
    ):
        """A :class:`~repro.pipeline.GenerationGraph` over this pipeline's stages.

        ``chunk_size`` defaults to :attr:`DiffPatternConfig.stream_chunk_size`
        (falling back to ``sample_batch_size``); it only bounds peak memory —
        the generated result is element-wise identical for any value.
        ``on_chunk`` is forwarded to the graph: a callback fired with each
        live :class:`~repro.pipeline.StreamChunk` as it completes.
        """
        from .stages import GenerationGraph

        if chunk_size is None:
            chunk_size = self.config.stream_chunk_size
        if chunk_size is None:
            chunk_size = self.config.sample_batch_size
        return GenerationGraph(
            self.sampling_engine(),
            self.prefilter,
            self.legalization_engine(workers=workers, chunk_size=legalize_chunk_size),
            self.checker,
            chunk_size=chunk_size,
            num_solutions=num_solutions,
            retain_topologies=retain_topologies,
            library=library,
            on_chunk=on_chunk,
        )

    def generate_and_legalize(
        self,
        num_generated: int,
        num_solutions: int = 1,
        rng: "int | np.random.Generator | None" = None,
        workers: "int | None" = None,
        stream: bool = True,
        chunk_size: "int | None" = None,
        retain_topologies: bool = True,
        library=None,
        resume: bool = False,
    ) -> GenerationResult:
        """Sample, prefilter, legalise and score through the stage graph.

        ``stream=False`` is the thin wrapper over the old monolithic path:
        one graph chunk spanning the whole run (sample everything, then
        assess everything).  Both paths produce element-wise identical
        results; streaming only bounds memory and overlaps the stages.
        """
        if not stream:
            chunk_size = num_generated
        graph = self.generation_graph(
            chunk_size=chunk_size,
            num_solutions=num_solutions,
            workers=workers,
            retain_topologies=retain_topologies,
            library=library,
        )
        result = graph.run(num_generated, seed=rng, resume=resume)
        self._sampling_report = result.sampling_report
        self._legalization_report = result.legalization_report
        return result

    # ------------------------------------------------------------------ #
    # one-call convenience
    # ------------------------------------------------------------------ #
    def run(
        self,
        num_training_patterns: int = 200,
        num_generated: int = 32,
        num_solutions: int = 1,
        train_iterations: "int | None" = None,
        rng: "int | np.random.Generator | None" = None,
        stream: bool = True,
        chunk_size: "int | None" = None,
        library=None,
        resume: bool = False,
    ) -> GenerationResult:
        """Full pipeline: data -> train -> stream(sample -> legalise) -> metrics.

        Generation runs through the streaming stage graph; ``stream=False``
        keeps the old single-barrier behaviour (identical output, unbounded
        memory).  Pass ``library`` (a :class:`~repro.library.PatternLibrary`)
        to persist every completed chunk, and ``resume=True`` to continue a
        killed run from its manifest without re-generating finished chunks.

        One generator seeded from ``rng`` (``config.seed`` by default)
        drives data synthesis, training and generation in sequence, so a
        rerun — or a resume — with the same seed replays the identical run.

        Returns
        -------
        GenerationResult
            Patterns, metrics and the per-stage engine reports.

        Raises
        ------
        repro.library.LibraryError
            If ``library`` holds an incompatible fingerprint, or completed
            chunks without ``resume=True``.
        """
        gen = as_rng(rng if rng is not None else self.config.seed)
        if self.dataset is None:
            self.prepare_data(num_training_patterns, rng=gen)
        if not self.training_history:
            self.train(iterations=train_iterations, rng=gen)
        return self.generate_and_legalize(
            num_generated,
            num_solutions=num_solutions,
            rng=gen,
            stream=stream,
            chunk_size=chunk_size,
            library=library,
            resume=resume,
        )


class DiffPatternTopologyGenerator(TopologyGenerator):
    """Adapter exposing the diffusion pipeline through the baseline interface.

    Lets the Table I harness treat DiffPattern exactly like the baselines for
    the *topology generation* part, while legality is still obtained through
    the white-box legaliser.
    """

    name = "DiffPattern"

    def __init__(self, pipeline: DiffPatternPipeline) -> None:
        self.pipeline = pipeline

    def fit(
        self, matrices: np.ndarray, rng: "int | np.random.Generator | None" = None
    ) -> "DiffPatternTopologyGenerator":
        # The pipeline trains on its own dataset representation; `matrices`
        # are accepted for interface compatibility but the pipeline's dataset
        # takes precedence when already prepared.
        if self.pipeline.dataset is None:
            raise RuntimeError(
                "DiffPatternTopologyGenerator requires a pipeline with prepared data"
            )
        if not self.pipeline.training_history:
            self.pipeline.train(rng=rng)
        return self

    def generate(
        self, count: int, rng: "int | np.random.Generator | None" = None
    ) -> np.ndarray:
        return self.pipeline.generate_topologies(count, rng=rng)

"""Batched, gradient-free inference engine for topology-tensor sampling.

:class:`SamplingEngine` is the single entry point the pipeline, the Table II
efficiency harness and the benchmark scripts use to draw topology tensors
from a trained :class:`~repro.diffusion.DiscreteDiffusion` model.  It differs
from calling ``DiscreteDiffusion.sample`` directly in three ways:

* **Gradient-free batched hot path** — every denoising step runs the whole
  chunk through ``UNet.infer`` (raw float32 arrays, no autodiff tape) and
  mixes the predicted ``p_θ(x_0 | x_k)`` with cached posterior transition
  tables, so the per-step cost is a handful of large NumPy kernels instead of
  thousands of small taped operations.

* **Chunk-invariant determinism** — every sample index owns an independent
  random stream seeded from ``(seed, index)``.  The result of drawing sample
  ``i`` is therefore bitwise identical whether it is generated alone, inside
  a batch of 8, or as part of chunk 3 of a thousand-sample run.  Batched
  output is element-wise equal to the sequential sampler under the same seed,
  which is what the parity tests assert.

* **Per-phase throughput accounting** — the engine reports how long was
  spent in the network (``model``) versus the categorical mixing / RNG work
  (``mixing``) versus initialisation, plus samples/second, so efficiency
  regressions show up in the Table II benchmark rather than anecdotes.

* **Few-step respaced sampling** — the ``steps`` knob walks a
  :class:`~repro.diffusion.RespacedSchedule` instead of every chain step:
  the denoising network runs once per *retained* timestep and the reverse
  draws use composed jump-posterior tables (see ``docs/sampling.md``).
  ``steps`` equal to the chain length is bit-identical to the full chain.

The ``batch_size`` knob bounds peak memory: chunks of at most that many
samples are denoised per reverse pass, without changing any sampled value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..diffusion import DiscreteDiffusion, RespacedSchedule
from ..diffusion.transition import categorical_from_uniforms
from ..nn import no_grad
from ..utils import resolve_seed

__all__ = ["SamplingEngine", "SamplingReport", "resolve_seed"]


@dataclass
class SamplingReport:
    """Per-phase throughput of one :class:`SamplingEngine` run.

    ``num_steps`` counts the denoising steps *walked* per sample (the
    respaced count under a strided schedule); ``chain_steps`` is the length
    of the trained chain, so ``chain_steps / num_steps`` is the per-sample
    network-evaluation saving.  ``model_evals`` counts actual denoiser
    forward passes (chunks × steps) across the run.
    """

    num_samples: int
    num_steps: int
    batch_size: int
    num_chunks: int
    chain_steps: int = 0
    model_evals: int = 0
    total_seconds: float = 0.0
    model_seconds: float = 0.0
    mixing_seconds: float = 0.0
    init_seconds: float = 0.0

    @property
    def seconds_per_sample(self) -> float:
        return self.total_seconds / self.num_samples if self.num_samples else 0.0

    @property
    def samples_per_second(self) -> float:
        return self.num_samples / self.total_seconds if self.total_seconds else float("inf")

    @property
    def model_fraction(self) -> float:
        """Share of wall-clock spent inside the denoising network."""
        return self.model_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def evals_per_sample(self) -> float:
        """Denoiser forward passes per sample (``num_steps`` of the schedule)."""
        return self.model_evals / self.num_samples if self.num_samples else 0.0

    def merge(self, other: "SamplingReport") -> "SamplingReport":
        """Fold another report into this one (streamed-run aggregation)."""
        self.num_samples += other.num_samples
        self.num_chunks += other.num_chunks
        self.model_evals += other.model_evals
        self.total_seconds += other.total_seconds
        self.model_seconds += other.model_seconds
        self.mixing_seconds += other.mixing_seconds
        self.init_seconds += other.init_seconds
        self.num_steps = max(self.num_steps, other.num_steps)
        self.chain_steps = max(self.chain_steps, other.chain_steps)
        self.batch_size = max(self.batch_size, other.batch_size)
        return self

    def format(self) -> str:
        if self.chain_steps and self.chain_steps != self.num_steps:
            steps = f"{self.num_steps} of {self.chain_steps} steps (respaced)"
        else:
            steps = f"{self.num_steps} steps"
        lines = [
            f"samples            {self.num_samples} "
            f"(chunks of <= {self.batch_size}, {self.num_chunks} chunk(s), "
            f"{steps})",
            f"total              {self.total_seconds:.4f} s "
            f"({self.samples_per_second:.2f} samples/s, "
            f"{self.seconds_per_sample:.4f} s/sample)",
            f"  model forward    {self.model_seconds:.4f} s ({self.model_fraction:.0%})",
            f"  posterior mixing {self.mixing_seconds:.4f} s",
            f"  initialisation   {self.init_seconds:.4f} s",
        ]
        return "\n".join(lines)


@dataclass
class _ChainRecorder:
    """Collects intermediate states of the reverse chain (Fig. 6)."""

    stride: int
    num_steps: int
    states: list[np.ndarray] = field(default_factory=list)

    def record_initial(self, xk: np.ndarray) -> None:
        self.states.append(xk.copy())

    def maybe_record(self, xk: np.ndarray, step: int) -> None:
        if (self.num_steps - step) % self.stride == 0 or step == 1:
            self.states.append(xk.copy())

    def record_final(self, xk: np.ndarray) -> None:
        self.states.append(xk.copy())


class SamplingEngine:
    """Chunked, deterministic, gradient-free reverse-diffusion sampler.

    Parameters
    ----------
    diffusion:
        The trained generator to draw from.
    batch_size:
        Samples denoised per reverse pass; a pure memory/throughput knob
        (per-index seeding keeps the output identical for any value).
    inference:
        ``False`` routes the network through the taped forward pass —
        slower, used only to cross-check the array kernels.
    steps:
        Denoising steps to walk per sample.  ``None`` (default) walks the
        full trained chain; a smaller value samples the evenly respaced
        few-step chain (``steps`` network evaluations per sample, composed
        jump posteriors — see ``docs/sampling.md``).  ``steps`` equal to
        the chain length is bit-identical to ``None``.
    schedule:
        An explicit :class:`~repro.diffusion.RespacedSchedule` (e.g. with
        hand-picked timesteps).  Mutually exclusive with ``steps``; must be
        built over this diffusion model's transition.

    Raises
    ------
    ValueError
        If ``batch_size`` is not positive, ``steps`` is outside
        ``[1, chain length]``, both ``steps`` and ``schedule`` are given,
        or ``schedule`` belongs to a different transition model.
    """

    def __init__(
        self,
        diffusion: DiscreteDiffusion,
        batch_size: int = 32,
        inference: bool = True,
        steps: "int | None" = None,
        schedule: "RespacedSchedule | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if schedule is not None:
            if steps is not None:
                raise ValueError("pass either steps or schedule, not both")
            if schedule.transition is not diffusion.transition:
                raise ValueError(
                    "schedule was built over a different transition model"
                )
        else:
            schedule = RespacedSchedule(diffusion.transition, steps=steps)
        self.diffusion = diffusion
        self.batch_size = int(batch_size)
        #: ``False`` routes the network through the taped forward pass —
        #: slower, used only to cross-check the array kernels.
        self.inference = inference
        #: The reverse-sampling schedule every run walks (full chain when no
        #: ``steps`` was given).
        self.schedule = schedule
        self.last_report: "SamplingReport | None" = None

    @property
    def steps(self) -> int:
        """Denoising steps walked per sample (= denoiser evaluations)."""
        return self.schedule.num_steps

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def sample(
        self,
        num_samples: int,
        seed: "int | np.random.Generator | None" = 0,
        greedy_final: bool = True,
        batch_size: "int | None" = None,
        first_index: int = 0,
    ) -> np.ndarray:
        """Draw ``num_samples`` topology tensors; shape ``(N, C, M, M)``.

        ``first_index`` offsets the per-sample streams: the call draws the
        samples owned by indices ``[first_index, first_index + num_samples)``
        of the seed's virtual sequence, so a streaming caller pulling
        consecutive windows reproduces one monolithic call bit for bit.

        Raises
        ------
        ValueError
            If ``num_samples`` < 1 or ``first_index`` < 0.
        """
        samples, _ = self.sample_with_report(
            num_samples,
            seed=seed,
            greedy_final=greedy_final,
            batch_size=batch_size,
            first_index=first_index,
        )
        return samples

    def sample_with_report(
        self,
        num_samples: int,
        seed: "int | np.random.Generator | None" = 0,
        greedy_final: bool = True,
        batch_size: "int | None" = None,
        first_index: int = 0,
    ) -> tuple[np.ndarray, SamplingReport]:
        """Like :meth:`sample` but also returns the per-phase throughput."""
        samples, _, report = self._run(
            num_samples,
            seed=seed,
            greedy_final=greedy_final,
            batch_size=batch_size,
            recorder=None,
            first_index=first_index,
        )
        return samples, report

    def sample_chain(
        self,
        num_samples: int = 1,
        seed: "int | np.random.Generator | None" = 0,
        chain_stride: int = 1,
        greedy_final: bool = True,
        batch_size: "int | None" = None,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Sample and keep the intermediate chain states (for Fig. 6).

        Returns ``(samples, chain)`` where ``chain`` is a list of
        ``(N, C, M, M)`` states starting at ``x_K`` and ending at the final
        sample, recorded every ``chain_stride`` steps.
        """
        recorder_stride = max(1, int(chain_stride))
        samples, chains, _ = self._run(
            num_samples,
            seed=seed,
            greedy_final=greedy_final,
            batch_size=batch_size,
            recorder=recorder_stride,
            first_index=0,
        )
        return samples, chains

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run(
        self,
        num_samples: int,
        seed: "int | np.random.Generator | None",
        greedy_final: bool,
        batch_size: "int | None",
        recorder: "int | None",
        first_index: int = 0,
    ) -> tuple[np.ndarray, list[np.ndarray], SamplingReport]:
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if first_index < 0:
            raise ValueError("first_index must be >= 0")
        base_seed = resolve_seed(seed)
        chunk_size = self.batch_size if batch_size is None else max(1, int(batch_size))
        num_chunks = (num_samples + chunk_size - 1) // chunk_size
        report = SamplingReport(
            num_samples=num_samples,
            num_steps=self.schedule.num_steps,
            batch_size=chunk_size,
            num_chunks=num_chunks,
            chain_steps=self.schedule.chain_steps,
        )

        model = self.diffusion.model
        was_training = model.training
        model.eval()
        start_total = time.perf_counter()
        finals: list[np.ndarray] = []
        chunk_chains: list[list[np.ndarray]] = []
        try:
            for start in range(0, num_samples, chunk_size):
                indices = range(
                    first_index + start,
                    first_index + min(start + chunk_size, num_samples),
                )
                chain = self._denoise_chunk(
                    base_seed, indices, greedy_final, recorder, report, finals
                )
                if recorder is not None:
                    chunk_chains.append(chain)
        finally:
            if was_training:
                model.train()
        report.total_seconds = time.perf_counter() - start_total
        self.last_report = report

        samples = finals[0] if len(finals) == 1 else np.concatenate(finals, axis=0)
        chains: list[np.ndarray] = []
        if recorder is not None:
            chains = [
                parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
                for parts in zip(*chunk_chains)
            ]
        return samples, chains, report

    def _denoise_chunk(
        self,
        base_seed: int,
        indices: range,
        greedy_final: bool,
        recorder_stride: "int | None",
        report: SamplingReport,
        finals: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Reverse-diffuse one chunk; appends the final states to ``finals``.

        The loop walks the engine's :class:`~repro.diffusion.RespacedSchedule`
        jump by jump.  Over the full chain every jump spans one step and the
        body is exactly the classic ancestral sampler; under a strided
        schedule the per-step posterior table is replaced by the composed
        jump table — same gather, same mixing kernel, same one uniform draw
        per jump, so chunk invariance is untouched.
        """
        diffusion = self.diffusion
        schedule = self.schedule
        cfg = diffusion.model.config
        sample_shape = (cfg.in_channels, cfg.image_size, cfg.image_size)

        tic = time.perf_counter()
        # One independent, deterministically seeded stream per sample index:
        # the drawn values depend only on (base_seed, index), never on how
        # samples are grouped into chunks.
        gens = [np.random.default_rng([base_seed, index]) for index in indices]
        xk = np.stack(
            [diffusion.transition.sample_stationary(sample_shape, g) for g in gens], axis=0
        )
        report.init_seconds += time.perf_counter() - tic

        recorder = None
        if recorder_stride is not None:
            recorder = _ChainRecorder(stride=recorder_stride, num_steps=schedule.chain_steps)
            recorder.record_initial(xk)

        # no_grad also covers the inference=False cross-check path, which
        # would otherwise build a full autodiff tape every denoising step.
        with no_grad():
            for cur, prev in schedule.jumps:
                tic = time.perf_counter()
                probs_x0 = diffusion.predict_x0_probs(xk, cur, inference=self.inference)
                report.model_seconds += time.perf_counter() - tic
                report.model_evals += 1

                tic = time.perf_counter()
                probs_x0 = np.moveaxis(probs_x0, 2, -1)  # (N, C, M, M, S)
                if prev == 0 and greedy_final:
                    xk = probs_x0.argmax(axis=-1).astype(np.int64)
                    report.mixing_seconds += time.perf_counter() - tic
                    if recorder is not None:
                        recorder.record_final(xk)
                    break
                if prev == 0:
                    # q(x_0 | x_cur, x_0 = i) is the delta at i, so the
                    # mixture collapses to the model posterior itself.
                    probs_prev = probs_x0
                else:
                    posterior_all = schedule.posterior_table(cur, prev, dtype=np.float32)[xk]
                    if posterior_all.shape[-1] == 2:
                        # Binary topologies: writing out the 2-state mixture is
                        # cheaper than dispatching einsum every step.
                        probs_prev = probs_x0[..., 0, None] * posterior_all[..., 0, :]
                        probs_prev += probs_x0[..., 1, None] * posterior_all[..., 1, :]
                    else:
                        probs_prev = np.einsum("...i,...ij->...j", probs_x0, posterior_all)
                uniforms = np.stack([g.random(sample_shape) for g in gens], axis=0)
                xk = categorical_from_uniforms(probs_prev, uniforms)
                report.mixing_seconds += time.perf_counter() - tic
                if recorder is not None:
                    recorder.maybe_record(xk, cur)

        finals.append(xk)
        return recorder.states if recorder is not None else []

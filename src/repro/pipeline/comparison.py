"""Table I harness: pattern diversity and legality across generation methods.

Reproduces the structure of the paper's main comparison: every method
generates topologies; geometry is then attached — heuristically (inherited
from real patterns) for the baselines, through the white-box legaliser for
DiffPattern — and the resulting libraries are scored for diversity (Eq. 4)
and legality (DRC-clean fraction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.base import TopologyGenerator
from ..data import LayoutPatternDataset
from ..drc import DesignRuleChecker
from ..legalization import DesignRules
from ..metrics import pattern_complexity, pattern_diversity
from ..squish import SquishPattern
from ..utils import as_rng
from .diffpattern import DiffPatternPipeline


@dataclass
class MethodRow:
    """One row of Table I."""

    name: str
    generated_topologies: int
    generated_patterns: int
    generated_diversity: float
    legal_patterns: int
    legality: float
    legal_diversity: float

    def as_dict(self) -> dict[str, object]:
        return {
            "method": self.name,
            "topologies": self.generated_topologies,
            "patterns": self.generated_patterns,
            "diversity": round(self.generated_diversity, 4),
            "legal_patterns": self.legal_patterns,
            "legality_%": round(100.0 * self.legality, 2),
            "legal_diversity": round(self.legal_diversity, 4),
        }


def attach_reference_geometry(
    topologies: "np.ndarray | list[np.ndarray]",
    references: list[tuple[np.ndarray, np.ndarray]],
    rng: "int | np.random.Generator | None" = None,
) -> list[SquishPattern]:
    """Attach geometry to baseline topologies by inheriting real delta vectors.

    Pixel-based baselines emit only a topology matrix; following previous
    work, the geometric vectors are borrowed from a random real pattern of
    matching shape.  No legality check is involved — that is the point of the
    comparison.
    """
    gen = as_rng(rng)
    patterns = []
    for topology in topologies:
        topology = np.asarray(topology, dtype=np.uint8)
        rows, cols = topology.shape
        candidates = [
            (dx, dy) for dx, dy in references if len(dx) == cols and len(dy) == rows
        ]
        if not candidates:
            raise ValueError("no reference geometry matches the topology shape")
        dx, dy = candidates[int(gen.integers(0, len(candidates)))]
        patterns.append(SquishPattern(topology, dx.copy(), dy.copy()))
    return patterns


def evaluate_real_patterns(dataset: LayoutPatternDataset, rules: DesignRules) -> MethodRow:
    """The 'Real Patterns' reference row (whole dataset, as in the paper)."""
    patterns = dataset.real_patterns("all")
    checker = DesignRuleChecker(rules)
    legal = checker.legal_subset(patterns)
    return MethodRow(
        name="Real Patterns",
        generated_topologies=0,
        generated_patterns=len(patterns),
        generated_diversity=pattern_diversity(patterns),
        legal_patterns=len(legal),
        legality=len(legal) / len(patterns) if patterns else 0.0,
        legal_diversity=pattern_diversity(legal) if legal else 0.0,
    )


def evaluate_baseline(
    name: str,
    generator: TopologyGenerator,
    dataset: LayoutPatternDataset,
    rules: DesignRules,
    num_generated: int,
    rng: "int | np.random.Generator | None" = None,
    fit: bool = True,
) -> MethodRow:
    """Train a baseline, generate topologies, attach geometry, score the row."""
    gen = as_rng(rng)
    matrices = dataset.topology_matrices("train")
    if fit:
        generator.fit(matrices, rng=gen)
    topologies = generator.generate(num_generated, rng=gen)
    references = dataset.reference_geometries("train")
    patterns = attach_reference_geometry(list(topologies), references, rng=gen)
    checker = DesignRuleChecker(rules)
    legal = checker.legal_subset(patterns)
    return MethodRow(
        name=name,
        generated_topologies=len(topologies),
        generated_patterns=len(patterns),
        generated_diversity=pattern_diversity(patterns) if patterns else 0.0,
        legal_patterns=len(legal),
        legality=len(legal) / len(patterns) if patterns else 0.0,
        legal_diversity=pattern_diversity(legal) if legal else 0.0,
    )


def evaluate_diffpattern(
    pipeline: DiffPatternPipeline,
    num_generated: int,
    num_solutions: int = 1,
    name: "str | None" = None,
    rng: "int | np.random.Generator | None" = None,
    workers: "int | None" = None,
) -> MethodRow:
    """Score DiffPattern-S (``num_solutions=1``) or DiffPattern-L (>1).

    Generation and legalisation run through the streaming stage graph
    (element-wise identical to the old two-barrier evaluation for the same
    ``rng``); ``workers`` overrides the pipeline-config pool width for this
    evaluation only.
    """
    gen = as_rng(rng)
    result = pipeline.generate_and_legalize(
        num_generated, num_solutions=num_solutions, rng=gen, workers=workers
    )
    checker = DesignRuleChecker(pipeline.config.rules)
    legal = checker.legal_subset(result.patterns)
    label = name if name is not None else ("DiffPattern-S" if num_solutions == 1 else "DiffPattern-L")
    return MethodRow(
        name=label,
        generated_topologies=num_generated,
        generated_patterns=len(result.patterns),
        generated_diversity=result.pattern_diversity,
        legal_patterns=len(legal),
        legality=len(legal) / len(result.patterns) if result.patterns else 0.0,
        legal_diversity=pattern_diversity(legal) if legal else 0.0,
    )


def format_table(rows: list[MethodRow]) -> str:
    """Render rows in the layout of the paper's Table I."""
    header = (
        f"{'Method':<22}{'Topologies':>12}{'Patterns':>10}{'Diversity':>11}"
        f"{'Legal':>8}{'Legality%':>11}{'LegalDiv':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<22}{row.generated_topologies:>12}{row.generated_patterns:>10}"
            f"{row.generated_diversity:>11.4f}{row.legal_patterns:>8}"
            f"{100.0 * row.legality:>11.2f}{row.legal_diversity:>10.4f}"
        )
    return "\n".join(lines)


def complexity_histogram(
    patterns: list[SquishPattern], bins: int
) -> np.ndarray:
    """2-D complexity histogram used by the Fig. 9 reproduction."""
    histogram = np.zeros((bins, bins), dtype=np.float64)
    for pattern in patterns:
        cx, cy = pattern_complexity(pattern)
        if cx < bins and cy < bins:
            histogram[cx, cy] += 1.0
    total = histogram.sum()
    return histogram / total if total else histogram

"""Table II harness: model efficiency of topology sampling and legalisation.

Measures the average wall-clock time per sample of

* **Sampling**  — one topology from the reverse diffusion chain,
* **Solving-R** — legalising one topology with random solver initialisation,
* **Solving-E** — legalising one topology warm-started from an existing
  geometric-vector pair (the acceleration trick of Section III-D).

The absolute numbers depend on the host machine and the NumPy substrate; the
quantity the paper reports — Solving-E being ~2.3x faster than Solving-R —
is a relative statement that the harness reproduces.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from ..legalization import (
    DesignRules,
    LegalizationEngine,
    LegalizationReport,
    Legalizer,
    SolverOptions,
)
from ..utils import Timer, as_rng
from .diffpattern import DiffPatternPipeline, GenerationResult
from .sampling_engine import SamplingReport


@dataclass
class EfficiencyRow:
    """One row of Table II."""

    phase: str
    seconds_per_sample: float
    acceleration: float

    def as_dict(self) -> dict[str, object]:
        return {
            "phase": self.phase,
            "cost_time_s": round(self.seconds_per_sample, 4),
            "acceleration": "N/A" if np.isnan(self.acceleration) else f"{self.acceleration:.2f}x",
        }


@dataclass
class EfficiencyReport:
    """All three rows plus the raw measurements."""

    sampling: EfficiencyRow
    solving_random: EfficiencyRow
    solving_existing: EfficiencyRow
    #: Per-phase breakdown of the sampling measurement (model forward vs
    #: posterior mixing), produced by the batched sampling engine.
    sampling_report: "SamplingReport | None" = field(default=None, repr=False)
    #: Batch-legalisation throughput of the sharded legalization engine at
    #: the experiment's worker count.
    legalization_report: "LegalizationReport | None" = field(default=None, repr=False)

    @property
    def rows(self) -> list[EfficiencyRow]:
        return [self.sampling, self.solving_random, self.solving_existing]

    def format(self) -> str:
        header = f"{'Phase/Method':<16}{'Cost Time (s)':>16}{'Acceleration':>14}"
        lines = [header, "-" * len(header)]
        for row in self.rows:
            accel = "N/A" if np.isnan(row.acceleration) else f"{row.acceleration:.2f}x"
            lines.append(f"{row.phase:<16}{row.seconds_per_sample:>16.4f}{accel:>14}")
        if self.sampling_report is not None:
            lines.append("")
            lines.append("Sampling engine breakdown:")
            lines.append(self.sampling_report.format())
        if self.legalization_report is not None:
            lines.append("")
            lines.append("Legalization engine breakdown:")
            lines.append(self.legalization_report.format())
        return "\n".join(lines)


def measure_sampling_time(
    pipeline: DiffPatternPipeline, num_samples: int, rng: "int | np.random.Generator | None" = None
) -> float:
    """Average seconds per generated topology."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    with Timer() as timer:
        pipeline.generate_topologies(num_samples, rng=rng)
    return timer.elapsed / num_samples


def measure_solving_time(
    topologies: "list[np.ndarray] | np.ndarray",
    rules: DesignRules,
    reference_geometries: "list[tuple[np.ndarray, np.ndarray]] | None" = None,
    options: "SolverOptions | None" = None,
    rng: "int | np.random.Generator | None" = None,
) -> float:
    """Average seconds per solved topology (failures excluded from the mean)."""
    gen = as_rng(rng)
    legalizer = Legalizer(rules, reference_geometries=reference_geometries, options=options)
    times = []
    for topology in topologies:
        result = legalizer.legalize_topology(topology, num_solutions=1, rng=gen)
        if result.solved:
            times.append(result.solutions[0].elapsed_seconds)
    if not times:
        raise RuntimeError("no topology could be legalised; cannot measure solver time")
    return float(np.mean(times))


def measure_batch_legalization(
    topologies: "list[np.ndarray] | np.ndarray",
    rules: DesignRules,
    reference_geometries: "list[tuple[np.ndarray, np.ndarray]] | None" = None,
    options: "SolverOptions | None" = None,
    num_solutions: int = 1,
    workers: "int | None" = 1,
    chunk_size: "int | None" = None,
    seed: "int | np.random.Generator | None" = 0,
) -> LegalizationReport:
    """Wall-clock throughput of the sharded legalization engine on a batch.

    Unlike :func:`measure_solving_time` (per-solve average, serial), this
    measures the end-to-end batch: sharding, the process pool, and stats
    merging — the quantity the parallel engine is supposed to improve.
    """
    engine = LegalizationEngine(
        rules,
        reference_geometries=reference_geometries,
        options=options,
        workers=workers,
        chunk_size=chunk_size,
    )
    _, report = engine.legalize_batch_with_report(
        list(topologies), num_solutions=num_solutions, seed=seed
    )
    return report


@dataclass
class StreamingMeasurement:
    """End-to-end generation measured for wall-clock and Python-heap peak."""

    result: GenerationResult
    seconds: float
    peak_bytes: int

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def measure_streamed_generation(
    pipeline: DiffPatternPipeline,
    num_generated: int,
    chunk_size: "int | None" = None,
    num_solutions: int = 1,
    rng: "int | np.random.Generator | None" = 0,
    stream: bool = True,
    retain_topologies: bool = True,
    workers: "int | None" = None,
    library=None,
    resume: bool = False,
) -> StreamingMeasurement:
    """Measure one end-to-end generation run through the stage graph.

    ``stream=False`` measures the monolithic single-chunk path, so calling
    this twice gives the streaming-vs-batch wall-clock and peak-allocation
    comparison the streaming benchmark gates.  The Python-heap peak is
    tracked with :mod:`tracemalloc` (resident-set peaks are monotone per
    process and cannot compare two in-process runs).
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    with Timer() as timer:
        result = pipeline.generate_and_legalize(
            num_generated,
            num_solutions=num_solutions,
            rng=rng,
            workers=workers,
            stream=stream,
            chunk_size=chunk_size,
            retain_topologies=retain_topologies,
            library=library,
            resume=resume,
        )
    _, peak = tracemalloc.get_traced_memory()
    if not was_tracing:
        tracemalloc.stop()
    return StreamingMeasurement(result=result, seconds=timer.elapsed, peak_bytes=peak)


def run_efficiency_experiment(
    pipeline: DiffPatternPipeline,
    num_samples: int = 8,
    rng: "int | np.random.Generator | None" = None,
    workers: "int | None" = None,
) -> EfficiencyReport:
    """Produce the three rows of Table II (plus engine throughput breakdowns).

    ``workers`` overrides the pipeline-config pool width for the batch
    legalisation measurement; the per-solve Solving-R / Solving-E rows stay
    serial by construction (they time individual solver calls).
    """
    gen = as_rng(rng)
    sampling_seconds = measure_sampling_time(pipeline, num_samples, rng=gen)
    sampling_report = pipeline.last_sampling_report
    topologies = pipeline.generate_topologies(num_samples, rng=gen)
    kept = pipeline.prefilter.filter(list(topologies)).kept
    if not kept and pipeline.dataset is not None:
        # An under-trained model can fail the pre-filter on every sample; the
        # solver timing itself does not depend on where the topology came
        # from, so fall back to real (held-out) topologies.
        kept = list(pipeline.dataset.topology_matrices("test")[:num_samples])
    if not kept:
        raise RuntimeError("no topology available to measure solver time on")
    references = (
        pipeline.dataset.reference_geometries("train") if pipeline.dataset is not None else None
    )
    # All three measurements honour the config's solver strategy, so a
    # scenario pinned to "slsqp" (paper-tables) reports the full-solve cost
    # while "auto" regimes report the repair-first fast path.
    options = SolverOptions(
        solver_mode=pipeline.config.solver_mode,
        batch_solve=pipeline.config.batch_solve,
    )
    solving_r = measure_solving_time(kept, pipeline.config.rules, None, options=options, rng=gen)
    solving_e = measure_solving_time(
        kept, pipeline.config.rules, references, options=options, rng=gen
    )
    legalization_report = measure_batch_legalization(
        kept,
        pipeline.config.rules,
        reference_geometries=references,
        options=options,
        workers=workers if workers is not None else pipeline.config.workers,
        chunk_size=pipeline.config.legalize_chunk_size,
        seed=gen,
    )
    return EfficiencyReport(
        sampling=EfficiencyRow("Sampling", sampling_seconds, float("nan")),
        solving_random=EfficiencyRow("Solving-R", solving_r, 1.0),
        solving_existing=EfficiencyRow(
            "Solving-E", solving_e, solving_r / solving_e if solving_e else float("nan")
        ),
        sampling_report=sampling_report,
        legalization_report=legalization_report,
    )

"""Rectilinear polygons built from grid cells.

A :class:`RectilinearPolygon` is one 4-connected component of a topology
grid realised with concrete geometric vectors.  It is the unit on which the
'Area' design rule of Fig. 3 is evaluated and the unit emitted by the
sequence-based baseline (LayouTransformer) as a vertex loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .rectangle import Rect


@dataclass
class RectilinearPolygon:
    """A rectilinear polygon represented as a set of covering rectangles.

    The rectangles are non-overlapping and together tile the polygon.  The
    polygon is assumed to be 4-connected (guaranteed when produced by
    :func:`repro.geometry.grid.connected_components`).
    """

    rects: list[Rect] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rects:
            raise ValueError("a polygon needs at least one rectangle")

    @property
    def area(self) -> int:
        """Total area in nm^2 (rectangles are disjoint by construction)."""
        return sum(r.area for r in self.rects)

    @property
    def bbox(self) -> Rect:
        """Axis-aligned bounding box."""
        box = self.rects[0]
        for r in self.rects[1:]:
            box = box.union_bbox(r)
        return box

    def translated(self, dx: int, dy: int) -> "RectilinearPolygon":
        """Return a shifted copy."""
        return RectilinearPolygon([r.translated(dx, dy) for r in self.rects])

    def contains_point(self, x: float, y: float) -> bool:
        """True when the point lies in any covering rectangle."""
        return any(r.contains_point(x, y) for r in self.rects)

    def vertices(self) -> list[tuple[int, int]]:
        """Return the boundary vertices in counter-clockwise order.

        Uses the classic corner-counting rule for rectilinear polygons: a
        lattice point is a boundary vertex iff an odd number (1 or 3) of the
        four incident unit cells is covered, or exactly two diagonal cells are
        covered (which cannot happen for valid, bow-tie-free polygons).
        """
        covered = set()
        for r in self.rects:
            covered.add((r.x1, r.y1, r.x2, r.y2))

        xs = sorted({v for r in self.rects for v in (r.x1, r.x2)})
        ys = sorted({v for r in self.rects for v in (r.y1, r.y2)})

        def cell_filled(x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> bool:
            cx = (x_lo + x_hi) / 2.0
            cy = (y_lo + y_hi) / 2.0
            return any(
                r.x1 < cx < r.x2 and r.y1 < cy < r.y2 for r in self.rects
            )

        corners: list[tuple[int, int]] = []
        x_edges = [-1] + xs + [xs[-1] + 1]
        y_edges = [-1] + ys + [ys[-1] + 1]
        for xi in range(1, len(x_edges) - 1):
            for yi in range(1, len(y_edges) - 1):
                x = x_edges[xi]
                y = y_edges[yi]
                quads = [
                    cell_filled(x_edges[xi - 1], x, y_edges[yi - 1], y),
                    cell_filled(x, x_edges[xi + 1], y_edges[yi - 1], y),
                    cell_filled(x_edges[xi - 1], x, y, y_edges[yi + 1]),
                    cell_filled(x, x_edges[xi + 1], y, y_edges[yi + 1]),
                ]
                if sum(quads) in (1, 3):
                    corners.append((x, y))
        corners.sort(key=lambda p: (np.arctan2(p[1] - self.bbox.center[1],
                                               p[0] - self.bbox.center[0])))
        return corners

    def min_feature_width(self) -> int:
        """Smallest rectangle dimension — a cheap lower bound used by tests.

        The exact 'Width' rule is evaluated on the squish grid by the DRC
        checker; this helper only gives the minimum width/height over the
        covering rectangles of the polygon.
        """
        return min(min(r.width, r.height) for r in self.rects)


def polygons_from_grid(
    grid: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    origin: tuple[int, int] = (0, 0),
) -> list[RectilinearPolygon]:
    """Group the rectangles of a topology grid into per-component polygons."""
    from .grid import connected_components, runs_of_value, validate_grid

    arr = validate_grid(grid)
    labels, count = connected_components(arr)
    dx = np.asarray(dx, dtype=np.int64)
    dy = np.asarray(dy, dtype=np.int64)
    ox, oy = origin
    xs = np.concatenate(([0], np.cumsum(dx))) + ox
    ys = np.concatenate(([0], np.cumsum(dy))) + oy

    per_comp: dict[int, list[Rect]] = {i: [] for i in range(1, count + 1)}
    for r in range(arr.shape[0]):
        for c_start, c_end in runs_of_value(arr[r], 1):
            comp = int(labels[r, c_start])
            per_comp[comp].append(
                Rect(
                    int(xs[c_start]),
                    int(ys[r]),
                    int(xs[c_end + 1]),
                    int(ys[r + 1]),
                )
            )
    return [RectilinearPolygon(rects) for rects in per_comp.values() if rects]

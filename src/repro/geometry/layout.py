"""Layout pattern container.

A :class:`Layout` is a fixed window (e.g. 2048x2048 nm, the tile size used in
the paper's experiments) containing a set of rectilinear polygons on a single
layer.  It is the object exchanged between the squish encoder, the DRC
checker, the legalisation stage and the synthetic data generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .polygon import RectilinearPolygon, polygons_from_grid
from .rectangle import Rect


@dataclass
class Layout:
    """A single-layer rectilinear layout clip.

    Parameters
    ----------
    window:
        The clip boundary.  All polygons must lie inside the window.
    polygons:
        The shapes of the clip.
    """

    window: Rect
    polygons: list[RectilinearPolygon] = field(default_factory=list)

    def __post_init__(self) -> None:
        for poly in self.polygons:
            if not self.window.contains_rect(poly.bbox):
                raise ValueError(
                    f"polygon bbox {poly.bbox} exceeds layout window {self.window}"
                )

    @property
    def num_polygons(self) -> int:
        """Number of shapes in the clip."""
        return len(self.polygons)

    @property
    def total_area(self) -> int:
        """Sum of polygon areas in nm^2."""
        return sum(p.area for p in self.polygons)

    @property
    def density(self) -> float:
        """Fraction of the window area covered by shapes."""
        return self.total_area / self.window.area

    def all_rects(self) -> list[Rect]:
        """Every covering rectangle of every polygon."""
        return [r for poly in self.polygons for r in poly.rects]

    def add_polygon(self, polygon: RectilinearPolygon) -> None:
        """Add a polygon, validating it fits the window."""
        if not self.window.contains_rect(polygon.bbox):
            raise ValueError(
                f"polygon bbox {polygon.bbox} exceeds layout window {self.window}"
            )
        self.polygons.append(polygon)

    def scanline_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """Scan-line coordinates along x and y.

        Scan lines walk along every polygon edge plus the window boundary,
        exactly as in the squish-pattern definition (Fig. 2 of the paper).
        """
        xs = {self.window.x1, self.window.x2}
        ys = {self.window.y1, self.window.y2}
        for rect in self.all_rects():
            xs.update((rect.x1, rect.x2))
            ys.update((rect.y1, rect.y2))
        return (
            np.asarray(sorted(xs), dtype=np.int64),
            np.asarray(sorted(ys), dtype=np.int64),
        )

    @classmethod
    def from_grid(
        cls,
        grid: np.ndarray,
        dx: np.ndarray,
        dy: np.ndarray,
        origin: tuple[int, int] = (0, 0),
    ) -> "Layout":
        """Build a layout from a topology grid and interval vectors."""
        dx = np.asarray(dx, dtype=np.int64)
        dy = np.asarray(dy, dtype=np.int64)
        ox, oy = origin
        window = Rect(ox, oy, ox + int(dx.sum()), oy + int(dy.sum()))
        polygons = polygons_from_grid(grid, dx, dy, origin)
        return cls(window=window, polygons=polygons)

    def occupancy_grid(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rasterise the layout onto its own scan-line grid.

        Returns ``(grid, dx, dy)`` — the exact inverse of :meth:`from_grid`
        (up to polygon grouping).  Cells are marked 1 when their centre lies
        inside any polygon rectangle.
        """
        xs, ys = self.scanline_coordinates()
        dx = np.diff(xs)
        dy = np.diff(ys)
        grid = np.zeros((len(dy), len(dx)), dtype=np.uint8)
        rects = self.all_rects()
        if rects:
            cx = (xs[:-1] + xs[1:]) / 2.0
            cy = (ys[:-1] + ys[1:]) / 2.0
            for rect in rects:
                col_mask = (cx > rect.x1) & (cx < rect.x2)
                row_mask = (cy > rect.y1) & (cy < rect.y2)
                grid[np.ix_(row_mask, col_mask)] = 1
        return grid, dx.astype(np.int64), dy.astype(np.int64)

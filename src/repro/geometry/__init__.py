"""Rectilinear layout geometry substrate.

Provides rectangles, rectilinear polygons, layout clips, and binary-grid
operations (connected components, bow-tie detection, run extraction) used by
the squish representation, DRC checker and legalisation stages.
"""

from .grid import (
    component_areas,
    component_cell_indices,
    connected_components,
    grid_to_rects,
    has_bowtie,
    interior_runs_2d,
    runs_2d,
    runs_of_value,
    validate_grid,
)
from .layout import Layout
from .polygon import RectilinearPolygon, polygons_from_grid
from .rectangle import Rect, rect_min_distance

__all__ = [
    "Rect",
    "rect_min_distance",
    "RectilinearPolygon",
    "polygons_from_grid",
    "Layout",
    "validate_grid",
    "connected_components",
    "has_bowtie",
    "runs_of_value",
    "runs_2d",
    "interior_runs_2d",
    "grid_to_rects",
    "component_cell_indices",
    "component_areas",
]

"""Axis-aligned rectangles in integer (nanometre) coordinates.

Layout patterns in this library are rectilinear: every polygon can be
decomposed into axis-aligned rectangles.  The :class:`Rect` type is the basic
building block used by the layout container, the DRC checker and the synthetic
data generator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[x1, x2] x [y1, y2]`` in nm.

    Coordinates are stored normalised so that ``x1 <= x2`` and ``y1 <= y2``.
    A rectangle with zero width or height is considered degenerate and is
    rejected by :meth:`__post_init__`.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            object.__setattr__(self, "x1", min(self.x1, self.x2))
            object.__setattr__(self, "x2", max(self.x1, self.x2))
            object.__setattr__(self, "y1", min(self.y1, self.y2))
            object.__setattr__(self, "y2", max(self.y1, self.y2))
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"degenerate rectangle: {self!r}")

    @property
    def width(self) -> int:
        """Horizontal extent in nm."""
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        """Vertical extent in nm."""
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        """Area in nm^2."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Geometric centre ``(cx, cy)``."""
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def translated(self, dx: int, dy: int) -> "Rect":
        """Return a copy shifted by ``(dx, dy)``."""
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles overlap with positive area."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def touches(self, other: "Rect") -> bool:
        """True when the rectangles share at least an edge segment or overlap.

        Corner-only contact does not count as touching; two rectangles that
        meet only at a point form a bow-tie, which is an invalid layout shape.
        """
        if self.intersects(other):
            return True
        x_overlap = min(self.x2, other.x2) - max(self.x1, other.x1)
        y_overlap = min(self.y2, other.y2) - max(self.y1, other.y1)
        if x_overlap == 0 and y_overlap > 0:
            return True
        if y_overlap == 0 and x_overlap > 0:
            return True
        return False

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap region, or ``None`` if the rectangles do not overlap."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of the two rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def clipped(self, window: "Rect") -> "Rect | None":
        """Clip this rectangle to ``window``; ``None`` if nothing remains."""
        return self.intersection(window)


def rect_min_distance(a: Rect, b: Rect) -> float:
    """Minimum Euclidean distance between two rectangles (0 when touching)."""
    dx = max(a.x1 - b.x2, b.x1 - a.x2, 0)
    dy = max(a.y1 - b.y2, b.y1 - a.y2, 0)
    return float((dx * dx + dy * dy) ** 0.5)

"""Operations on binary topology grids.

A topology grid is a 2-D binary array where 1 marks "shape" (metal) and 0
marks "space".  Together with the geometric vectors produced by the squish
encoding it describes a rectilinear layout exactly.  This module provides the
grid-level geometry primitives used throughout the library:

* connected-component labelling (4-connectivity, the correct adjacency for
  rectilinear polygons),
* bow-tie (corner-touching) detection,
* run-length extraction along rows/columns (the basis of width / space rules),
* conversion from a grid plus interval lengths to rectangles.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

import numpy as np

from .rectangle import Rect


def validate_grid(grid: np.ndarray) -> np.ndarray:
    """Check that ``grid`` is a 2-D binary array and return it as ``uint8``.

    Raises ``ValueError`` for wrong dimensionality or non-binary entries.
    """
    arr = np.asarray(grid)
    if arr.ndim != 2:
        raise ValueError(f"topology grid must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("topology grid must be non-empty")
    # Dtype-aware binary check: unsigned bytes only need an upper bound and
    # booleans are binary by construction; everything else gets the general
    # elementwise test (which also rejects fractional values and NaN).
    if arr.dtype == np.uint8:
        binary = bool((arr <= 1).all())
    elif arr.dtype == np.bool_:
        binary = True
    else:
        binary = bool(((arr == 0) | (arr == 1)).all())
    if not binary:
        raise ValueError("topology grid entries must be 0 or 1")
    return arr.astype(np.uint8)


def connected_components(grid: np.ndarray) -> tuple[np.ndarray, int]:
    """Label 4-connected components of the 1-cells.

    Returns ``(labels, count)`` where ``labels`` has the same shape as the
    grid, 0 for background and ``1..count`` for each component.
    """
    arr = validate_grid(grid)
    rows, cols = arr.shape
    labels = np.zeros((rows, cols), dtype=np.int32)
    current = 0
    for start_r in range(rows):
        for start_c in range(cols):
            if arr[start_r, start_c] == 0 or labels[start_r, start_c] != 0:
                continue
            current += 1
            queue: deque[tuple[int, int]] = deque([(start_r, start_c)])
            labels[start_r, start_c] = current
            while queue:
                r, c = queue.popleft()
                for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                    if 0 <= nr < rows and 0 <= nc < cols:
                        if arr[nr, nc] == 1 and labels[nr, nc] == 0:
                            labels[nr, nc] = current
                            queue.append((nr, nc))
    return labels, current


def has_bowtie(grid: np.ndarray) -> bool:
    """Detect corner-touching shapes (bow-ties).

    A bow-tie occurs when two diagonal cells are 1 while the two
    anti-diagonal cells of the same 2x2 window are 0.  Such a topology cannot
    be realised by non-degenerate rectilinear polygons and is filtered out by
    the topology pre-filter.
    """
    arr = validate_grid(grid)
    a = arr[:-1, :-1]
    b = arr[:-1, 1:]
    c = arr[1:, :-1]
    d = arr[1:, 1:]
    bowtie_main = (a == 1) & (d == 1) & (b == 0) & (c == 0)
    bowtie_anti = (b == 1) & (c == 1) & (a == 0) & (d == 0)
    return bool((bowtie_main | bowtie_anti).any())


def runs_of_value(line: np.ndarray, value: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, end)`` index ranges (inclusive) of consecutive cells
    equal to ``value`` in a 1-D array."""
    arr = np.asarray(line)
    n = arr.shape[0]
    i = 0
    while i < n:
        if arr[i] == value:
            j = i
            while j + 1 < n and arr[j + 1] == value:
                j += 1
            yield i, j
            i = j + 1
        else:
            i += 1


def runs_2d(grid: np.ndarray, value: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All maximal runs of ``value`` along the rows of a 2-D array, at once.

    Returns ``(line, start, end)`` index arrays (``end`` inclusive), ordered
    row-major — i.e. exactly the order a Python loop over
    :func:`runs_of_value` per row would visit them.  This is the shared
    run-length kernel behind constraint extraction and the DRC width/space
    checks; pass ``grid.T`` to get runs along columns (``line`` is then the
    column index).
    """
    eq = np.asarray(grid) == value
    rows, cols = eq.shape
    padded = np.zeros((rows, cols + 2), dtype=np.int8)
    padded[:, 1:-1] = eq
    edges = np.diff(padded, axis=1)
    line, start = np.nonzero(edges == 1)
    _, end = np.nonzero(edges == -1)
    # Every start has a matching end in the same row, and np.nonzero yields
    # both row-major, so the two arrays are aligned pairwise.
    return line, start, end - 1


def interior_runs_2d(
    grid: np.ndarray, value: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Runs of ``value`` strictly between the first and last 1 of each row.

    The vectorized form of the per-line "interior run" rule: a run counts
    only when it lies between two shape cells of the same line (runs touching
    the window border are not space constraints).  Same ``(line, start,
    end)`` layout and ordering as :func:`runs_2d`.
    """
    arr = np.asarray(grid)
    line, start, end = runs_2d(arr, value)
    ones = arr == 1
    has_shape = ones.any(axis=1)
    first = np.argmax(ones, axis=1)
    last = arr.shape[1] - 1 - np.argmax(ones[:, ::-1], axis=1)
    keep = has_shape[line] & (start > first[line]) & (end < last[line])
    return line[keep], start[keep], end[keep]


def grid_to_rects(
    grid: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    origin: tuple[int, int] = (0, 0),
) -> list[Rect]:
    """Convert a topology grid plus interval lengths to maximal-row rectangles.

    ``grid[r, c]`` covers the cell whose x-extent is ``[X[c], X[c+1]]`` and
    y-extent ``[Y[r], Y[r+1]]`` where ``X``/``Y`` are the cumulative sums of
    ``dx``/``dy`` offset by ``origin``.  Horizontal runs of 1s within each row
    are merged into single rectangles; vertical merging is left to the layout
    container's polygon grouping.
    """
    arr = validate_grid(grid)
    dx = np.asarray(dx, dtype=np.int64)
    dy = np.asarray(dy, dtype=np.int64)
    if dx.shape[0] != arr.shape[1]:
        raise ValueError(
            f"dx has {dx.shape[0]} entries but grid has {arr.shape[1]} columns"
        )
    if dy.shape[0] != arr.shape[0]:
        raise ValueError(
            f"dy has {dy.shape[0]} entries but grid has {arr.shape[0]} rows"
        )
    if (dx <= 0).any() or (dy <= 0).any():
        raise ValueError("interval lengths must be strictly positive")

    ox, oy = origin
    xs = np.concatenate(([0], np.cumsum(dx))) + ox
    ys = np.concatenate(([0], np.cumsum(dy))) + oy

    rects: list[Rect] = []
    for r in range(arr.shape[0]):
        for c_start, c_end in runs_of_value(arr[r], 1):
            rects.append(
                Rect(
                    int(xs[c_start]),
                    int(ys[r]),
                    int(xs[c_end + 1]),
                    int(ys[r + 1]),
                )
            )
    return rects


def component_cell_indices(
    labels: np.ndarray, component: int
) -> list[tuple[int, int]]:
    """Return the (row, col) cells belonging to one labelled component."""
    rr, cc = np.nonzero(labels == component)
    return list(zip(rr.tolist(), cc.tolist()))


def component_areas(
    grid: np.ndarray, dx: np.ndarray, dy: np.ndarray
) -> list[int]:
    """Area (nm^2) of every 4-connected polygon in the grid."""
    labels, count = connected_components(grid)
    dx = np.asarray(dx, dtype=np.int64)
    dy = np.asarray(dy, dtype=np.int64)
    cell_area = np.outer(dy, dx)
    areas = []
    for comp in range(1, count + 1):
        areas.append(int(cell_area[labels == comp].sum()))
    return areas

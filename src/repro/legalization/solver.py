"""Nonlinear-system solver for the 2D legal pattern assessment (Eq. 14).

The system's unknowns are the geometric vectors ``delta_x`` (one entry per
topology column) and ``delta_y`` (one per row).  The constraints are

* positivity of every interval,
* both vectors summing to the pattern window size,
* linear lower bounds for every width / space run,
* nonlinear two-sided bounds on every polygon area.

The system is solved with SLSQP (scipy); the objective is a least-squares
pull towards a *target* geometry, which makes the solution set explorable:
different random targets give different legal geometries for the same
topology (DiffPattern-L), while targets taken from existing dataset
geometries give the accelerated ``Solving-E`` variant of Table II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from ..utils import as_rng
from .constraints import TopologyConstraints, extract_constraints, polygon_area
from .rules import DesignRules


@dataclass
class SolverOptions:
    """Numerical options of the SLSQP solve."""

    margin: float = 2.0            # slack (nm) added to every >= constraint before rounding
    lower_bound: float = 4.0       # minimum interval length (nm)
    max_iterations: int = 300
    tolerance: float = 1e-6
    max_attempts: int = 4          # restarts with fresh random targets on failure


@dataclass
class GeometrySolution:
    """Result of one legalisation solve."""

    success: bool
    delta_x: "np.ndarray | None"
    delta_y: "np.ndarray | None"
    iterations: int
    elapsed_seconds: float
    message: str = ""
    attempts: int = 1
    objective: float = field(default=float("nan"))


def _random_partition(total: int, parts: int, rng: np.random.Generator) -> np.ndarray:
    """A random positive vector of length ``parts`` summing to ``total``."""
    weights = rng.dirichlet(np.full(parts, 2.0))
    return weights * float(total)


def _round_preserving_sum(values: np.ndarray, total: int) -> np.ndarray:
    """Round to integers while keeping the exact sum (largest-remainder)."""
    floors = np.floor(values).astype(np.int64)
    floors = np.maximum(floors, 1)
    deficit = int(total - floors.sum())
    if deficit > 0:
        remainders = values - np.floor(values)
        order = np.argsort(-remainders)
        for i in range(deficit):
            floors[order[i % len(order)]] += 1
    elif deficit < 0:
        order = np.argsort(-floors)
        i = 0
        while deficit < 0:
            idx = order[i % len(order)]
            if floors[idx] > 1:
                floors[idx] -= 1
                deficit += 1
            i += 1
    return floors


def solve_geometry(
    constraints: TopologyConstraints,
    rules: DesignRules,
    target_x: "np.ndarray | None" = None,
    target_y: "np.ndarray | None" = None,
    rng: "int | np.random.Generator | None" = None,
    options: "SolverOptions | None" = None,
) -> GeometrySolution:
    """Find legal integer geometric vectors for one topology.

    ``target_x`` / ``target_y`` steer the least-squares objective; when omitted
    random targets are drawn (``Solving-R``).  Supplying geometry vectors from
    an existing pattern gives ``Solving-E``.
    """
    opts = options if options is not None else SolverOptions()
    gen = as_rng(rng)
    rows, cols = constraints.shape
    total = rules.pattern_size
    start_time = time.perf_counter()

    attempts = 0
    last_message = ""
    total_iterations = 0
    while attempts < opts.max_attempts:
        attempts += 1
        tx = target_x if (target_x is not None and attempts == 1) else _random_partition(total, cols, gen)
        ty = target_y if (target_y is not None and attempts == 1) else _random_partition(total, rows, gen)
        tx = np.asarray(tx, dtype=np.float64)
        ty = np.asarray(ty, dtype=np.float64)
        if tx.shape[0] != cols or ty.shape[0] != rows:
            raise ValueError(
                f"target vectors have wrong length (need {cols} x-targets, {rows} y-targets)"
            )

        result = _solve_once(constraints, rules, tx, ty, opts)
        total_iterations += result["iterations"]
        if result["success"]:
            dx = _round_preserving_sum(result["delta_x"], total)
            dy = _round_preserving_sum(result["delta_y"], total)
            if _verify_integer_solution(constraints, rules, dx, dy):
                elapsed = time.perf_counter() - start_time
                return GeometrySolution(
                    success=True,
                    delta_x=dx,
                    delta_y=dy,
                    iterations=total_iterations,
                    elapsed_seconds=elapsed,
                    message="converged",
                    attempts=attempts,
                    objective=result["objective"],
                )
            last_message = "rounded solution violated a constraint"
        else:
            last_message = result["message"]

    elapsed = time.perf_counter() - start_time
    return GeometrySolution(
        success=False,
        delta_x=None,
        delta_y=None,
        iterations=total_iterations,
        elapsed_seconds=elapsed,
        message=last_message or "no feasible solution found",
        attempts=attempts,
    )


def _solve_once(
    constraints: TopologyConstraints,
    rules: DesignRules,
    target_x: np.ndarray,
    target_y: np.ndarray,
    opts: SolverOptions,
) -> dict:
    rows, cols = constraints.shape
    total = float(rules.pattern_size)
    n_vars = cols + rows
    target = np.concatenate([target_x, target_y])
    # Normalise the least-squares pull so that objective values are O(100) and
    # gradients O(0.1): small enough to be well conditioned, large enough that
    # SLSQP keeps descending towards the target instead of stopping at the
    # first feasible point (which would collapse solution diversity).
    scale = 1.0 / total

    def objective(v: np.ndarray) -> float:
        diff = v - target
        return float(diff @ diff) * scale

    def objective_grad(v: np.ndarray) -> np.ndarray:
        return 2.0 * (v - target) * scale

    cons = []

    # Equality: both vectors sum to the window size.
    sum_x_jac = np.concatenate([np.ones(cols), np.zeros(rows)])
    sum_y_jac = np.concatenate([np.zeros(cols), np.ones(rows)])
    cons.append(
        {"type": "eq", "fun": lambda v: v[:cols].sum() - total, "jac": lambda v: sum_x_jac}
    )
    cons.append(
        {"type": "eq", "fun": lambda v: v[cols:].sum() - total, "jac": lambda v: sum_y_jac}
    )

    # Linear width / space lower bounds (with rounding margin).
    for constraint in constraints.all_interval_constraints:
        jac = np.zeros(n_vars)
        if constraint.axis == "x":
            idx = constraint.indices()
        else:
            idx = constraint.indices() + cols
        jac[idx] = 1.0
        minimum = constraint.minimum + opts.margin

        def fun(v: np.ndarray, idx=idx, minimum=minimum) -> float:
            return float(v[idx].sum() - minimum)

        cons.append({"type": "ineq", "fun": fun, "jac": lambda v, jac=jac: jac})

    # Nonlinear polygon-area constraints (two-sided, with area margin).
    # Rounding each interval by at most 1 nm can change a polygon's area by up
    # to ~2 * pattern_size + (#cells), so the continuous solve must stay that
    # far inside the legal area window for the rounded solution to verify.
    area_margin = 2.0 * total + rows * cols
    if rules.area_max - rules.area_min <= 2.0 * area_margin:
        area_margin = max(0.0, (rules.area_max - rules.area_min) / 4.0)
    for cells in constraints.polygon_cells:
        rows_idx = np.asarray([r for r, _ in cells])
        cols_idx = np.asarray([c for _, c in cells])

        def area_fun(v: np.ndarray, rows_idx=rows_idx, cols_idx=cols_idx) -> float:
            return float((v[cols_idx] * v[cols + rows_idx]).sum())

        def area_jac(v: np.ndarray, rows_idx=rows_idx, cols_idx=cols_idx) -> np.ndarray:
            grad = np.zeros(n_vars)
            np.add.at(grad, cols_idx, v[cols + rows_idx])
            np.add.at(grad, cols + rows_idx, v[cols_idx])
            return grad

        cons.append(
            {
                "type": "ineq",
                "fun": lambda v, f=area_fun: f(v) - (rules.area_min + area_margin),
                "jac": lambda v, j=area_jac: j(v),
            }
        )
        cons.append(
            {
                "type": "ineq",
                "fun": lambda v, f=area_fun: (rules.area_max - area_margin) - f(v),
                "jac": lambda v, j=area_jac: -j(v),
            }
        )

    bounds = [(opts.lower_bound, total)] * n_vars
    # Start from uniform intervals: it satisfies the equality constraints
    # exactly and is (near-)feasible for typical width/space minima, which
    # keeps SLSQP well-behaved.  Diversity comes from the random *target* in
    # the objective, not from the start point.
    x0 = np.empty(n_vars)
    x0[:cols] = total / cols
    x0[cols:] = total / rows

    result = optimize.minimize(
        objective,
        x0,
        jac=objective_grad,
        bounds=bounds,
        constraints=cons,
        method="SLSQP",
        options={"maxiter": opts.max_iterations, "ftol": opts.tolerance},
    )
    return {
        "success": bool(result.success),
        "delta_x": result.x[:cols],
        "delta_y": result.x[cols:],
        "iterations": int(result.nit),
        "message": str(result.message),
        "objective": float(result.fun),
    }


def _verify_integer_solution(
    constraints: TopologyConstraints,
    rules: DesignRules,
    delta_x: np.ndarray,
    delta_y: np.ndarray,
) -> bool:
    """Exact re-check of Eq. (14) on the rounded integer vectors."""
    if (delta_x <= 0).any() or (delta_y <= 0).any():
        return False
    if int(delta_x.sum()) != rules.pattern_size or int(delta_y.sum()) != rules.pattern_size:
        return False
    for constraint in constraints.all_interval_constraints:
        delta = delta_x if constraint.axis == "x" else delta_y
        if int(delta[constraint.indices()].sum()) < constraint.minimum:
            return False
    for cells in constraints.polygon_cells:
        area = polygon_area(cells, delta_x, delta_y)
        if not rules.area_min <= area <= rules.area_max:
            return False
    return True


def solve_topology(
    topology: np.ndarray,
    rules: DesignRules,
    target_x: "np.ndarray | None" = None,
    target_y: "np.ndarray | None" = None,
    rng: "int | np.random.Generator | None" = None,
    options: "SolverOptions | None" = None,
) -> GeometrySolution:
    """Convenience wrapper: extract constraints from ``topology`` and solve."""
    constraints = extract_constraints(topology, rules.width_min, rules.space_min)
    return solve_geometry(
        constraints, rules, target_x=target_x, target_y=target_y, rng=rng, options=options
    )

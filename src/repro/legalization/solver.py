"""Nonlinear-system solver for the 2D legal pattern assessment (Eq. 14).

The system's unknowns are the geometric vectors ``delta_x`` (one entry per
topology column) and ``delta_y`` (one per row).  The constraints are

* positivity of every interval,
* both vectors summing to the pattern window size,
* linear lower bounds for every width / space run,
* nonlinear two-sided bounds on every polygon area.

The constraint system is compiled once per topology into the stacked-array
kernel of :mod:`repro.legalization.compiled`, then solved in one of two
modes (``SolverOptions.solver_mode``):

* ``"slsqp"`` — SLSQP (scipy) over the compiled vectorized ``fun``/``jac``
  pair; bit-identical to the historical per-constraint lambda formulation.
  The objective is a least-squares pull towards a *target* geometry, which
  makes the solution set explorable: different random targets give different
  legal geometries for the same topology (DiffPattern-L), while targets from
  existing dataset geometries give the accelerated ``Solving-E`` variant of
  Table II.
* ``"auto"`` — repair-first: a deterministic projection of the target onto
  the sum equality and the per-index interval lower bounds, rounded and
  verified exactly; only topologies the projection cannot legalise fall back
  to the full SLSQP solve.  Outputs remain deterministic per seed and always
  pass the exact integer verification, but are *not* bit-identical to
  ``"slsqp"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from ..utils import as_rng
from .compiled import CompiledConstraints, compile_constraints
from .constraints import TopologyConstraints, extract_constraints, polygon_area
from .rules import DesignRules

#: Valid values of :attr:`SolverOptions.solver_mode`.
SOLVER_MODES = ("auto", "slsqp")


@dataclass
class SolverOptions:
    """Numerical options of the legalisation solve."""

    margin: float = 2.0            # slack (nm) added to every >= constraint before rounding
    lower_bound: float = 4.0       # minimum interval length (nm)
    max_iterations: int = 300
    tolerance: float = 1e-6
    max_attempts: int = 4          # restarts with fresh random targets on failure
    #: ``"auto"`` tries the deterministic repair projection before SLSQP;
    #: ``"slsqp"`` always runs the full solve (bit-identical to the legacy
    #: lambda formulation — what ``paper-tables`` pins).
    solver_mode: str = "auto"
    #: Route :meth:`Legalizer.legalize_batch` chunks through the
    #: cross-topology batched path (:mod:`repro.legalization.batched`):
    #: whole-chunk repair sweeps + a block-diagonal SLSQP tail.  Output is
    #: bit-identical to the per-topology path in every mode, so this is a
    #: pure throughput knob; ``False`` keeps the serial reference oracle.
    batch_solve: bool = True


@dataclass
class GeometrySolution:
    """Result of one legalisation solve."""

    success: bool
    delta_x: "np.ndarray | None"
    delta_y: "np.ndarray | None"
    iterations: int
    elapsed_seconds: float
    message: str = ""
    attempts: int = 1
    objective: float = field(default=float("nan"))
    #: Which path produced the solution: ``"slsqp"`` for the full nonlinear
    #: solve, ``"repair"`` for the projection fast path.
    method: str = "slsqp"


def _random_partition(total: int, parts: int, rng: np.random.Generator) -> np.ndarray:
    """A random positive vector of length ``parts`` summing to ``total``."""
    weights = rng.dirichlet(np.full(parts, 2.0))
    return weights * float(total)


def _round_preserving_sum(values: np.ndarray, total: int) -> np.ndarray:
    """Round to integers while keeping the exact sum (largest-remainder)."""
    floors = np.floor(values).astype(np.int64)
    floors = np.maximum(floors, 1)
    deficit = int(total - floors.sum())
    n = floors.shape[0]
    if deficit > 0:
        remainders = values - np.floor(values)
        order = np.argsort(-remainders)
        # Cycling the remainder order and adding one unit per visit hands
        # position order[j] exactly (deficit // n) units plus one more for
        # the first (deficit % n) positions.
        floors[order[: deficit % n]] += 1
        floors += deficit // n
    elif deficit < 0:
        order = np.argsort(-floors)
        while deficit < 0:
            # One full cycle over the (fixed) descending-value order: every
            # position above the floor of 1 gives back one unit, capped at
            # the remaining deficit.
            candidates = order[floors[order] > 1][: -deficit]
            if candidates.size == 0:
                break
            floors[candidates] -= 1
            deficit += candidates.size
    return floors


def _resolve_compiled(
    constraints: "TopologyConstraints | CompiledConstraints", rules: DesignRules
) -> CompiledConstraints:
    """Accept either representation; compile (or validate) as needed."""
    if isinstance(constraints, CompiledConstraints):
        if constraints.rules != rules:
            raise ValueError(
                "compiled constraints were built for a different DesignRules set"
            )
        return constraints
    return compile_constraints(constraints, rules)


def solve_geometry(
    constraints: "TopologyConstraints | CompiledConstraints",
    rules: DesignRules,
    target_x: "np.ndarray | None" = None,
    target_y: "np.ndarray | None" = None,
    rng: "int | np.random.Generator | None" = None,
    options: "SolverOptions | None" = None,
) -> GeometrySolution:
    """Find legal integer geometric vectors for one topology.

    ``target_x`` / ``target_y`` steer the least-squares objective; when omitted
    random targets are drawn (``Solving-R``).  Supplying geometry vectors from
    an existing pattern gives ``Solving-E``.  ``constraints`` may be a raw
    :class:`TopologyConstraints` (compiled here) or an already-compiled
    :class:`~repro.legalization.CompiledConstraints` (e.g. from the
    topology-hash cache), which skips recompilation across restart attempts
    and multi-solution solves.
    """
    opts = options if options is not None else SolverOptions()
    if opts.solver_mode not in SOLVER_MODES:
        raise ValueError(
            f"solver_mode must be one of {SOLVER_MODES}, got {opts.solver_mode!r}"
        )
    compiled = _resolve_compiled(constraints, rules)
    gen = as_rng(rng)
    rows, cols = compiled.shape
    total = rules.pattern_size
    start_time = time.perf_counter()

    # Attempt-1 targets: the caller-provided pair when given, else random.
    # Drawn up front so the repair fast path and SLSQP attempt 1 share them
    # (the fast path consumes no extra random draws).
    if target_x is not None:
        tx = np.asarray(target_x, dtype=np.float64)
    else:
        tx = _random_partition(total, cols, gen)
    if target_y is not None:
        ty = np.asarray(target_y, dtype=np.float64)
    else:
        ty = _random_partition(total, rows, gen)
    if tx.shape[0] != cols or ty.shape[0] != rows:
        raise ValueError(
            f"target vectors have wrong length (need {cols} x-targets, {rows} y-targets)"
        )

    if opts.solver_mode == "auto":
        repaired = _repair_projection(compiled, tx, ty, opts)
        if repaired is not None:
            dx, dy = repaired
            diff = np.concatenate([dx, dy]).astype(np.float64) - np.concatenate([tx, ty])
            return GeometrySolution(
                success=True,
                delta_x=dx,
                delta_y=dy,
                iterations=0,
                elapsed_seconds=time.perf_counter() - start_time,
                message="repaired",
                attempts=1,
                objective=float(diff @ diff) / total,
                method="repair",
            )

    attempts = 0
    last_message = ""
    total_iterations = 0
    while attempts < opts.max_attempts:
        attempts += 1
        if attempts > 1:
            tx = _random_partition(total, cols, gen)
            ty = _random_partition(total, rows, gen)

        result = _solve_once(compiled, tx, ty, opts)
        total_iterations += result["iterations"]
        if result["success"]:
            dx = _round_preserving_sum(result["delta_x"], total)
            dy = _round_preserving_sum(result["delta_y"], total)
            if compiled.verify_integer(dx, dy):
                elapsed = time.perf_counter() - start_time
                return GeometrySolution(
                    success=True,
                    delta_x=dx,
                    delta_y=dy,
                    iterations=total_iterations,
                    elapsed_seconds=elapsed,
                    message="converged",
                    attempts=attempts,
                    objective=result["objective"],
                )
            last_message = "rounded solution violated a constraint"
        else:
            last_message = result["message"]

    elapsed = time.perf_counter() - start_time
    return GeometrySolution(
        success=False,
        delta_x=None,
        delta_y=None,
        iterations=total_iterations,
        elapsed_seconds=elapsed,
        message=last_message or "no feasible solution found",
        attempts=attempts,
    )


def _repair_projection(
    compiled: CompiledConstraints,
    target_x: np.ndarray,
    target_y: np.ndarray,
    opts: SolverOptions,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Deterministic repair: project the target onto the linear constraints.

    Each axis is scaled onto the sum equality, lifted onto the per-index
    interval lower bounds (which are rounding-safe by construction — see
    :meth:`CompiledConstraints.repair_lower_bounds`), and the remaining
    slack redistributed proportionally to the target's free mass.  The
    rounded integer vectors are then verified *exactly* against every
    constraint — including the polygon-area windows the projection ignores —
    so a returned pair is always legal; ``None`` means "fall back to SLSQP".
    """
    lb_x, lb_y = compiled.repair_lower_bounds(opts.lower_bound)
    total = compiled.rules.pattern_size
    vx = _project_axis(target_x, lb_x, total)
    if vx is None:
        return None
    vy = _project_axis(target_y, lb_y, total)
    if vy is None:
        return None
    dx = _round_preserving_sum(vx, total)
    dy = _round_preserving_sum(vy, total)
    if compiled.verify_integer(dx, dy):
        return dx, dy
    return None


def _project_axis(
    target: np.ndarray, lower: np.ndarray, total: int
) -> "np.ndarray | None":
    """Project ``target`` onto ``{v >= lower, sum(v) = total}`` (or ``None``)."""
    slack = float(total) - lower.sum()
    if slack < 0:
        return None
    t = np.maximum(np.asarray(target, dtype=np.float64), 1e-9)
    scaled = t * (float(total) / t.sum())
    lifted = np.maximum(scaled, lower)
    free = lifted - lower
    free_sum = free.sum()
    if free_sum <= 0.0:
        # Every entry sits on its bound; feasible only when the bounds
        # already consume the whole window.
        return lower.copy() if slack == 0.0 else None
    return lower + free * (slack / free_sum)


def _solve_once(
    compiled: CompiledConstraints,
    target_x: np.ndarray,
    target_y: np.ndarray,
    opts: SolverOptions,
) -> dict:
    rows, cols = compiled.shape
    total = compiled.total
    n_vars = compiled.n_vars
    target = np.concatenate([target_x, target_y])
    # Normalise the least-squares pull so that objective values are O(100) and
    # gradients O(0.1): small enough to be well conditioned, large enough that
    # SLSQP keeps descending towards the target instead of stopping at the
    # first feasible point (which would collapse solution diversity).
    scale = 1.0 / total

    def objective(v: np.ndarray) -> float:
        diff = v - target
        return float(diff @ diff) * scale

    def objective_grad(v: np.ndarray) -> np.ndarray:
        return 2.0 * (v - target) * scale

    cons = compiled.slsqp_constraints(opts.margin)

    bounds = [(opts.lower_bound, total)] * n_vars
    # Start from uniform intervals: it satisfies the equality constraints
    # exactly and is (near-)feasible for typical width/space minima, which
    # keeps SLSQP well-behaved.  Diversity comes from the random *target* in
    # the objective, not from the start point.
    x0 = np.empty(n_vars)
    x0[:cols] = total / cols
    x0[cols:] = total / rows

    result = optimize.minimize(
        objective,
        x0,
        jac=objective_grad,
        bounds=bounds,
        constraints=cons,
        method="SLSQP",
        options={"maxiter": opts.max_iterations, "ftol": opts.tolerance},
    )
    return {
        "success": bool(result.success),
        "delta_x": result.x[:cols],
        "delta_y": result.x[cols:],
        "iterations": int(result.nit),
        "message": str(result.message),
        "objective": float(result.fun),
    }


def _verify_integer_solution(
    constraints: "TopologyConstraints | CompiledConstraints",
    rules: DesignRules,
    delta_x: np.ndarray,
    delta_y: np.ndarray,
) -> bool:
    """Exact re-check of Eq. (14) on the rounded integer vectors."""
    if isinstance(constraints, CompiledConstraints):
        return constraints.verify_integer(delta_x, delta_y)
    delta_x = np.asarray(delta_x)
    delta_y = np.asarray(delta_y)
    if (delta_x <= 0).any() or (delta_y <= 0).any():
        return False
    if int(delta_x.sum()) != rules.pattern_size or int(delta_y.sum()) != rules.pattern_size:
        return False
    for constraint in constraints.all_interval_constraints:
        delta = delta_x if constraint.axis == "x" else delta_y
        if int(delta[constraint.indices()].sum()) < constraint.minimum:
            return False
    for cells in constraints.polygon_cells:
        area = polygon_area(cells, delta_x, delta_y)
        if not rules.area_min <= area <= rules.area_max:
            return False
    return True


def solve_topology(
    topology: np.ndarray,
    rules: DesignRules,
    target_x: "np.ndarray | None" = None,
    target_y: "np.ndarray | None" = None,
    rng: "int | np.random.Generator | None" = None,
    options: "SolverOptions | None" = None,
) -> GeometrySolution:
    """Convenience wrapper: extract constraints from ``topology`` and solve."""
    constraints = extract_constraints(topology, rules.width_min, rules.space_min)
    return solve_geometry(
        constraints, rules, target_x=target_x, target_y=target_y, rng=rng, options=options
    )
